"""Exception hierarchy for the script-representation layer."""

__all__ = ["ScriptError", "ScriptParseError", "UnsupportedScriptError"]


class ScriptError(Exception):
    """Base class for script-representation failures."""


class ScriptParseError(ScriptError):
    """The script is not valid Python."""


class UnsupportedScriptError(ScriptError):
    """The script uses constructs outside the supported straight-line class."""
