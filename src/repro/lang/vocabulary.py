"""Offline search-space curation (Section 5.1).

Builds, from a script corpus S, the atom vocabulary V_A, the edge
vocabulary V_E' with occurrence counts, the corpus step distribution Q(x),
and the auxiliary structures the online search needs: n-gram successor
adjacency (where may an atom be appended?) and renderable statement
templates for every atom.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import NGRAM, ONEGRAM
from .errors import ScriptError
from .lemmatize import lemmatize
from .parser import ScriptDAG, parse_script

__all__ = ["CorpusVocabulary", "CorpusStats"]

EdgeKey = Tuple[str, str]


@dataclass(frozen=True)
class CorpusStats:
    """Table 3-style corpus statistics."""

    n_scripts: int
    avg_code_lines: float
    uniq_onegrams: int
    uniq_ngrams: int
    uniq_edges: int

    def as_dict(self) -> dict:
        return {
            "Scripts": self.n_scripts,
            "Avg # code lines": round(self.avg_code_lines, 1),
            "Uniq. 1-grams": self.uniq_onegrams,
            "Uniq. n-grams": self.uniq_ngrams,
            "Uniq. edges": self.uniq_edges,
        }


class CorpusVocabulary:
    """V_A, V_E', and Q(x) computed over a corpus of scripts."""

    def __init__(self, dags: Sequence[ScriptDAG]):
        if not dags:
            raise ValueError("cannot build a vocabulary from an empty corpus")
        self._dags: List[ScriptDAG] = list(dags)

        self.edge_counts: Counter = Counter()
        self.onegram_counts: Counter = Counter()
        self.ngram_counts: Counter = Counter()
        #: n-gram signature -> Counter of n-gram signatures observed to follow it
        self.successors: Dict[str, Counter] = defaultdict(Counter)
        #: 1-gram signature -> representative full-statement source
        self.onegram_templates: Dict[str, str] = {}
        #: n-gram signature -> mean relative position (0=start .. 1=end)
        self.relative_positions: Dict[str, float] = {}

        position_sums: Dict[str, List[float]] = defaultdict(list)
        for dag in self._dags:
            self.edge_counts.update(dag.edge_counter())
            self.onegram_counts.update(dag.onegram_counter())
            self.ngram_counts.update(dag.ngram_counter())
            n = max(len(dag) - 1, 1)
            for stmt in dag.statements:
                position_sums[stmt.ngram.signature].append(stmt.index / n)
                for atom in stmt.onegrams:
                    # prefer a df-assignment statement as the template so a
                    # 1-gram add renders as a standalone, executable line
                    current = self.onegram_templates.get(atom.signature)
                    if current is None or (
                        not current.startswith("df = ") and stmt.source.startswith("df = ")
                    ):
                        self.onegram_templates[atom.signature] = stmt.source
            for edge in dag.inter_edges():
                self.successors[edge.source][edge.target] += 1
        self.relative_positions = {
            sig: sum(vals) / len(vals) for sig, vals in position_sums.items()
        }
        self._total_edges = sum(self.edge_counts.values())

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_scripts(cls, scripts: Iterable[str], dialect=None) -> "CorpusVocabulary":
        """Parse raw script sources (lemmatizing each) into a vocabulary.

        Scripts that fail to parse are skipped — real-world corpora contain
        broken notebooks — but an all-broken corpus raises ScriptError.
        *dialect* (None = pandas) drives lemmatization's call surface.
        """
        dags, failures = [], 0
        for script in scripts:
            try:
                dags.append(parse_script(script, dialect=dialect))
            except ScriptError:
                failures += 1
        if not dags:
            raise ScriptError(f"no parseable scripts in corpus ({failures} failed)")
        return cls(dags)

    # ------------------------------------------------------------------ sizes
    @property
    def n_scripts(self) -> int:
        if self._dags:
            return len(self._dags)
        # vocabulary restored from disk (repro.lang.persistence)
        return getattr(self, "_restored_n_scripts", 0)

    @property
    def total_edges(self) -> int:
        return self._total_edges

    @property
    def uniq_edges(self) -> int:
        return len(self.edge_counts)

    def stats(self) -> CorpusStats:
        if self._dags:
            avg_lines = sum(len(d) for d in self._dags) / len(self._dags)
        else:
            avg_lines = getattr(self, "_restored_avg_lines", 0.0)
        return CorpusStats(
            n_scripts=self.n_scripts,
            avg_code_lines=avg_lines,
            uniq_onegrams=len(self.onegram_counts),
            uniq_ngrams=len(self.ngram_counts),
            uniq_edges=len(self.edge_counts),
        )

    # ------------------------------------------------------------ distribution
    def q_probability(self, edge: EdgeKey, epsilon: Optional[float] = None) -> float:
        """Q(x) for one edge; unseen edges get the smoothing mass ε."""
        count = self.edge_counts.get(edge, 0)
        if count:
            return count / self._total_edges
        if epsilon is None:
            epsilon = self.epsilon
        return epsilon

    @property
    def epsilon(self) -> float:
        """Smoothing mass for out-of-vocabulary edges (half a count)."""
        return 0.5 / max(self._total_edges, 1)

    def q_distribution(self) -> Dict[EdgeKey, float]:
        return {
            edge: count / self._total_edges for edge, count in self.edge_counts.items()
        }

    # ------------------------------------------------------------- step lookup
    def statement_frequency(self, signature: str) -> float:
        """Fraction of corpus scripts whose DAG contains this n-gram atom."""
        if not self._dags:
            restored = getattr(self, "_restored_frequencies", {})
            return restored.get(signature, 0.0)
        hits = sum(
            1 for dag in self._dags if signature in dag.ngram_counter()
        )
        return hits / len(self._dags)

    def ngram_successors(self, signature: str) -> List[Tuple[str, int]]:
        """Statements observed to directly follow *signature*, most common first."""
        return self.successors.get(signature, Counter()).most_common()

    def render_statement(self, gram: str, signature: str) -> Optional[str]:
        """Return source text that realizes an atom as a full statement."""
        if gram == NGRAM:
            return signature if signature in self.ngram_counts else None
        if gram == ONEGRAM:
            return self.onegram_templates.get(signature)
        raise ValueError(f"invalid gram kind: {gram!r}")
