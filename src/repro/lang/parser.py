"""Script → DAG parsing (Section 3).

A lemmatized script is decomposed into :class:`Statement` records, each
carrying its n-gram atom (the statement text), its 1-gram atoms (operation
invocations), intra-statement data-flow edges between nested invocations,
and the variables it reads/writes.  The :class:`ScriptDAG` then derives
inter-statement edges from the def-use chain over those variables.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .atoms import NGRAM, ONEGRAM, Atom, Edge
from .errors import ScriptParseError, UnsupportedScriptError
from .lemmatize import lemmatize

__all__ = [
    "Statement",
    "ScriptDAG",
    "parse_script",
    "extract_onegrams",
    "compute_edge_counts",
]

#: AST node classes treated as invocation nodes (Definition 3.1).
_INVOCATION_TYPES = (ast.Call, ast.Subscript, ast.BinOp, ast.Compare, ast.BoolOp, ast.UnaryOp)

_OP_SYMBOLS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/", ast.FloorDiv: "//",
    ast.Mod: "%", ast.Pow: "**", ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<",
    ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=", ast.In: "in", ast.NotIn: "not in",
    ast.And: "and", ast.Or: "or", ast.Not: "not", ast.USub: "neg", ast.UAdd: "pos",
    ast.Invert: "~", ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.Is: "is", ast.IsNot: "is not",
}


def _data_token(node: ast.AST) -> str:
    """Canonical token for a data node (name/constant/attribute chain)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Attribute):
        return f"{_data_token(node.value)}.{node.attr}"
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        inner = ",".join(_data_token(e) for e in node.elts)
        return f"[{inner}]"
    if isinstance(node, ast.Dict):
        return "{...}"
    if isinstance(node, ast.Slice):
        parts = [
            _data_token(p) if p is not None else ""
            for p in (node.lower, node.upper, node.step)
        ]
        return ":".join(parts)
    if isinstance(node, ast.Starred):
        return f"*{_data_token(node.value)}"
    if isinstance(node, _INVOCATION_TYPES):
        return "@"  # nested invocation placeholder
    return type(node).__name__


def _invocation_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return "call"
    if isinstance(node, ast.Subscript):
        return "subscript"
    if isinstance(node, ast.BinOp):
        return _OP_SYMBOLS.get(type(node.op), "binop")
    if isinstance(node, ast.Compare):
        return _OP_SYMBOLS.get(type(node.ops[0]), "cmp") if node.ops else "cmp"
    if isinstance(node, ast.BoolOp):
        return _OP_SYMBOLS.get(type(node.op), "boolop")
    if isinstance(node, ast.UnaryOp):
        return _OP_SYMBOLS.get(type(node.op), "unaryop")
    raise TypeError(f"not an invocation node: {type(node).__name__}")


def _invocation_children(node: ast.AST) -> List[ast.AST]:
    """Direct operand nodes of an invocation, in evaluation order."""
    if isinstance(node, ast.Call):
        children: List[ast.AST] = []
        if isinstance(node.func, ast.Attribute):
            children.append(node.func.value)
        children.extend(node.args)
        children.extend(kw.value for kw in node.keywords)
        return children
    if isinstance(node, ast.Subscript):
        return [node.value, node.slice]
    if isinstance(node, ast.BinOp):
        return [node.left, node.right]
    if isinstance(node, ast.Compare):
        return [node.left, *node.comparators]
    if isinstance(node, ast.BoolOp):
        return list(node.values)
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    return []


def _signature(node: ast.AST) -> str:
    args = ",".join(_data_token(c) for c in _invocation_children(node))
    return f"{_invocation_name(node)}({args})"


def extract_onegrams(stmt: ast.stmt) -> Tuple[List[Atom], List[Edge]]:
    """Collect 1-gram atoms and intra-statement edges from one statement.

    Edges run from each nested invocation to the invocation that consumes
    its result (data flows child → parent).
    """
    atoms: List[Atom] = []
    edges: List[Edge] = []

    def visit(node: ast.AST, parent_sig: Optional[str]) -> None:
        if isinstance(node, _INVOCATION_TYPES):
            sig = _signature(node)
            atoms.append(Atom(ONEGRAM, sig))
            if parent_sig is not None:
                edges.append(Edge(sig, parent_sig))
            for child in _invocation_children(node):
                visit(child, sig)
            # also walk attribute receivers inside func chains (df.a.b())
            return
        for child in ast.iter_child_nodes(node):
            visit(child, parent_sig)

    visit(stmt, None)
    return atoms, edges


def _variables(stmt: ast.stmt) -> Tuple[Set[str], Set[str]]:
    """Return (reads, writes) of top-level variable names for a statement."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            writes.add(alias.asname or alias.name.split(".")[0])
        return reads, writes
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                writes.add(node.id)
            else:
                reads.add(node.id)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            # df.loc[...] = v / df['x'] = v mutates the base frame
            base = node.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                writes.add(base.id)
                reads.add(base.id)
    return reads, writes


@dataclass
class Statement:
    """One straight-line statement with its atoms and def-use sets."""

    index: int
    source: str
    ngram: Atom
    onegrams: List[Atom]
    intra_edges: List[Edge]
    reads: Set[str]
    writes: Set[str]
    is_import: bool
    is_read_csv: bool

    @classmethod
    def from_ast(cls, index: int, node: ast.stmt) -> "Statement":
        source = ast.unparse(node)
        onegrams, intra_edges = extract_onegrams(node)
        reads, writes = _variables(node)
        is_import = isinstance(node, (ast.Import, ast.ImportFrom))
        is_read_csv = any("read_csv" in a.signature for a in onegrams)
        return cls(
            index=index,
            source=source,
            ngram=Atom(NGRAM, source),
            onegrams=onegrams,
            intra_edges=intra_edges,
            reads=reads,
            writes=writes,
            is_import=is_import,
            is_read_csv=is_read_csv,
        )

    @classmethod
    def from_source(cls, index: int, source: str) -> "Statement":
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise ScriptParseError(f"invalid statement {source!r}: {exc}") from exc
        if len(tree.body) != 1:
            raise ScriptParseError(
                f"expected a single statement, got {len(tree.body)}: {source!r}"
            )
        return cls.from_ast(index, tree.body[0])

    @property
    def protected(self) -> bool:
        """Imports and data loads are never deleted by transformations."""
        return self.is_import or self.is_read_csv


class ScriptDAG:
    """The DAG representation G_s = (A, E') of a lemmatized script."""

    def __init__(self, statements: List[Statement]):
        self.statements = statements

    # ------------------------------------------------------------------ source
    def source(self) -> str:
        return "\n".join(s.source for s in self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    # ------------------------------------------------------------------- edges
    def inter_edges(self) -> List[Edge]:
        """Def-use chain edges between statements (n-gram level)."""
        edges: List[Edge] = []
        last_writer: Dict[str, Statement] = {}
        for stmt in self.statements:
            linked: Set[int] = set()
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer.index != stmt.index:
                    if writer.index not in linked:
                        edges.append(Edge(writer.ngram.signature, stmt.ngram.signature))
                        linked.add(writer.index)
            for var in stmt.writes:
                last_writer[var] = stmt
        return edges

    def intra_edges(self) -> List[Edge]:
        out: List[Edge] = []
        for stmt in self.statements:
            out.extend(stmt.intra_edges)
        return out

    def edges(self) -> List[Edge]:
        """All data-flow edges E' (intra- and inter-statement)."""
        return self.intra_edges() + self.inter_edges()

    def edge_counter(self) -> Counter:
        return Counter(e.as_tuple() for e in self.edges())

    # ------------------------------------------------------------------- atoms
    def onegram_counter(self) -> Counter:
        return Counter(a.signature for s in self.statements for a in s.onegrams)

    def ngram_counter(self) -> Counter:
        return Counter(s.ngram.signature for s in self.statements)

    # ------------------------------------------------------------------ export
    def to_dot(self) -> str:
        """Render the statement-level DAG in Graphviz dot format (Figure 2)."""
        lines = ["digraph script {", "  rankdir=TB;", "  node [shape=box];"]
        for stmt in self.statements:
            label = stmt.source.replace('"', '\\"')
            lines.append(f'  s{stmt.index} [label="{label}"];')
        seen = set()
        sig_to_index = {}
        for stmt in self.statements:
            sig_to_index.setdefault(stmt.ngram.signature, stmt.index)
        last_writer: Dict[str, int] = {}
        for stmt in self.statements:
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer != stmt.index:
                    key = (writer, stmt.index)
                    if key not in seen:
                        lines.append(f"  s{writer} -> s{stmt.index};")
                        seen.add(key)
            for var in stmt.writes:
                last_writer[var] = stmt.index
        lines.append("}")
        return "\n".join(lines)

    def to_networkx(self):
        """Statement-level DAG as a networkx DiGraph (for analysis tooling)."""
        import networkx as nx

        graph = nx.DiGraph()
        for stmt in self.statements:
            graph.add_node(stmt.index, source=stmt.source)
        last_writer: Dict[str, int] = {}
        for stmt in self.statements:
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer != stmt.index:
                    graph.add_edge(writer, stmt.index, var=var)
            for var in stmt.writes:
                last_writer[var] = stmt.index
        return graph


def compute_edge_counts(statements) -> Counter:
    """Edge multiset of a statement sequence, by *position* (not index).

    Equivalent to ``ScriptDAG(statements).edge_counter()`` for a properly
    renumbered list, but works on any sequence view — e.g. a candidate
    with one statement virtually inserted or removed — without
    constructing new Statement objects.  This is what makes the paper's
    "marginally update P(x) instead of performing the transformation"
    scoring path cheap (Section 5.2).
    """
    counts: Counter = Counter()
    last_writer: Dict[str, Tuple[int, str]] = {}
    for position, stmt in enumerate(statements):
        for edge in stmt.intra_edges:
            counts[edge.as_tuple()] += 1
        linked: Set[int] = set()
        for var in sorted(stmt.reads):
            writer = last_writer.get(var)
            if writer is not None and writer[0] != position:
                if writer[0] not in linked:
                    counts[(writer[1], stmt.ngram.signature)] += 1
                    linked.add(writer[0])
        for var in stmt.writes:
            last_writer[var] = (position, stmt.ngram.signature)
    return counts


def parse_script(source: str, lemmatized: bool = False) -> ScriptDAG:
    """Parse *source* into its DAG representation.

    Lemmatization (canonical renaming + normalization) is applied first
    unless the caller already did so.
    """
    normalized = source if lemmatized else lemmatize(source)
    try:
        tree = ast.parse(normalized)
    except SyntaxError as exc:  # pragma: no cover - lemmatize already parsed
        raise ScriptParseError(str(exc)) from exc
    statements = [
        Statement.from_ast(index, node) for index, node in enumerate(tree.body)
    ]
    return ScriptDAG(statements)
