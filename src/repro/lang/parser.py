"""Script → DAG parsing (Section 3).

A lemmatized script is decomposed into :class:`Statement` records, each
carrying its n-gram atom (the statement text), its 1-gram atoms (operation
invocations), intra-statement data-flow edges between nested invocations,
and the variables it reads/writes.  The :class:`ScriptDAG` then derives
inter-statement edges from the def-use chain over those variables.
"""

from __future__ import annotations

import ast
from bisect import bisect_left, bisect_right, insort
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .atoms import NGRAM, ONEGRAM, Atom, Edge
from .errors import ScriptParseError, UnsupportedScriptError
from .lemmatize import lemmatize

__all__ = [
    "Statement",
    "ScriptDAG",
    "EdgeDelta",
    "EdgeState",
    "parse_script",
    "extract_onegrams",
    "compute_edge_counts",
]

#: AST node classes treated as invocation nodes (Definition 3.1).
_INVOCATION_TYPES = (ast.Call, ast.Subscript, ast.BinOp, ast.Compare, ast.BoolOp, ast.UnaryOp)

_OP_SYMBOLS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/", ast.FloorDiv: "//",
    ast.Mod: "%", ast.Pow: "**", ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<",
    ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=", ast.In: "in", ast.NotIn: "not in",
    ast.And: "and", ast.Or: "or", ast.Not: "not", ast.USub: "neg", ast.UAdd: "pos",
    ast.Invert: "~", ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.Is: "is", ast.IsNot: "is not",
}


def _data_token(node: ast.AST) -> str:
    """Canonical token for a data node (name/constant/attribute chain)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Attribute):
        return f"{_data_token(node.value)}.{node.attr}"
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        inner = ",".join(_data_token(e) for e in node.elts)
        return f"[{inner}]"
    if isinstance(node, ast.Dict):
        return "{...}"
    if isinstance(node, ast.Slice):
        parts = [
            _data_token(p) if p is not None else ""
            for p in (node.lower, node.upper, node.step)
        ]
        return ":".join(parts)
    if isinstance(node, ast.Starred):
        return f"*{_data_token(node.value)}"
    if isinstance(node, _INVOCATION_TYPES):
        return "@"  # nested invocation placeholder
    return type(node).__name__


def _invocation_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return "call"
    if isinstance(node, ast.Subscript):
        return "subscript"
    if isinstance(node, ast.BinOp):
        return _OP_SYMBOLS.get(type(node.op), "binop")
    if isinstance(node, ast.Compare):
        return _OP_SYMBOLS.get(type(node.ops[0]), "cmp") if node.ops else "cmp"
    if isinstance(node, ast.BoolOp):
        return _OP_SYMBOLS.get(type(node.op), "boolop")
    if isinstance(node, ast.UnaryOp):
        return _OP_SYMBOLS.get(type(node.op), "unaryop")
    raise TypeError(f"not an invocation node: {type(node).__name__}")


def _invocation_children(node: ast.AST) -> List[ast.AST]:
    """Direct operand nodes of an invocation, in evaluation order."""
    if isinstance(node, ast.Call):
        children: List[ast.AST] = []
        if isinstance(node.func, ast.Attribute):
            children.append(node.func.value)
        children.extend(node.args)
        children.extend(kw.value for kw in node.keywords)
        return children
    if isinstance(node, ast.Subscript):
        return [node.value, node.slice]
    if isinstance(node, ast.BinOp):
        return [node.left, node.right]
    if isinstance(node, ast.Compare):
        return [node.left, *node.comparators]
    if isinstance(node, ast.BoolOp):
        return list(node.values)
    if isinstance(node, ast.UnaryOp):
        return [node.operand]
    return []


def _signature(node: ast.AST) -> str:
    args = ",".join(_data_token(c) for c in _invocation_children(node))
    return f"{_invocation_name(node)}({args})"


def extract_onegrams(stmt: ast.stmt) -> Tuple[List[Atom], List[Edge]]:
    """Collect 1-gram atoms and intra-statement edges from one statement.

    Edges run from each nested invocation to the invocation that consumes
    its result (data flows child → parent).
    """
    atoms: List[Atom] = []
    edges: List[Edge] = []

    def visit(node: ast.AST, parent_sig: Optional[str]) -> None:
        if isinstance(node, _INVOCATION_TYPES):
            sig = _signature(node)
            atoms.append(Atom(ONEGRAM, sig))
            if parent_sig is not None:
                edges.append(Edge(sig, parent_sig))
            for child in _invocation_children(node):
                visit(child, sig)
            # also walk attribute receivers inside func chains (df.a.b())
            return
        for child in ast.iter_child_nodes(node):
            visit(child, parent_sig)

    visit(stmt, None)
    return atoms, edges


def _variables(stmt: ast.stmt) -> Tuple[Set[str], Set[str]]:
    """Return (reads, writes) of top-level variable names for a statement."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            writes.add(alias.asname or alias.name.split(".")[0])
        return reads, writes
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store):
                writes.add(node.id)
            else:
                reads.add(node.id)
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            # df.loc[...] = v / df['x'] = v mutates the base frame
            base = node.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                writes.add(base.id)
                reads.add(base.id)
    return reads, writes


@dataclass
class Statement:
    """One straight-line statement with its atoms and def-use sets."""

    index: int
    source: str
    ngram: Atom
    onegrams: List[Atom]
    intra_edges: List[Edge]
    reads: Set[str]
    writes: Set[str]
    is_import: bool
    is_read_csv: bool

    @classmethod
    def from_ast(cls, index: int, node: ast.stmt, dialect=None) -> "Statement":
        source = ast.unparse(node)
        onegrams, intra_edges = extract_onegrams(node)
        reads, writes = _variables(node)
        is_import = isinstance(node, (ast.Import, ast.ImportFrom))
        loader_names = ("read_csv",) if dialect is None else dialect.loader_names
        is_read_csv = any(
            loader in a.signature for a in onegrams for loader in loader_names
        )
        return cls(
            index=index,
            source=source,
            ngram=Atom(NGRAM, source),
            onegrams=onegrams,
            intra_edges=intra_edges,
            reads=reads,
            writes=writes,
            is_import=is_import,
            is_read_csv=is_read_csv,
        )

    @classmethod
    def from_source(cls, index: int, source: str, dialect=None) -> "Statement":
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise ScriptParseError(f"invalid statement {source!r}: {exc}") from exc
        if len(tree.body) != 1:
            raise ScriptParseError(
                f"expected a single statement, got {len(tree.body)}: {source!r}"
            )
        return cls.from_ast(index, tree.body[0], dialect=dialect)

    @property
    def protected(self) -> bool:
        """Imports and data loads are never deleted by transformations."""
        return self.is_import or self.is_read_csv


class ScriptDAG:
    """The DAG representation G_s = (A, E') of a lemmatized script."""

    def __init__(self, statements: List[Statement]):
        self.statements = statements

    # ------------------------------------------------------------------ source
    def source(self) -> str:
        return "\n".join(s.source for s in self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    # ------------------------------------------------------------------- edges
    def inter_edges(self) -> List[Edge]:
        """Def-use chain edges between statements (n-gram level)."""
        edges: List[Edge] = []
        last_writer: Dict[str, Statement] = {}
        for stmt in self.statements:
            linked: Set[int] = set()
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer.index != stmt.index:
                    if writer.index not in linked:
                        edges.append(Edge(writer.ngram.signature, stmt.ngram.signature))
                        linked.add(writer.index)
            for var in stmt.writes:
                last_writer[var] = stmt
        return edges

    def intra_edges(self) -> List[Edge]:
        out: List[Edge] = []
        for stmt in self.statements:
            out.extend(stmt.intra_edges)
        return out

    def edges(self) -> List[Edge]:
        """All data-flow edges E' (intra- and inter-statement)."""
        return self.intra_edges() + self.inter_edges()

    def edge_counter(self) -> Counter:
        return Counter(e.as_tuple() for e in self.edges())

    # ------------------------------------------------------------------- atoms
    def onegram_counter(self) -> Counter:
        return Counter(a.signature for s in self.statements for a in s.onegrams)

    def ngram_counter(self) -> Counter:
        return Counter(s.ngram.signature for s in self.statements)

    # ------------------------------------------------------------------ export
    def to_dot(self) -> str:
        """Render the statement-level DAG in Graphviz dot format (Figure 2)."""
        lines = ["digraph script {", "  rankdir=TB;", "  node [shape=box];"]
        for stmt in self.statements:
            label = stmt.source.replace('"', '\\"')
            lines.append(f'  s{stmt.index} [label="{label}"];')
        seen = set()
        sig_to_index = {}
        for stmt in self.statements:
            sig_to_index.setdefault(stmt.ngram.signature, stmt.index)
        last_writer: Dict[str, int] = {}
        for stmt in self.statements:
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer != stmt.index:
                    key = (writer, stmt.index)
                    if key not in seen:
                        lines.append(f"  s{writer} -> s{stmt.index};")
                        seen.add(key)
            for var in stmt.writes:
                last_writer[var] = stmt.index
        lines.append("}")
        return "\n".join(lines)

    def to_networkx(self):
        """Statement-level DAG as a networkx DiGraph (for analysis tooling)."""
        import networkx as nx

        graph = nx.DiGraph()
        for stmt in self.statements:
            graph.add_node(stmt.index, source=stmt.source)
        last_writer: Dict[str, int] = {}
        for stmt in self.statements:
            for var in sorted(stmt.reads):
                writer = last_writer.get(var)
                if writer is not None and writer != stmt.index:
                    graph.add_edge(writer, stmt.index, var=var)
            for var in stmt.writes:
                last_writer[var] = stmt.index
        return graph


def compute_edge_counts(statements) -> Counter:
    """Edge multiset of a statement sequence, by *position* (not index).

    Equivalent to ``ScriptDAG(statements).edge_counter()`` for a properly
    renumbered list, but works on any sequence view — e.g. a candidate
    with one statement virtually inserted or removed — without
    constructing new Statement objects.  This is what makes the paper's
    "marginally update P(x) instead of performing the transformation"
    scoring path cheap (Section 5.2).
    """
    counts: Counter = Counter()
    last_writer: Dict[str, Tuple[int, str]] = {}
    for position, stmt in enumerate(statements):
        for edge in stmt.intra_edges:
            counts[edge.as_tuple()] += 1
        linked: Set[int] = set()
        for var in sorted(stmt.reads):
            writer = last_writer.get(var)
            if writer is not None and writer[0] != position:
                if writer[0] not in linked:
                    counts[(writer[1], stmt.ngram.signature)] += 1
                    linked.add(writer[0])
        for var in stmt.writes:
            last_writer[var] = (position, stmt.ngram.signature)
    return counts


@dataclass(frozen=True)
class EdgeDelta:
    """Edge-count changes caused by inserting or deleting one statement.

    ``changes`` maps edge tuples to their net count change (zero entries
    stripped); ``kind``/``position``/``statement`` record the splice so an
    :class:`EdgeState` can apply the delta and derive the successor state.
    """

    kind: str  # "insert" | "delete"
    position: int
    statement: Optional[Statement]
    changes: Dict[Tuple[str, str], int]

    @property
    def touched_edges(self) -> int:
        return len(self.changes)


#: Sentinel writer identity for a statement being virtually inserted; must
#: compare unequal to every real position so per-reader dedup treats the
#: newcomer as one distinct writer.
_INSERTED = object()


class EdgeState:
    """Positional edge bookkeeping that supports O(Δ) insert/delete deltas.

    Holds, for one statement sequence, the edge multiset of
    :func:`compute_edge_counts` plus per-variable writer/reader position
    indexes.  Given those, the edge *delta* of splicing one statement in
    or out touches only

    * the spliced statement's intra-edges and its own incoming def-use
      links, and
    * downstream readers whose last-writer binding crosses the splice
      point (reads of the spliced statement's writes up to the next
      writer of each variable),

    instead of re-walking the whole script.  Scoring a candidate
    transformation therefore costs O(edges touched), not
    O(script × vocabulary) — the engine behind
    ``LSConfig.incremental_scoring``.
    """

    __slots__ = ("statements", "counts", "_writers", "_readers", "_incoming_memo")

    def __init__(
        self,
        statements: Tuple[Statement, ...],
        counts: Counter,
        writers: Dict[str, List[int]],
        readers: Dict[str, List[int]],
    ):
        self.statements = statements
        self.counts = counts
        self._writers = writers
        self._readers = readers
        #: position -> base incoming-edge multiset; the statements are
        #: immutable, and one GetSteps wave probes the same readers from
        #: many deltas, so base bindings are computed once per position
        self._incoming_memo: Dict[int, Dict[Tuple[str, str], int]] = {}

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_statements(cls, statements: Sequence[Statement]) -> "EdgeState":
        """Full positional walk — the once-per-root bootstrap."""
        statements = tuple(statements)
        counts: Counter = Counter()
        writers: Dict[str, List[int]] = {}
        readers: Dict[str, List[int]] = {}
        last_writer: Dict[str, Tuple[int, str]] = {}
        for position, stmt in enumerate(statements):
            for edge in stmt.intra_edges:
                counts[edge.as_tuple()] += 1
            linked: Set[int] = set()
            for var in stmt.reads:
                readers.setdefault(var, []).append(position)
                writer = last_writer.get(var)
                if writer is not None and writer[0] != position:
                    if writer[0] not in linked:
                        counts[(writer[1], stmt.ngram.signature)] += 1
                        linked.add(writer[0])
            for var in stmt.writes:
                writers.setdefault(var, []).append(position)
                last_writer[var] = (position, stmt.ngram.signature)
        return cls(statements, counts, writers, readers)

    def __len__(self) -> int:
        return len(self.statements)

    # ---------------------------------------------------------------- bindings
    def _last_writer_before(self, var: str, position: int) -> Optional[int]:
        """Position of the last writer of *var* strictly before *position*."""
        positions = self._writers.get(var)
        if not positions:
            return None
        i = bisect_left(positions, position)
        return positions[i - 1] if i else None

    def _incoming(
        self,
        position: int,
        skip: Optional[int] = None,
        inserted_at: Optional[int] = None,
        inserted: Optional[Statement] = None,
    ) -> Dict[Tuple[str, str], int]:
        """Incoming inter-edge multiset of the reader statement at *position*.

        ``skip`` rebinds reads whose last writer is the statement being
        deleted to the previous writer of the same variable; ``inserted``
        (with ``inserted_at``) rebinds reads whose last writer falls
        before the insertion point to the virtually inserted statement.
        Dedup follows :func:`compute_edge_counts`: one edge per distinct
        writer per reader, regardless of how many variables bind to it.
        """
        stmt = self.statements[position]
        sig = stmt.ngram.signature
        edges: Dict[Tuple[str, str], int] = {}
        linked: Set[object] = set()
        inserted_writes = inserted.writes if inserted is not None else ()
        for var in stmt.reads:
            writer: object = self._last_writer_before(var, position)
            if skip is not None and writer == skip:
                writer = self._last_writer_before(var, skip)
            if (
                inserted is not None
                and var in inserted_writes
                and (writer is None or writer < inserted_at)  # type: ignore[operator]
            ):
                writer = _INSERTED
            if writer is None or writer in linked:
                continue
            linked.add(writer)
            if writer is _INSERTED:
                writer_sig = inserted.ngram.signature  # type: ignore[union-attr]
            else:
                writer_sig = self.statements[writer].ngram.signature  # type: ignore[index]
            edge = (writer_sig, sig)
            edges[edge] = edges.get(edge, 0) + 1
        return edges

    def _base_incoming(self, position: int) -> Dict[Tuple[str, str], int]:
        """Memoized :meth:`_incoming` with no splice adjustments applied."""
        cached = self._incoming_memo.get(position)
        if cached is None:
            cached = self._incoming(position)
            self._incoming_memo[position] = cached
        return cached

    def _affected_readers(
        self, write_vars: Set[str], lo: int, inclusive: bool
    ) -> List[int]:
        """Readers whose last-writer binding crosses the splice at *lo*.

        For a delete at ``lo`` (``inclusive=False``): readers strictly
        after ``lo`` bound to it — i.e. before the next writer of the
        variable.  For an insert at ``lo`` (``inclusive=True``): readers
        at or after ``lo`` currently bound before it.
        """
        affected: Set[int] = set()
        for var in write_vars:
            reader_positions = self._readers.get(var)
            if not reader_positions:
                continue
            writer_positions = self._writers.get(var, [])
            if inclusive:
                i = bisect_left(writer_positions, lo)
                start = bisect_left(reader_positions, lo)
            else:
                i = bisect_right(writer_positions, lo)
                start = bisect_right(reader_positions, lo)
            nxt = writer_positions[i] if i < len(writer_positions) else len(
                self.statements
            )
            # the window is inclusive of ``nxt`` itself: a statement that
            # both reads and writes the variable binds its read *before*
            # its own write, so its last writer still crosses the splice
            for r in reader_positions[start:]:
                if r > nxt:
                    break
                affected.add(r)
        return sorted(affected)

    # ------------------------------------------------------------------ deltas
    def delta_delete(self, position: int) -> EdgeDelta:
        """Edge delta of deleting the statement at *position* — O(Δ)."""
        if not 0 <= position < len(self.statements):
            raise IndexError(
                f"delete position {position} out of range for "
                f"{len(self.statements)} statements"
            )
        stmt = self.statements[position]
        changes: Dict[Tuple[str, str], int] = {}
        get = changes.get
        for edge in stmt.intra_edges:
            t = edge.as_tuple()
            changes[t] = get(t, 0) - 1
        for edge, n in self._base_incoming(position).items():
            changes[edge] = get(edge, 0) - n
        for reader in self._affected_readers(stmt.writes, position, inclusive=False):
            for edge, n in self._base_incoming(reader).items():
                changes[edge] = get(edge, 0) - n
            for edge, n in self._incoming(reader, skip=position).items():
                changes[edge] = get(edge, 0) + n
        return EdgeDelta("delete", position, None, _strip_zeros(changes))

    def delta_insert(self, position: int, stmt: Statement) -> EdgeDelta:
        """Edge delta of inserting *stmt* at *position* — O(Δ)."""
        if not 0 <= position <= len(self.statements):
            raise IndexError(
                f"insert position {position} out of range for "
                f"{len(self.statements)} statements"
            )
        changes: Dict[Tuple[str, str], int] = {}
        get = changes.get
        for edge in stmt.intra_edges:
            t = edge.as_tuple()
            changes[t] = get(t, 0) + 1
        # the newcomer's own incoming links: last writers before the splice
        sig = stmt.ngram.signature
        linked: Set[int] = set()
        for var in stmt.reads:
            writer = self._last_writer_before(var, position)
            if writer is None or writer in linked:
                continue
            linked.add(writer)
            edge = (self.statements[writer].ngram.signature, sig)
            changes[edge] = get(edge, 0) + 1
        for reader in self._affected_readers(stmt.writes, position, inclusive=True):
            for edge, n in self._base_incoming(reader).items():
                changes[edge] = get(edge, 0) - n
            for edge, n in self._incoming(
                reader, inserted_at=position, inserted=stmt
            ).items():
                changes[edge] = get(edge, 0) + n
        return EdgeDelta("insert", position, stmt, _strip_zeros(changes))

    # ------------------------------------------------------------------- apply
    def apply(self, delta: EdgeDelta) -> "EdgeState":
        """Successor state after *delta*: splice + patched counts.

        The edge multiset is patched from the delta (no recount); the
        per-variable position indexes are rebuilt in one cheap pass, since
        every position after the splice shifts anyway.
        """
        statements = list(self.statements)
        if delta.kind == "delete":
            del statements[delta.position]
        else:
            statements.insert(delta.position, delta.statement)
        counts = Counter(self.counts)
        for edge, change in delta.changes.items():
            new = counts[edge] + change
            if new:
                counts[edge] = new
            else:
                del counts[edge]
        writers: Dict[str, List[int]] = {}
        readers: Dict[str, List[int]] = {}
        for position, stmt in enumerate(statements):
            for var in stmt.reads:
                readers.setdefault(var, []).append(position)
            for var in stmt.writes:
                writers.setdefault(var, []).append(position)
        return EdgeState(tuple(statements), counts, writers, readers)


def _strip_zeros(changes: Dict[Tuple[str, str], int]) -> Dict[Tuple[str, str], int]:
    return {edge: change for edge, change in changes.items() if change}


def parse_script(source: str, lemmatized: bool = False, dialect=None) -> ScriptDAG:
    """Parse *source* into its DAG representation.

    Lemmatization (canonical renaming + normalization) is applied first
    unless the caller already did so.  *dialect* (None = the historical
    pandas surface) supplies the loader entry points used for canonical
    renaming and statement protection.
    """
    normalized = source if lemmatized else lemmatize(source, dialect=dialect)
    try:
        tree = ast.parse(normalized)
    except SyntaxError as exc:  # pragma: no cover - lemmatize already parsed
        raise ScriptParseError(str(exc)) from exc
    statements = [
        Statement.from_ast(index, node, dialect=dialect)
        for index, node in enumerate(tree.body)
    ]
    return ScriptDAG(statements)
