"""Static code lemmatization (Section 5.1, "Reducing Vocabulary").

Semantically equivalent steps written differently inflate the vocabulary:
``df['Age']`` and ``train['Age']`` are the same column when both frames were
read from the same CSV.  Lemmatization rewrites every script into a
canonical form before DAG construction:

1. dataframe variables assigned from ``read_csv`` are renamed to ``df``
   (``df2``, ``df3``, ... for additional distinct files), consistently
   across all scripts in a corpus;
2. plain aliases (``train = df``) inherit the canonical name;
3. the AST round-trip (`ast.unparse`) normalizes whitespace, quoting, and
   redundant parentheses.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from .errors import ScriptParseError, UnsupportedScriptError

__all__ = ["lemmatize", "read_csv_files", "split_statements"]

_UNSUPPORTED = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.While,
    ast.With,
    ast.Try,
)


def _parse(source: str) -> ast.Module:
    try:
        return ast.parse(source)
    except SyntaxError as exc:
        raise ScriptParseError(f"script is not valid Python: {exc}") from exc


def _check_straight_line(tree: ast.Module) -> None:
    for node in tree.body:
        if isinstance(node, _UNSUPPORTED):
            raise UnsupportedScriptError(
                f"unsupported construct at line {node.lineno}: {type(node).__name__}"
            )


#: The historical (pandas) call surface, used whenever no dialect is given.
_DEFAULT_LOADER_NAMES = frozenset({"read_csv"})
_DEFAULT_CANONICAL_BASE = "df"


def _loader_surface(dialect=None):
    """(loader_names, canonical_base) for *dialect* (None = pandas)."""
    if dialect is None:
        return _DEFAULT_LOADER_NAMES, _DEFAULT_CANONICAL_BASE
    return dialect.loader_names, dialect.canonical_base


def _read_csv_path(call: ast.Call, loader_names=_DEFAULT_LOADER_NAMES) -> Optional[str]:
    """Return the constant path argument of a loader call, if present."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name not in loader_names:
        return None
    if call.args and isinstance(call.args[0], ast.Constant):
        return str(call.args[0].value)
    return "<dynamic>"


def read_csv_files(source: str, dialect=None) -> List[str]:
    """List the distinct data paths a script loads, in first-read order."""
    loader_names, _base = _loader_surface(dialect)
    tree = _parse(source)
    paths: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            path = _read_csv_path(node, loader_names)
            if path is not None and path not in paths:
                paths.append(path)
    return paths


class _Renamer(ast.NodeTransformer):
    def __init__(self, mapping: Dict[str, str]):
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.Name:
        if node.id in self.mapping:
            return ast.copy_location(
                ast.Name(id=self.mapping[node.id], ctx=node.ctx), node
            )
        return node


def _build_rename_map(tree: ast.Module, dialect=None) -> Dict[str, str]:
    """Map loader-result variable names to the dialect's canonical
    ``df``/``df2``/... (pandas) or ``design``/``design2``/... names."""
    loader_names, base = _loader_surface(dialect)
    canonical_by_path: Dict[str, str] = {}
    rename: Dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            path = _read_csv_path(value, loader_names)
            if path is not None:
                if path not in canonical_by_path:
                    suffix = "" if not canonical_by_path else str(len(canonical_by_path) + 1)
                    canonical_by_path[path] = f"{base}{suffix}"
                rename[target.id] = canonical_by_path[path]
        elif isinstance(value, ast.Name) and value.id in rename:
            # plain alias: train = df
            rename[target.id] = rename[value.id]
    return {old: new for old, new in rename.items() if old != new}


def split_statements(source: str) -> List[str]:
    """Split a script into one normalized source line per statement."""
    tree = _parse(source)
    _check_straight_line(tree)
    return [ast.unparse(node) for node in tree.body]


def lemmatize(source: str, dialect=None) -> str:
    """Return the canonical (lemmatized) form of *source*.

    *dialect* (an :class:`~repro.dialects.ApiDialect`, or None for the
    historical pandas behavior) supplies the loader entry points and the
    canonical variable stem; everything else is surface-independent.

    Raises
    ------
    ScriptParseError
        If the script is not valid Python.
    UnsupportedScriptError
        If it uses constructs outside the supported straight-line class.
    """
    tree = _parse(source)
    _check_straight_line(tree)
    mapping = _build_rename_map(tree, dialect)
    if mapping:
        tree = _Renamer(mapping).visit(tree)
        ast.fix_missing_locations(tree)
    return "\n".join(ast.unparse(node) for node in tree.body)
