"""Persisting the curated search space (offline-phase output).

The offline phase (Section 5.1) parses every corpus script and builds the
vocabularies and corpus distribution.  For large corpora this is worth
doing once: ``save_vocabulary``/``load_vocabulary`` serialize the curated
search space to JSON so the online phase can start immediately.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Dict

from .vocabulary import CorpusVocabulary

__all__ = [
    "save_vocabulary",
    "load_vocabulary",
    "vocabulary_to_dict",
    "vocabulary_from_dict",
    "check_format_version",
]

_FORMAT_VERSION = 1


def check_format_version(found, supported: int, what: str) -> None:
    """Reject snapshots this build cannot faithfully interpret.

    A *newer* ``format_version`` means the snapshot was written by a
    later build whose schema this one does not know — loading it anyway
    could succeed structurally yet be silently wrong, so the error says
    to upgrade (or rebuild the snapshot).  Anything else that is not the
    supported version is malformed or from a retired format.
    """
    if found == supported:
        return
    if isinstance(found, int) and found > supported:
        raise ValueError(
            f"{what} snapshot has format_version {found}, newer than the "
            f"supported version {supported}: upgrade repro, or rebuild the "
            f"snapshot with this version"
        )
    raise ValueError(
        f"unsupported {what} format version: {found!r} (expected {supported})"
    )


def vocabulary_to_dict(vocabulary: CorpusVocabulary) -> dict:
    """JSON-serializable form of a curated vocabulary."""
    return {
        "format_version": _FORMAT_VERSION,
        "n_scripts": vocabulary.n_scripts,
        "avg_code_lines": vocabulary.stats().avg_code_lines,
        "edge_counts": [
            [source, target, count]
            for (source, target), count in sorted(vocabulary.edge_counts.items())
        ],
        "onegram_counts": dict(vocabulary.onegram_counts),
        "ngram_counts": dict(vocabulary.ngram_counts),
        "ngram_script_frequency": {
            sig: vocabulary.statement_frequency(sig)
            for sig in vocabulary.ngram_counts
        },
        "successors": {
            source: dict(counter)
            for source, counter in vocabulary.successors.items()
        },
        "onegram_templates": dict(vocabulary.onegram_templates),
        "relative_positions": dict(vocabulary.relative_positions),
    }


def vocabulary_from_dict(payload: dict) -> CorpusVocabulary:
    """Rebuild a vocabulary from its serialized form (no reparsing)."""
    check_format_version(payload.get("format_version"), _FORMAT_VERSION, "vocabulary")
    vocabulary = CorpusVocabulary.__new__(CorpusVocabulary)
    vocabulary._dags = []
    vocabulary.edge_counts = Counter(
        {(source, target): count for source, target, count in payload["edge_counts"]}
    )
    vocabulary.onegram_counts = Counter(payload["onegram_counts"])
    vocabulary.ngram_counts = Counter(payload["ngram_counts"])
    vocabulary.successors = defaultdict(
        Counter,
        {source: Counter(c) for source, c in payload["successors"].items()},
    )
    vocabulary.onegram_templates = dict(payload["onegram_templates"])
    vocabulary.relative_positions = dict(payload["relative_positions"])
    vocabulary._total_edges = sum(vocabulary.edge_counts.values())
    vocabulary._restored_n_scripts = int(payload["n_scripts"])
    vocabulary._restored_avg_lines = float(payload["avg_code_lines"])
    vocabulary._restored_frequencies = dict(payload["ngram_script_frequency"])
    return vocabulary


def save_vocabulary(vocabulary: CorpusVocabulary, path: str) -> None:
    """Write the curated search space to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(vocabulary_to_dict(vocabulary), handle, indent=1)


def load_vocabulary(path: str) -> CorpusVocabulary:
    """Load a search space previously written by :func:`save_vocabulary`."""
    with open(path, "r") as handle:
        return vocabulary_from_dict(json.load(handle))
