"""Atoms and edges — the units of the paper's DAG script representation.

Definition 3.1: an *atom* is one invocation AST node together with its
parents that are not invocation nodes (data nodes: names and constants).
Atoms are used at two granularities (Section 3):

* **1-gram atoms** — individual operation invocations such as
  ``fillna(df, median(df))`` or ``subscript(df, 'Age')``;
* **n-gram atoms** — whole statements (lines), e.g. the normalized text
  ``df = df.fillna(df.median())``.

Edges (``E'``) encode data flow: intra-statement edges link nested 1-gram
atoms to their consumers, and inter-statement edges link consecutive
statements that read/write the same canonical dataframe variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Atom", "Edge", "NGRAM", "ONEGRAM"]

ONEGRAM = "1-gram"
NGRAM = "n-gram"


@dataclass(frozen=True)
class Atom:
    """A hashable atomic unit of the DAG representation.

    Attributes
    ----------
    gram:
        ``"1-gram"`` (operation invocation) or ``"n-gram"`` (statement).
    signature:
        Canonical identity string.  For 1-grams this encodes the invocation
        name and its data-node arguments (nested invocations appear as the
        placeholder ``@``); for n-grams it is the lemmatized statement text.
    """

    gram: str
    signature: str

    def __post_init__(self):
        if self.gram not in (ONEGRAM, NGRAM):
            raise ValueError(f"invalid gram kind: {self.gram!r}")
        if not self.signature:
            raise ValueError("atom signature must be non-empty")

    def __str__(self) -> str:
        return self.signature


@dataclass(frozen=True)
class Edge:
    """A directed data-flow edge between two atoms (by signature)."""

    source: str
    target: str

    def as_tuple(self) -> Tuple[str, str]:
        return (self.source, self.target)

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}"
