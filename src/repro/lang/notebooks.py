"""Extracting data-preparation scripts from Jupyter notebooks.

The paper's corpora come from Kaggle, where most "scripts" are actually
notebooks.  This module flattens a notebook's code cells into one
straight-line script: IPython magics (``%matplotlib``, ``!pip``) and
display-only trailing expressions (``df.head()`` as a cell's last line)
are dropped, everything else is concatenated in cell order.
"""

from __future__ import annotations

import ast
import json
from typing import Any, Dict, Iterable, List, Union

__all__ = ["script_from_notebook", "scripts_from_notebook_dir"]

#: Cell-trailing expression calls that only exist to display output.
_DISPLAY_CALLS = {"head", "tail", "describe", "info", "display", "print", "sample"}


def _cell_source(cell: Dict[str, Any]) -> str:
    source = cell.get("source", "")
    if isinstance(source, list):
        source = "".join(source)
    return source


def _strip_magics(source: str) -> str:
    lines = []
    for line in source.splitlines():
        stripped = line.lstrip()
        if stripped.startswith(("%", "!", "?")):
            continue
        lines.append(line)
    return "\n".join(lines)


def _is_display_expression(node: ast.stmt) -> bool:
    """A bare trailing expression whose value is only shown, not used."""
    if not isinstance(node, ast.Expr):
        return False
    value = node.value
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        return name in _DISPLAY_CALLS
    # a bare name/subscript at cell end (e.g. `df` or `df.columns`)
    return isinstance(value, (ast.Name, ast.Attribute, ast.Subscript))


def _clean_cell(source: str) -> List[str]:
    source = _strip_magics(source)
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # skip cells that are not plain Python
    kept = [node for node in tree.body if not _is_display_expression(node)]
    return [ast.unparse(node) for node in kept]


def script_from_notebook(notebook: Union[str, Dict[str, Any]]) -> str:
    """Flatten a notebook (path or parsed JSON) into one script.

    Raises
    ------
    ValueError
        If the document has no code cells.
    """
    if isinstance(notebook, str):
        with open(notebook, "r") as handle:
            notebook = json.load(handle)
    cells = notebook.get("cells", [])
    statements: List[str] = []
    saw_code_cell = False
    for cell in cells:
        if cell.get("cell_type") != "code":
            continue
        saw_code_cell = True
        statements.extend(_clean_cell(_cell_source(cell)))
    if not saw_code_cell:
        raise ValueError("notebook contains no code cells")
    return "\n".join(statements)


def scripts_from_notebook_dir(paths: Iterable[str]) -> List[str]:
    """Flatten many notebooks, skipping unreadable/codeless ones."""
    scripts: List[str] = []
    for path in paths:
        try:
            scripts.append(script_from_notebook(path))
        except (ValueError, json.JSONDecodeError, OSError):
            continue
    return scripts
