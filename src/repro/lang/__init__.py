"""repro.lang — script representations (Section 3 of the paper).

Lemmatization, AST → DAG parsing at 1-gram (operation invocation) and
n-gram (statement) granularity, and corpus vocabulary construction.
"""

from .atoms import NGRAM, ONEGRAM, Atom, Edge
from .errors import ScriptError, ScriptParseError, UnsupportedScriptError
from .lemmatize import lemmatize, read_csv_files, split_statements
from .parser import (
    EdgeDelta,
    EdgeState,
    ScriptDAG,
    Statement,
    compute_edge_counts,
    extract_onegrams,
    parse_script,
)
from .notebooks import script_from_notebook, scripts_from_notebook_dir
from .persistence import (
    load_vocabulary,
    save_vocabulary,
    vocabulary_from_dict,
    vocabulary_to_dict,
)
from .vocabulary import CorpusStats, CorpusVocabulary

__all__ = [
    "NGRAM",
    "ONEGRAM",
    "Atom",
    "CorpusStats",
    "CorpusVocabulary",
    "Edge",
    "EdgeDelta",
    "EdgeState",
    "ScriptDAG",
    "ScriptError",
    "ScriptParseError",
    "Statement",
    "UnsupportedScriptError",
    "compute_edge_counts",
    "extract_onegrams",
    "lemmatize",
    "load_vocabulary",
    "parse_script",
    "read_csv_files",
    "save_vocabulary",
    "script_from_notebook",
    "scripts_from_notebook_dir",
    "split_statements",
    "vocabulary_from_dict",
    "vocabulary_to_dict",
]
