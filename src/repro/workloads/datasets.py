"""Synthetic data generators for the six evaluation competitions.

Each generator reproduces the schema, value ranges, missing-data pattern,
and target structure of the corresponding Kaggle dataset, with a learnable
(but noisy) relationship between features and target so the downstream
model-performance intent measure responds to data-preparation changes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..minipandas import NA, DataFrame

__all__ = [
    "generate_titanic",
    "generate_house",
    "generate_nlp",
    "generate_spaceship",
    "generate_medical",
    "generate_sales",
]


def _with_missing(rng: np.random.Generator, values: List, rate: float) -> List:
    """Blank out a fraction of *values* (None markers)."""
    out = list(values)
    mask = rng.random(len(out)) < rate
    for pos in np.flatnonzero(mask):
        out[pos] = None
    return out


def generate_titanic(rng: np.random.Generator, n_rows: int = 900) -> DataFrame:
    """Titanic passenger manifest: predict ``Survived``."""
    pclass = rng.choice([1, 2, 3], size=n_rows, p=[0.24, 0.21, 0.55])
    sex = rng.choice(["male", "female"], size=n_rows, p=[0.65, 0.35])
    age = np.clip(rng.normal(29, 14, n_rows), 0.4, 80).round(1)
    sibsp = rng.choice([0, 1, 2, 3, 4], size=n_rows, p=[0.68, 0.23, 0.05, 0.03, 0.01])
    parch = rng.choice([0, 1, 2, 3], size=n_rows, p=[0.76, 0.13, 0.09, 0.02])
    fare = np.round(np.exp(rng.normal(2.9, 0.9, n_rows)) * (4 - pclass) / 2, 2)
    embarked = rng.choice(["S", "C", "Q"], size=n_rows, p=[0.72, 0.19, 0.09])

    logits = (
        1.2 * (sex == "female").astype(float)
        - 0.45 * (pclass - 2)
        - 0.012 * (age - 29)
        + 0.004 * fare
        - 1.0
        + rng.normal(0, 0.8, n_rows)
    )
    survived = (logits > 0).astype(int)
    cabins = [
        f"{rng.choice(list('ABCDEF'))}{rng.integers(1, 130)}" for _ in range(n_rows)
    ]
    return DataFrame(
        {
            "PassengerId": list(range(1, n_rows + 1)),
            "Survived": survived.tolist(),
            "Pclass": pclass.tolist(),
            "Name": [f"Passenger, P. {i}" for i in range(n_rows)],
            "Sex": sex.tolist(),
            "Age": _with_missing(rng, age.tolist(), 0.20),
            "SibSp": sibsp.tolist(),
            "Parch": parch.tolist(),
            "Ticket": [f"T{rng.integers(10000, 99999)}" for _ in range(n_rows)],
            "Fare": fare.tolist(),
            "Cabin": _with_missing(rng, cabins, 0.77),
            "Embarked": _with_missing(rng, embarked.tolist(), 0.02),
        }
    )


def generate_house(rng: np.random.Generator, n_rows: int = 1200) -> DataFrame:
    """House-price table: predict ``SalePrice`` (regression)."""
    lot_area = rng.integers(1500, 21000, n_rows)
    lot_frontage = np.round(np.sqrt(lot_area) * rng.normal(1.0, 0.1, n_rows), 0)
    overall_qual = rng.integers(1, 11, n_rows)
    year_built = rng.integers(1900, 2011, n_rows)
    gr_liv_area = rng.integers(500, 4500, n_rows)
    garage_cars = rng.choice([0, 1, 2, 3], size=n_rows, p=[0.06, 0.26, 0.56, 0.12])
    basement = rng.integers(0, 2200, n_rows)
    neighborhood = rng.choice(
        ["NAmes", "CollgCr", "OldTown", "Edwards", "Somerst"],
        size=n_rows,
        p=[0.3, 0.25, 0.2, 0.15, 0.1],
    )
    house_style = rng.choice(["1Story", "2Story", "1.5Fin"], size=n_rows, p=[0.5, 0.35, 0.15])
    price = (
        15000
        + 52 * gr_liv_area
        + 11000 * overall_qual
        + 9000 * garage_cars
        + 14 * basement
        + 120 * (year_built - 1900)
        + rng.normal(0, 18000, n_rows)
    ).round(0)
    return DataFrame(
        {
            "Id": list(range(1, n_rows + 1)),
            "LotArea": lot_area.tolist(),
            "LotFrontage": _with_missing(rng, lot_frontage.tolist(), 0.18),
            "OverallQual": overall_qual.tolist(),
            "YearBuilt": year_built.tolist(),
            "GrLivArea": gr_liv_area.tolist(),
            "GarageCars": garage_cars.tolist(),
            "TotalBsmtSF": basement.tolist(),
            "GarageYrBlt": _with_missing(rng, (year_built + rng.integers(0, 3, n_rows)).tolist(), 0.06),
            "Neighborhood": neighborhood.tolist(),
            "HouseStyle": house_style.tolist(),
            "MasVnrArea": _with_missing(rng, rng.integers(0, 1200, n_rows).tolist(), 0.01),
            "SalePrice": price.tolist(),
        }
    )


def generate_nlp(rng: np.random.Generator, n_rows: int = 1800) -> DataFrame:
    """Disaster-tweets table: predict ``target`` from tweet metadata."""
    keywords = ["fire", "flood", "earthquake", "storm", "crash", "safe", "music", "game"]
    disaster_words = {"fire", "flood", "earthquake", "storm", "crash"}
    keyword = rng.choice(keywords, size=n_rows)
    length = rng.integers(20, 140, n_rows)
    exclamations = rng.poisson(0.7, n_rows)
    hashtags = rng.poisson(1.1, n_rows)
    is_disaster_kw = np.array([k in disaster_words for k in keyword], dtype=float)
    logits = 1.6 * is_disaster_kw + 0.01 * (length - 80) - 0.9 + rng.normal(0, 0.9, n_rows)
    target = (logits > 0).astype(int)
    texts = [
        f"{'BREAKING ' if t else ''}report about {k} number {i}"
        for i, (k, t) in enumerate(zip(keyword, target))
    ]
    locations = rng.choice(["USA", "UK", "Canada", "India", "remote"], size=n_rows)
    return DataFrame(
        {
            "id": list(range(n_rows)),
            "keyword": _with_missing(rng, keyword.tolist(), 0.06),
            "location": _with_missing(rng, locations.tolist(), 0.33),
            "text": texts,
            "char_count": length.tolist(),
            "exclamation_count": exclamations.tolist(),
            "hashtag_count": hashtags.tolist(),
            "target": target.tolist(),
        }
    )


def generate_spaceship(rng: np.random.Generator, n_rows: int = 1500) -> DataFrame:
    """Spaceship-Titanic manifest: predict ``Transported``."""
    home = rng.choice(["Earth", "Europa", "Mars"], size=n_rows, p=[0.54, 0.25, 0.21])
    cryo = rng.choice([True, False], size=n_rows, p=[0.36, 0.64])
    age = np.clip(rng.normal(29, 14, n_rows), 0, 79).round(0)
    vip = rng.choice([True, False], size=n_rows, p=[0.02, 0.98])
    spend = lambda scale: np.where(
        cryo, 0.0, np.round(np.exp(rng.normal(scale, 1.4, n_rows)), 0)
    )
    room_service = spend(4.2)
    food_court = spend(4.6)
    spa = spend(4.1)
    vr_deck = spend(4.0)
    destination = rng.choice(
        ["TRAPPIST-1e", "55 Cancri e", "PSO J318.5-22"], size=n_rows, p=[0.69, 0.21, 0.10]
    )
    logits = (
        1.4 * cryo.astype(float)
        + 0.5 * (home == "Europa").astype(float)
        - 0.0004 * (room_service + spa + vr_deck)
        - 0.1
        + rng.normal(0, 0.8, n_rows)
    )
    transported = (logits > 0).astype(int)
    cabins = [
        f"{rng.choice(list('BFGE'))}/{rng.integers(0, 1800)}/{rng.choice(['P', 'S'])}"
        for _ in range(n_rows)
    ]
    return DataFrame(
        {
            "PassengerId": [f"{i:04d}_01" for i in range(n_rows)],
            "HomePlanet": _with_missing(rng, home.tolist(), 0.02),
            "CryoSleep": _with_missing(rng, cryo.tolist(), 0.02),
            "Cabin": _with_missing(rng, cabins, 0.02),
            "Destination": _with_missing(rng, destination.tolist(), 0.02),
            "Age": _with_missing(rng, age.tolist(), 0.02),
            "VIP": _with_missing(rng, vip.tolist(), 0.02),
            "RoomService": _with_missing(rng, room_service.tolist(), 0.02),
            "FoodCourt": _with_missing(rng, food_court.tolist(), 0.02),
            "Spa": _with_missing(rng, spa.tolist(), 0.02),
            "VRDeck": _with_missing(rng, vr_deck.tolist(), 0.02),
            "Transported": transported.tolist(),
        }
    )


def generate_medical(rng: np.random.Generator, n_rows: int = 768) -> DataFrame:
    """Pima Indians diabetes table: predict ``Outcome``."""
    pregnancies = rng.poisson(3.8, n_rows)
    glucose = np.clip(rng.normal(121, 31, n_rows), 0, 199).round(0)
    blood_pressure = np.clip(rng.normal(69, 19, n_rows), 0, 122).round(0)
    skin = np.clip(rng.normal(29, 16, n_rows), 0, 110).round(0)
    insulin = np.clip(rng.normal(80, 110, n_rows), 0, 846).round(0)
    bmi = np.clip(rng.normal(32, 7.9, n_rows), 0, 67).round(1)
    pedigree = np.round(np.exp(rng.normal(-1.0, 0.6, n_rows)), 3)
    age = np.clip(rng.normal(33, 12, n_rows), 21, 81).round(0)
    logits = (
        0.03 * (glucose - 121)
        + 0.08 * (bmi - 32)
        + 0.03 * (age - 33)
        + 0.1 * pregnancies
        - 0.8
        + rng.normal(0, 1.0, n_rows)
    )
    outcome = (logits > 0).astype(int)
    return DataFrame(
        {
            "Pregnancies": pregnancies.tolist(),
            "Glucose": glucose.tolist(),
            "BloodPressure": blood_pressure.tolist(),
            "SkinThickness": _with_missing(rng, skin.tolist(), 0.08),
            "Insulin": _with_missing(rng, insulin.tolist(), 0.12),
            "BMI": bmi.tolist(),
            "DiabetesPedigreeFunction": pedigree.tolist(),
            "Age": age.tolist(),
            "Outcome": outcome.tolist(),
        }
    )


def generate_sales(rng: np.random.Generator, n_rows: int = 40000) -> DataFrame:
    """Future-sales transactions: predict ``item_cnt_day`` (regression).

    The paper's Sales table has 744k tuples; we scale to 40k (documented in
    EXPERIMENTS.md) while keeping it ~20x larger than the median dataset so
    the sampling optimization still matters (Figure 7).
    """
    shop_id = rng.integers(0, 60, n_rows)
    item_id = rng.integers(0, 5000, n_rows)
    category = rng.integers(0, 40, n_rows)
    month = rng.integers(1, 13, n_rows)
    year = rng.choice([2013, 2014, 2015], size=n_rows)
    day = rng.integers(1, 29, n_rows)
    # the real competition ships dates as DD.MM.YYYY strings
    dates = [
        f"{d:02d}.{m:02d}.{y}" for d, m, y in zip(day, month, year)
    ]
    base_price = np.round(np.exp(rng.normal(6.2, 1.0, n_rows)), 2)
    cnt = np.maximum(
        0,
        rng.poisson(1.2, n_rows)
        + (category < 8).astype(int)
        + (month == 12).astype(int)
        - (base_price > 2000).astype(int),
    ).astype(float)
    # a sprinkle of returns (negative counts) and outlier prices, as in the
    # real competition data, so cleaning steps have something to do
    returns = rng.random(n_rows) < 0.01
    cnt[returns] = -1.0
    spikes = rng.random(n_rows) < 0.002
    base_price[spikes] *= 80
    return DataFrame(
        {
            "date": dates,
            "shop_id": shop_id.tolist(),
            "item_id": item_id.tolist(),
            "item_category_id": category.tolist(),
            "month": month.tolist(),
            "year": year.tolist(),
            "item_price": _with_missing(rng, base_price.tolist(), 0.005),
            "item_cnt_day": cnt.tolist(),
        }
    )
