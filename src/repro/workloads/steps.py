"""Data-preparation step pools for the six synthetic competitions.

Each competition gets a set of :class:`StepSlot` decision points whose
alternative probabilities shape the corpus step distribution: a majority
practice (e.g. mean imputation), competing minority variants (median
imputation), and a tail of rare idiosyncratic steps.  This long-tailed
structure is what makes bottom-up standardization both possible (there is
a consensus to converge to) and bounded (the consensus is not universal).

Every template is written against the canonical variable ``df`` and must
execute on the competition's generated dataset under minipandas.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .schemas import StepSlot

__all__ = ["SLOT_POOLS", "RARE_POOLS"]

SLOT_POOLS: Dict[str, Tuple[StepSlot, ...]] = {
    "titanic": (
        StepSlot("impute", (
            ("df['Age'] = df['Age'].fillna(df['Age'].mean())", 0.45),
            ("df['Age'] = df['Age'].fillna(df['Age'].median())", 0.2),
            ("df = df.dropna(subset=['Age'])", 0.1),
        )),
        StepSlot("impute", (
            ("df['Embarked'] = df['Embarked'].fillna('S')", 0.5),
            ("df = df.dropna(subset=['Embarked'])", 0.12),
        )),
        StepSlot("clean", (
            ("df = df.drop('Cabin', axis=1)", 0.6),
            ("df['Cabin'] = df['Cabin'].fillna('Unknown')", 0.12),
        )),
        StepSlot("clean", (
            ("df = df.drop(['PassengerId', 'Name', 'Ticket'], axis=1)", 0.7),
            ("df = df.drop(['Name', 'Ticket'], axis=1)", 0.15),
        )),
        StepSlot("filter", (
            ("df = df[df['Fare'] < 300]", 0.3),
            ("df = df[df['Fare'] > 0]", 0.12),
        )),
        StepSlot("feature", (
            ("df['FamilySize'] = df['SibSp'] + df['Parch'] + 1", 0.45),
        )),
        StepSlot("feature", (
            ("df['IsAlone'] = (df['SibSp'] + df['Parch'] == 0).astype(int)", 0.25),
        )),
        StepSlot("feature", (
            ("df['Sex'] = df['Sex'].map({'male': 0, 'female': 1})", 0.55),
        )),
        StepSlot("encode", (
            ("df = pd.get_dummies(df, columns=['Embarked'])", 0.45),
            ("df['Embarked'] = df['Embarked'].map({'S': 0, 'C': 1, 'Q': 2})", 0.18),
        )),
    ),
    "house": (
        StepSlot("impute", (
            ("df['LotFrontage'] = df['LotFrontage'].fillna(df['LotFrontage'].mean())", 0.4),
            ("df['LotFrontage'] = df['LotFrontage'].fillna(df['LotFrontage'].median())", 0.25),
        )),
        StepSlot("impute", (
            ("df['GarageYrBlt'] = df['GarageYrBlt'].fillna(0)", 0.35),
            ("df['GarageYrBlt'] = df['GarageYrBlt'].fillna(df['GarageYrBlt'].median())", 0.15),
        )),
        StepSlot("impute", (
            ("df['MasVnrArea'] = df['MasVnrArea'].fillna(0)", 0.45),
        )),
        StepSlot("clean", (
            ("df = df.drop('Id', axis=1)", 0.7),
        )),
        StepSlot("filter", (
            ("df = df[df['GrLivArea'] < 4000]", 0.45),
            ("df = df[df['GrLivArea'] < 4500]", 0.1),
        )),
        StepSlot("feature", (
            ("df['HouseAge'] = 2011 - df['YearBuilt']", 0.35),
        )),
        StepSlot("feature", (
            ("df['TotalSF'] = df['GrLivArea'] + df['TotalBsmtSF']", 0.4),
        )),
        StepSlot("encode", (
            ("df = pd.get_dummies(df, columns=['Neighborhood', 'HouseStyle'])", 0.55),
            ("df = df.drop(['Neighborhood', 'HouseStyle'], axis=1)", 0.15),
        )),
    ),
    "nlp": (
        StepSlot("impute", (
            ("df['keyword'] = df['keyword'].fillna('none')", 0.55),
            ("df = df.dropna(subset=['keyword'])", 0.1),
        )),
        StepSlot("clean", (
            ("df = df.drop('location', axis=1)", 0.6),
            ("df['location'] = df['location'].fillna('unknown')", 0.15),
        )),
        StepSlot("clean", (
            ("df['text'] = df['text'].str.lower()", 0.55),
        )),
        StepSlot("feature", (
            ("df['word_count'] = df['text'].apply(lambda t: len(t.split()))", 0.4),
        )),
        StepSlot("encode", (
            ("df = df.drop(['id', 'text'], axis=1)", 0.55),
            ("df = df.drop('text', axis=1)", 0.15),
        )),
        StepSlot("encode", (
            ("df = pd.get_dummies(df, columns=['keyword'])", 0.45),
        )),
    ),
    "spaceship": (
        StepSlot("impute", (
            ("df['Age'] = df['Age'].fillna(df['Age'].mean())", 0.45),
            ("df['Age'] = df['Age'].fillna(df['Age'].median())", 0.15),
        )),
        StepSlot("impute", (
            ("df = df.fillna({'RoomService': 0, 'FoodCourt': 0, 'Spa': 0, 'VRDeck': 0})", 0.5),
        )),
        StepSlot("impute", (
            ("df['HomePlanet'] = df['HomePlanet'].fillna('Earth')", 0.4),
            ("df = df.dropna(subset=['HomePlanet'])", 0.1),
        )),
        StepSlot("impute", (
            ("df['CryoSleep'] = df['CryoSleep'].fillna(False)", 0.45),
        )),
        StepSlot("clean", (
            ("df = df.drop(['PassengerId', 'Cabin'], axis=1)", 0.6),
            ("df = df.drop('Cabin', axis=1)", 0.15),
        )),
        StepSlot("feature", (
            ("df['TotalSpend'] = df['RoomService'] + df['FoodCourt'] + df['Spa'] + df['VRDeck']", 0.35),
        )),
        StepSlot("feature", (
            ("df['CryoSleep'] = df['CryoSleep'].map({True: 1, False: 0})", 0.35),
        )),
        StepSlot("encode", (
            ("df = pd.get_dummies(df, columns=['HomePlanet', 'Destination'])", 0.5),
            ("df = df.drop(['HomePlanet', 'Destination'], axis=1)", 0.12),
        )),
    ),
    "medical": (
        StepSlot("impute", (
            ("df = df.fillna(df.mean())", 0.45),
            ("df = df.fillna(df.median())", 0.2),
            ("df = df.dropna()", 0.1),
        )),
        StepSlot("filter", (
            ("df = df[df['SkinThickness'] < 80]", 0.4),
        )),
        StepSlot("filter", (
            ("df = df[df['Insulin'] < 600]", 0.22),
        )),
        StepSlot("filter", (
            ("df = df[df['Pregnancies'] < 12]", 0.15),
        )),
        StepSlot("feature", (
            ("df['GlucoseBMI'] = df['Glucose'] * df['BMI']", 0.2),
        )),
        StepSlot("encode", (
            ("df = pd.get_dummies(df)", 0.3),
        )),
    ),
    "sales": (
        StepSlot("clean", (
            ("df['date'] = pd.to_datetime(df['date'])", 0.4),
            ("df = df.drop('date', axis=1)", 0.3),
        )),
        StepSlot("clean", (
            ("df = df[df['item_cnt_day'] > 0]", 0.5),
            ("df['item_cnt_day'] = df['item_cnt_day'].clip(0, 20)", 0.25),
        )),
        StepSlot("filter", (
            ("df = df[df['item_price'] < 100000]", 0.45),
            ("df = df[df['item_price'] > 0]", 0.18),
        )),
        StepSlot("impute", (
            ("df['item_price'] = df['item_price'].fillna(df['item_price'].median())", 0.4),
            ("df = df.dropna(subset=['item_price'])", 0.15),
        )),
        StepSlot("feature", (
            ("df['revenue'] = df['item_price'] * df['item_cnt_day']", 0.3),
        )),
        StepSlot("feature", (
            ("df['is_december'] = (df['month'] == 12).astype(int)", 0.25),
        )),
    ),
}

RARE_POOLS: Dict[str, Tuple[str, ...]] = {
    "titanic": (
        "df['Age'] = df['Age'].clip(0, 70)",
        "df = df.drop_duplicates()",
        "df = df[df['Embarked'] == 'S']",
        "df['Fare'] = df['Fare'].round(0)",
        "df = df.sort_values('Fare')",
        "df['Pclass'] = df['Pclass'].astype(str)",
        "df['FarePerPerson'] = df['Fare'] / (df['SibSp'] + df['Parch'] + 1)",
        "df = df[df['Age'] > 1]",
        "df['Title'] = df['Name'].str.contains('Mrs')",
    ),
    "house": (
        "df['LotArea'] = df['LotArea'].clip(0, 50000)",
        "df = df[df['OverallQual'] > 2]",
        "df = df.sort_values('YearBuilt')",
        "df['QualArea'] = df['OverallQual'] * df['GrLivArea']",
        "df = df[df['TotalBsmtSF'] < 3000]",
        "df['YearBuilt'] = df['YearBuilt'].astype(float)",
        "df = df.drop('MasVnrArea', axis=1)",
    ),
    "nlp": (
        "df['exclamation_count'] = df['exclamation_count'].clip(0, 5)",
        "df = df[df['char_count'] > 25]",
        "df['has_hashtag'] = (df['hashtag_count'] > 0).astype(int)",
        "df = df.drop_duplicates()",
        "df = df.sort_values('char_count')",
    ),
    "spaceship": (
        "df['VIP'] = df['VIP'].fillna(False)",
        "df = df[df['Age'] > 0]",
        "df['Spa'] = df['Spa'].clip(0, 10000)",
        "df = df.drop('VIP', axis=1)",
        "df = df.sort_values('Age')",
        "df['RoomService'] = df['RoomService'].round(0)",
        "df = df.drop_duplicates()",
    ),
    "medical": (
        "df['Age'] = df['Age'].clip(21, 70)",
        "df = df[df['BMI'] > 0]",
        "df = df[df['BloodPressure'] > 0]",
        "df['Insulin'] = df['Insulin'].round(0)",
        "df = df.sort_values('Glucose')",
        "df = df[df['Glucose'] > 0]",
        "df = df.drop('DiabetesPedigreeFunction', axis=1)",
    ),
    "sales": (
        "df = df[df['year'] == 2015]",
        "df['item_price'] = df['item_price'].round(2)",
        "df = df.drop('item_category_id', axis=1)",
        "df = df.sort_values('item_price')",
        "df = df.drop_duplicates()",
        "df['day'] = pd.to_datetime(df['date']).dt.day",
        "df['price_rank'] = df['item_price'].rank()",
    ),
}
