"""Competition specifications for the six evaluation datasets (Table 3).

The paper evaluates on six Kaggle competitions.  Offline, we synthesize
each one: a data generator that reproduces the schema and missing-data
structure, and a script-step pool whose frequency distribution mirrors the
long-tailed structure of real notebook corpora (a common core of majority
steps, competing minority variants, and a tail of idiosyncratic steps).

Row and corpus sizes follow Table 3, with the Sales table scaled from 744k
to 40k rows for runtime (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["StepSlot", "CompetitionSpec", "GROUPS"]

#: Canonical ordering of data-preparation phases inside a script.
GROUPS = {
    "impute": 0,
    "clean": 1,
    "filter": 2,
    "feature": 3,
    "encode": 4,
    "split": 5,
}


@dataclass(frozen=True)
class StepSlot:
    """One decision point in script generation.

    A slot holds mutually exclusive alternatives — e.g. "how do you impute
    Age?" with variants (mean 0.5, median 0.2, drop 0.1, nothing 0.2).
    Generation rolls one alternative (or none) per slot; the probabilities
    shape the corpus step distribution Q(x).
    """

    group: str
    alternatives: Tuple[Tuple[str, float], ...]

    def __post_init__(self):
        if self.group not in GROUPS:
            raise ValueError(f"unknown step group: {self.group!r}")
        total = sum(p for _, p in self.alternatives)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"slot probabilities must sum to <= 1, got {total:.3f}"
            )
        for source, p in self.alternatives:
            if not source or p < 0:
                raise ValueError(f"invalid alternative: ({source!r}, {p})")


@dataclass(frozen=True)
class CompetitionSpec:
    """Everything needed to synthesize one competition's data and corpus."""

    name: str
    target: str
    task: str  # 'classification' | 'regression'
    n_rows: int
    n_scripts: int
    data_file: str
    generator: Callable  # (numpy Generator, n_rows) -> minipandas DataFrame
    slots: Tuple[StepSlot, ...]
    rare_steps: Tuple[str, ...]
    #: probability a generated script ends with the y/X split convention
    split_probability: float = 0.6

    def __post_init__(self):
        if self.task not in ("classification", "regression"):
            raise ValueError(f"invalid task: {self.task!r}")
        if self.n_rows < 10:
            raise ValueError("n_rows must be >= 10")
        if self.n_scripts < 2:
            raise ValueError("n_scripts must be >= 2")
