"""Target-leakage injection (Section 6.6 study setup).

The paper uses GPT-4 to inject leakage snippets into 10% of real scripts;
offline, we inject programmatically from the same family of patterns the
paper illustrates (Figure 8): target copies, noisy target duplicates, and
target-derived encodings.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LEAKAGE_PATTERNS", "inject_target_leakage", "leakage_snippets_for"]


def leakage_snippets_for(target: str, feature_column: Optional[str] = None) -> List[str]:
    """The leakage snippet family, instantiated for a target column."""
    snippets = [
        f"df['{target}_copy'] = df['{target}']",
        f"df['{target}_dup'] = df['{target}'] * 1",
        (
            f"df['{target}_noisy'] = df['{target}']\n"
            f"update = df.sample(20, random_state=1).index\n"
            f"df.loc[update, '{target}_noisy'] = 0"
        ),
    ]
    if feature_column:
        snippets.append(
            f"df['{feature_column}_enc'] = "
            f"df.groupby('{feature_column}')['{target}'].transform('mean')"
        )
    return snippets


#: Exposed for documentation/tests; instantiated per-target at use time.
LEAKAGE_PATTERNS = ("copy", "dup", "noisy_copy", "target_encoding")


def inject_target_leakage(
    script: str,
    target: str,
    rng: np.random.Generator,
    feature_column: Optional[str] = None,
) -> Tuple[str, List[str]]:
    """Insert one leakage snippet into *script*.

    The snippet lands just before the conventional ``y = df[target]`` /
    ``X = df.drop(...)`` tail when present (so the leaked column survives
    into the feature set), else at the end of the script.

    Returns
    -------
    (injected_script, [snippet]) — the snippet is the ground truth the
    detector must flag.
    """
    if f"'{target}'" not in script and f'"{target}"' not in script:
        raise ValueError(
            f"script never references the target column {target!r}; "
            "leakage injection would be undetectable by construction"
        )
    snippets = leakage_snippets_for(target, feature_column)
    snippet = snippets[int(rng.integers(0, len(snippets)))]

    # scripts may call their dataframe `train`/`data`; match the snippet to it
    match = re.search(r"^(\w+)\s*=\s*pd\.read_csv", script, flags=re.MULTILINE)
    if match and match.group(1) != "df":
        snippet = re.sub(r"\bdf\b", match.group(1), snippet)

    lines = script.splitlines()
    insert_at = len(lines)
    for position, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("y =") or stripped.startswith("X ="):
            insert_at = position
            break
    new_lines = lines[:insert_at] + snippet.splitlines() + lines[insert_at:]
    return "\n".join(new_lines), [snippet]
