"""Synthetic competition builder: datasets + script corpora (Section 6.1.3).

The paper downloads each competition's scripts via the Kaggle API; offline,
we synthesize them.  Every generated script is validated by actually
executing it in the sandbox against the generated dataset, so the corpus
satisfies the paper's implicit precondition that peer scripts run.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sandbox import run_script
from .datasets import (
    generate_house,
    generate_medical,
    generate_nlp,
    generate_sales,
    generate_spaceship,
    generate_titanic,
)
from .schemas import GROUPS, CompetitionSpec, StepSlot
from .steps import RARE_POOLS, SLOT_POOLS

__all__ = ["ScriptCorpus", "SPECS", "build_competition", "competition_names", "generate_scripts"]

#: Fraction chance each rare (tail) step appears in a given script.
_RARE_STEP_PROBABILITY = 0.06

#: Chance a script is a minimal "starter notebook" (load + target split
#: only) — real Kaggle corpora always contain a few of these.
_MINIMAL_SCRIPT_PROBABILITY = 0.18

#: Alternate dataframe variable names (lemmatization unifies them).
_VARIABLE_NAMES = ("df", "df", "df", "train", "data")

SPECS: Dict[str, CompetitionSpec] = {
    "titanic": CompetitionSpec(
        name="titanic", target="Survived", task="classification",
        n_rows=900, n_scripts=62, data_file="train.csv",
        generator=generate_titanic, slots=SLOT_POOLS["titanic"],
        rare_steps=RARE_POOLS["titanic"], split_probability=0.5,
    ),
    "house": CompetitionSpec(
        name="house", target="SalePrice", task="regression",
        n_rows=1200, n_scripts=49, data_file="train.csv",
        generator=generate_house, slots=SLOT_POOLS["house"],
        rare_steps=RARE_POOLS["house"], split_probability=0.55,
    ),
    "nlp": CompetitionSpec(
        name="nlp", target="target", task="classification",
        n_rows=1800, n_scripts=24, data_file="train.csv",
        generator=generate_nlp, slots=SLOT_POOLS["nlp"],
        rare_steps=RARE_POOLS["nlp"], split_probability=0.5,
    ),
    "spaceship": CompetitionSpec(
        name="spaceship", target="Transported", task="classification",
        n_rows=1500, n_scripts=38, data_file="train.csv",
        generator=generate_spaceship, slots=SLOT_POOLS["spaceship"],
        rare_steps=RARE_POOLS["spaceship"], split_probability=0.55,
    ),
    "medical": CompetitionSpec(
        name="medical", target="Outcome", task="classification",
        n_rows=768, n_scripts=47, data_file="train.csv",
        generator=generate_medical, slots=SLOT_POOLS["medical"],
        rare_steps=RARE_POOLS["medical"], split_probability=0.5,
    ),
    "sales": CompetitionSpec(
        name="sales", target="item_cnt_day", task="regression",
        n_rows=40000, n_scripts=26, data_file="train.csv",
        generator=generate_sales, slots=SLOT_POOLS["sales"],
        rare_steps=RARE_POOLS["sales"], split_probability=0.45,
    ),
}


def competition_names() -> List[str]:
    return list(SPECS)


@dataclass
class ScriptCorpus:
    """A built competition: dataset on disk plus its script corpus."""

    name: str
    target: str
    task: str
    data_dir: str
    data_file: str
    scripts: List[str]
    votes: List[int] = field(default_factory=list)

    def __post_init__(self):
        if self.votes and len(self.votes) != len(self.scripts):
            raise ValueError("votes must parallel scripts")

    def __len__(self) -> int:
        return len(self.scripts)

    def leave_one_out(self):
        """Yield (user_script, remaining_corpus) pairs (Section 6.1.3)."""
        for held_out in range(len(self.scripts)):
            rest = [s for pos, s in enumerate(self.scripts) if pos != held_out]
            yield self.scripts[held_out], rest

    def small(self, n: int = 10, seed: int = 0) -> "ScriptCorpus":
        """A down-sampled corpus (the paper's "small corpus" scenario)."""
        rng = np.random.default_rng(seed)
        n = min(n, len(self.scripts))
        picks = sorted(rng.choice(len(self.scripts), size=n, replace=False).tolist())
        return ScriptCorpus(
            name=f"{self.name}-small",
            target=self.target,
            task=self.task,
            data_dir=self.data_dir,
            data_file=self.data_file,
            scripts=[self.scripts[p] for p in picks],
            votes=[self.votes[p] for p in picks] if self.votes else [],
        )

    def low_ranked(self, fraction: float = 0.3) -> "ScriptCorpus":
        """The bottom-*fraction* of scripts by vote count (Section 6.3.3)."""
        if not self.votes:
            raise ValueError("corpus has no vote metadata")
        order = sorted(range(len(self.scripts)), key=lambda pos: self.votes[pos])
        keep = order[: max(2, int(round(len(order) * fraction)))]
        keep.sort()
        return ScriptCorpus(
            name=f"{self.name}-low-ranked",
            target=self.target,
            task=self.task,
            data_dir=self.data_dir,
            data_file=self.data_file,
            scripts=[self.scripts[p] for p in keep],
            votes=[self.votes[p] for p in keep],
        )


def _substitute_variable(source: str, variable: str) -> str:
    if variable == "df":
        return source
    return re.sub(r"\bdf\b", variable, source)


def _choose_alternative(slot: StepSlot, rng: np.random.Generator) -> Optional[str]:
    roll = rng.random()
    cumulative = 0.0
    for source, probability in slot.alternatives:
        cumulative += probability
        if roll < cumulative:
            return source
    return None


def _majority_coverage(chosen: Sequence[str], spec: CompetitionSpec) -> float:
    """Fraction of slots where the script picked the majority alternative."""
    majority = {
        max(slot.alternatives, key=lambda alt: alt[1])[0] for slot in spec.slots
    }
    if not majority:
        return 0.0
    hits = sum(1 for step in chosen if step in majority)
    return hits / len(majority)


def _generate_one_script(
    spec: CompetitionSpec, rng: np.random.Generator
) -> Tuple[str, float]:
    variable = rng.choice(_VARIABLE_NAMES)
    lines = ["import pandas as pd"]
    if rng.random() < 0.4:
        lines.append("import numpy as np")
    lines.append(f"{variable} = pd.read_csv('{spec.data_file}')")

    if rng.random() < _MINIMAL_SCRIPT_PROBABILITY:
        lines.append(f"y = {variable}['{spec.target}']")
        lines.append(f"X = {variable}.drop('{spec.target}', axis=1)")
        return "\n".join(lines), 0.0

    chosen: List[Tuple[int, str]] = []
    for position, slot in enumerate(spec.slots):
        source = _choose_alternative(slot, rng)
        if source is not None:
            chosen.append((GROUPS[slot.group] * 100 + position, source))
    for source in spec.rare_steps:
        if rng.random() < _RARE_STEP_PROBABILITY:
            # rare steps land at a random phase between impute and encode
            phase = int(rng.integers(0, GROUPS["encode"] + 1))
            chosen.append((phase * 100 + 50 + int(rng.integers(0, 40)), source))
    chosen.sort(key=lambda pair: pair[0])

    body = [step for _, step in chosen]
    coverage = _majority_coverage(body, spec)
    lines.extend(_substitute_variable(step, variable) for step in body)

    if rng.random() < spec.split_probability:
        lines.append(f"y = {variable}['{spec.target}']")
        lines.append(f"X = {variable}.drop('{spec.target}', axis=1)")
    return "\n".join(lines), coverage


def generate_scripts(
    spec: CompetitionSpec,
    data_dir: str,
    rng: np.random.Generator,
    n_scripts: Optional[int] = None,
    max_attempts_per_script: int = 8,
) -> Tuple[List[str], List[int]]:
    """Generate *n_scripts* sandbox-validated scripts plus synthetic votes.

    Scripts that fail to execute (rare-step conflicts such as referencing a
    dropped column) are regenerated, mirroring the paper's use of working
    notebook corpora.  Votes model Kaggle upvotes: scripts that follow
    majority practice attract more of them.
    """
    n_scripts = n_scripts or spec.n_scripts
    scripts: List[str] = []
    votes: List[int] = []
    for _ in range(n_scripts):
        for attempt in range(max_attempts_per_script):
            script, coverage = _generate_one_script(spec, rng)
            result = run_script(script, data_dir=data_dir, sample_rows=150)
            if result.ok and result.output is not None and len(result.output):
                scripts.append(script)
                votes.append(int(rng.poisson(1 + 14 * coverage)))
                break
        else:
            raise RuntimeError(
                f"could not generate an executable script for {spec.name!r} "
                f"after {max_attempts_per_script} attempts"
            )
    return scripts, votes


def build_competition(
    name: str,
    root_dir: str,
    seed: int = 0,
    n_scripts: Optional[int] = None,
    n_rows: Optional[int] = None,
) -> ScriptCorpus:
    """Materialize one competition: write its CSV and generate its corpus.

    Rebuilding with the same (name, seed, sizes) is deterministic.
    """
    if name not in SPECS:
        raise KeyError(
            f"unknown competition {name!r}; choose from {competition_names()}"
        )
    spec = SPECS[name]
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 100003)
    data_dir = os.path.join(root_dir, name)
    os.makedirs(data_dir, exist_ok=True)
    frame = spec.generator(rng, n_rows or spec.n_rows)
    frame.to_csv(os.path.join(data_dir, spec.data_file))
    scripts, votes = generate_scripts(spec, data_dir, rng, n_scripts=n_scripts)
    return ScriptCorpus(
        name=name,
        target=spec.target,
        task=spec.task,
        data_dir=data_dir,
        data_file=spec.data_file,
        scripts=scripts,
        votes=votes,
    )
