"""repro.workloads — synthetic versions of the six evaluation competitions.

Offline stand-in for the paper's Kaggle downloads: per-competition data
generators (schemas, missing-data structure, learnable targets), script
corpora generated from long-tailed step pools and validated by execution,
vote metadata for the low-ranked-corpus scenario, and target-leakage
injection for the Section 6.6 case study.
"""

from .corpus import (
    SPECS,
    ScriptCorpus,
    build_competition,
    competition_names,
    generate_scripts,
)
from .datasets import (
    generate_house,
    generate_medical,
    generate_nlp,
    generate_sales,
    generate_spaceship,
    generate_titanic,
)
from .leakage import LEAKAGE_PATTERNS, inject_target_leakage, leakage_snippets_for
from .schemas import GROUPS, CompetitionSpec, StepSlot
from .steps import RARE_POOLS, SLOT_POOLS

__all__ = [
    "GROUPS",
    "LEAKAGE_PATTERNS",
    "RARE_POOLS",
    "SLOT_POOLS",
    "SPECS",
    "CompetitionSpec",
    "ScriptCorpus",
    "StepSlot",
    "build_competition",
    "competition_names",
    "generate_scripts",
    "generate_house",
    "generate_medical",
    "generate_nlp",
    "generate_sales",
    "generate_spaceship",
    "generate_titanic",
    "inject_target_leakage",
    "leakage_snippets_for",
]
