"""minipandas — a from-scratch pandas-compatible DataFrame substrate.

The LucidScript reproduction standardizes real pandas data-preparation
scripts, and must *execute* them to check the paper's execution and
user-intent constraints.  pandas is not available in this offline
environment, so this package implements the exact API surface those scripts
use.  The sandbox (:mod:`repro.sandbox`) maps ``import pandas as pd`` to this
module, so corpus scripts run unmodified.

The public surface mirrors pandas:

>>> import repro.minipandas as pd
>>> df = pd.DataFrame({"Age": [21, None, 30], "Sex": ["m", "f", "f"]})
>>> df = df.fillna(df.mean())
>>> df = pd.get_dummies(df)
>>> sorted(df.columns)
['Age', 'Sex_f', 'Sex_m']
"""

from ._missing import NA, is_missing
from .datetimes import to_datetime
from .frame import DataFrame
from .index import Index, RangeIndex
from .io import read_csv
from .kernels import KernelMismatchError, kernel_audit, set_kernel_audit
from .ops import (
    concat,
    cut,
    get_dummies,
    isna,
    isnull,
    melt,
    merge,
    notnull,
    pivot_table,
    qcut,
    to_numeric,
    unique,
)
from .series import Series

__all__ = [
    "NA",
    "DataFrame",
    "Index",
    "KernelMismatchError",
    "RangeIndex",
    "Series",
    "concat",
    "kernel_audit",
    "set_kernel_audit",
    "cut",
    "get_dummies",
    "is_missing",
    "isna",
    "isnull",
    "melt",
    "merge",
    "notnull",
    "pivot_table",
    "qcut",
    "read_csv",
    "to_datetime",
    "to_numeric",
    "unique",
]

#: pandas-compatible alias some scripts reference as ``pd.NaT``/``pd.NA``.
NaT = NA
