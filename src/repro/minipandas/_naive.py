"""Naive row-at-a-time reference implementations for the kernel audit.

``LSConfig.verify_kernels`` makes every columnar kernel shadow-run the
matching function here and demands bit-identical results
(:func:`repro.minipandas.kernels.audit`).  These are the *old* per-element
``iloc`` loops, deliberately kept structurally different from the
kernels — independent gather loops, generic constructors — so the audit
actually cross-checks two implementations rather than one implementation
twice.  They carry the same (bugfixed) key semantics as the kernels:
missing cells key through the unique NA sentinel and unhashable cells
through the repr fallback (:func:`repro.minipandas.kernels.na_key`).

Only imported lazily, when the audit fires: this module imports frame and
series back, and the audit flag is cleared while a reference runs, so
nothing here re-enters the audit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from . import kernels
from ._missing import NA, is_missing
from .frame import DataFrame
from .series import Series, _coerce_scalar

__all__ = [
    "take_frame",
    "fillna_frame",
    "dropna_frame",
    "duplicated_frame",
    "get_dummies_frame",
    "groupby_agg_frame",
    "groupby_agg_series",
]


def take_frame(frame: DataFrame, positions: Sequence[int]) -> DataFrame:
    data = {
        c: [frame[c].iloc[pos] for pos in positions] for c in frame.columns
    }
    labels = [frame.index[pos] for pos in positions]
    return DataFrame(data, index=labels, columns=frame.columns)


def fillna_frame(frame: DataFrame, value) -> DataFrame:
    if isinstance(value, Series):
        by_col = dict(zip(value.index, value))
        per_col = {
            c: by_col[c]
            for c in frame.columns
            if c in by_col and not is_missing(by_col[c])
        }
    elif isinstance(value, dict):
        per_col = {c: value[c] for c in frame.columns if c in value}
    else:
        per_col = {c: value for c in frame.columns}
    data: Dict[str, List[Any]] = {}
    for c in frame.columns:
        column = frame[c]
        if c in per_col:
            fill = _coerce_scalar(per_col[c])
            data[c] = [
                fill if is_missing(column.iloc[pos]) else column.iloc[pos]
                for pos in range(len(column))
            ]
        else:
            data[c] = column.tolist()
    return DataFrame(data, index=frame.index.tolist(), columns=frame.columns)


def dropna_frame(
    frame: DataFrame,
    axis: int,
    how: str,
    subset: Optional[Sequence[str]],
    thresh: Optional[int],
) -> DataFrame:
    n = len(frame)
    if axis == 1:
        cols = []
        for c in frame.columns:
            missing = sum(
                1 for pos in range(n) if is_missing(frame[c].iloc[pos])
            )
            present = n - missing
            if thresh is not None:
                if present >= thresh:
                    cols.append(c)
            elif how == "any":
                if missing == 0:
                    cols.append(c)
            else:
                if present > 0 or n == 0:
                    cols.append(c)
        data = {c: frame[c].tolist() for c in cols}
        return DataFrame(data, index=frame.index.tolist(), columns=cols)
    check_cols = list(subset) if subset is not None else list(frame.columns)
    keep = []
    for pos in range(n):
        missing = sum(1 for c in check_cols if is_missing(frame[c].iloc[pos]))
        present = len(check_cols) - missing
        if thresh is not None:
            if present >= thresh:
                keep.append(pos)
        elif how == "any":
            if missing == 0:
                keep.append(pos)
        else:
            if present > 0 or not check_cols:
                keep.append(pos)
    return take_frame(frame, keep)


def duplicated_frame(frame: DataFrame, subset: Optional[Sequence[str]]) -> Series:
    check_cols = list(subset) if subset is not None else list(frame.columns)
    seen = set()
    flags = []
    for pos in range(len(frame)):
        key = tuple(kernels.na_key(frame[c].iloc[pos]) for c in check_cols)
        flags.append(key in seen)
        seen.add(key)
    return Series(flags, index=frame.index.tolist())


def get_dummies_frame(
    frame: DataFrame,
    encode: Sequence[str],
    prefix,
    prefix_sep: str,
    drop_first: bool,
    dtype,
) -> DataFrame:
    from .ops import _dummy_categories

    zero = _coerce_scalar(dtype(0))
    one = _coerce_scalar(dtype(1))
    out: Dict[str, List[Any]] = {}
    for col in frame.columns:
        if col not in encode:
            out[kernels.fresh_name(col, out)] = frame[col].tolist()
            continue
        series = frame[col]
        categories = _dummy_categories(series, drop_first)
        if isinstance(prefix, dict):
            col_prefix = prefix.get(col, col)
        elif isinstance(prefix, str):
            col_prefix = prefix
        else:
            col_prefix = col
        for category in categories:
            ckey = kernels.na_key(category)
            name = kernels.fresh_name(f"{col_prefix}{prefix_sep}{category}", out)
            out[name] = [
                zero
                if is_missing(series.iloc[pos])
                else (one if kernels.na_key(series.iloc[pos]) == ckey else zero)
                for pos in range(len(series))
            ]
    return DataFrame(out, index=frame.index.tolist())


def _build_groups(frame: DataFrame, by: Sequence[str]) -> Dict[Any, List[int]]:
    groups: Dict[Any, List[int]] = {}
    for pos in range(len(frame)):
        raw = tuple(frame[c].iloc[pos] for c in by)
        if any(is_missing(v) for v in raw):
            continue
        key = raw[0] if len(raw) == 1 else raw
        groups.setdefault(key, []).append(pos)
    return groups


def groupby_agg_frame(
    frame: DataFrame, by: Sequence[str], spec: Dict[str, str]
) -> DataFrame:
    groups = _build_groups(frame, by)
    keys = sorted(groups.keys(), key=repr)
    data: Dict[str, List[Any]] = {}
    for col, func_name in spec.items():
        column = frame[col]
        data[col] = [
            getattr(
                Series([column.iloc[pos] for pos in groups[k]]), func_name
            )()
            for k in keys
        ]
    return DataFrame(data, index=keys)


def groupby_agg_series(
    frame: DataFrame, by: Sequence[str], col: str, func_name: str
) -> Series:
    groups = _build_groups(frame, by)
    keys = sorted(groups.keys(), key=repr)
    column = frame[col]
    values = [
        getattr(Series([column.iloc[pos] for pos in groups[k]]), func_name)()
        for k in keys
    ]
    return Series(values, index=keys, name=col)
