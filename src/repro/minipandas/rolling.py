"""Rolling-window aggregations (``Series.rolling``)."""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ._missing import NA, is_missing
from .series import Series

__all__ = ["Rolling"]


class Rolling:
    """A fixed-size trailing window over a Series.

    Windows with fewer than ``min_periods`` present values yield NaN,
    matching pandas (``min_periods`` defaults to the window size).
    """

    def __init__(self, series: Series, window: int, min_periods: int = None):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._series = series
        self.window = window
        self.min_periods = window if min_periods is None else min_periods
        if self.min_periods < 1:
            raise ValueError("min_periods must be >= 1")

    def _aggregate(self, func: Callable[[List[float]], float]) -> Series:
        values = self._series.tolist()
        out: List = []
        for end in range(len(values)):
            start = max(0, end - self.window + 1)
            window_values = [
                float(v) for v in values[start : end + 1] if not is_missing(v)
            ]
            if len(window_values) < self.min_periods:
                out.append(NA)
            else:
                out.append(func(window_values))
        return Series(out, index=self._series.index.tolist(), name=self._series.name)

    def mean(self) -> Series:
        return self._aggregate(lambda w: float(np.mean(w)))

    def sum(self) -> Series:
        return self._aggregate(lambda w: float(np.sum(w)))

    def min(self) -> Series:
        return self._aggregate(min)

    def max(self) -> Series:
        return self._aggregate(max)

    def std(self) -> Series:
        return self._aggregate(
            lambda w: float(np.std(w, ddof=1)) if len(w) > 1 else NA
        )

    def median(self) -> Series:
        return self._aggregate(lambda w: float(np.median(w)))
