"""The ``Series.str`` accessor: vectorized string operations.

Missing values pass through untouched, matching pandas semantics, and
non-string values raise ``AttributeError`` like pandas' object-dtype paths.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from ._missing import NA, is_missing
from .series import Series

__all__ = ["StringAccessor"]


class StringAccessor:
    """Vectorized string methods reached through ``series.str``."""

    def __init__(self, series: Series):
        self._series = series

    def _map(self, func: Callable[[str], Any]) -> Series:
        values = []
        for v in self._series:
            if is_missing(v):
                values.append(NA)
            elif isinstance(v, str):
                values.append(func(v))
            else:
                raise AttributeError(
                    f"Can only use .str accessor with string values, got {type(v).__name__}"
                )
        return Series(values, index=self._series.index.tolist(), name=self._series.name)

    def lower(self) -> Series:
        return self._map(str.lower)

    def upper(self) -> Series:
        return self._map(str.upper)

    def title(self) -> Series:
        return self._map(str.title)

    def strip(self) -> Series:
        return self._map(str.strip)

    def lstrip(self) -> Series:
        return self._map(str.lstrip)

    def rstrip(self) -> Series:
        return self._map(str.rstrip)

    def len(self) -> Series:
        return self._map(len)

    def capitalize(self) -> Series:
        return self._map(str.capitalize)

    def contains(self, pattern: str, regex: bool = True, case: bool = True) -> Series:
        if regex:
            flags = 0 if case else re.IGNORECASE
            compiled = re.compile(pattern, flags)
            return self._map(lambda s: bool(compiled.search(s)))
        if case:
            return self._map(lambda s: pattern in s)
        lowered = pattern.lower()
        return self._map(lambda s: lowered in s.lower())

    def startswith(self, prefix: str) -> Series:
        return self._map(lambda s: s.startswith(prefix))

    def endswith(self, suffix: str) -> Series:
        return self._map(lambda s: s.endswith(suffix))

    def replace(self, pattern: str, repl: str, regex: bool = True) -> Series:
        if regex:
            compiled = re.compile(pattern)
            return self._map(lambda s: compiled.sub(repl, s))
        return self._map(lambda s: s.replace(pattern, repl))

    def split(self, sep: str = " ") -> Series:
        return self._map(lambda s: s.split(sep))

    def get(self, position: int) -> Series:
        def getter(s):
            try:
                return s[position]
            except IndexError:
                return NA

        return self._map(getter)

    def slice(self, start: int = 0, stop: int | None = None) -> Series:
        return self._map(lambda s: s[start:stop])

    def extract(self, pattern: str) -> Series:
        """Extract the first group of *pattern* (single-group form only)."""
        compiled = re.compile(pattern)
        if compiled.groups != 1:
            raise ValueError("extract requires a pattern with exactly one group")

        def extractor(s):
            match = compiled.search(s)
            return match.group(1) if match else NA

        return self._map(extractor)

    def zfill(self, width: int) -> Series:
        return self._map(lambda s: s.zfill(width))

    def isdigit(self) -> Series:
        return self._map(str.isdigit)

    def isalpha(self) -> Series:
        return self._map(str.isalpha)
