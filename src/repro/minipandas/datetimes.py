"""Datetime parsing and the ``Series.dt`` accessor.

Supports the date shapes that appear in data-preparation scripts:
ISO dates/timestamps, ``YYYY/MM/DD``, and ``DD.MM.YYYY`` (the Predict
Future Sales competition's format).  Values are stored as
``datetime.datetime`` objects inside object-dtype Series.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Callable, Optional

from ._missing import NA, is_missing
from .series import Series

__all__ = ["to_datetime", "DatetimeAccessor"]

_FORMATS = (
    "%Y-%m-%d",
    "%Y-%m-%d %H:%M:%S",
    "%Y/%m/%d",
    "%d.%m.%Y",
    "%m/%d/%Y",
    "%d-%m-%Y",
)


def _parse_one(value: Any, fmt: Optional[str]) -> datetime:
    if isinstance(value, datetime):
        return value
    text = str(value).strip()
    if fmt is not None:
        return datetime.strptime(text, fmt)
    for candidate in _FORMATS:
        try:
            return datetime.strptime(text, candidate)
        except ValueError:
            continue
    raise ValueError(f"unable to parse {value!r} as a datetime")


def to_datetime(
    data,
    errors: str = "raise",
    format: Optional[str] = None,
) -> Series:
    """Convert a Series (or iterable) of date strings to datetimes.

    ``errors='coerce'`` maps unparseable values to NaN, as in pandas.
    """
    if not isinstance(data, Series):
        data = Series(list(data))
    values = []
    for value in data:
        if is_missing(value):
            values.append(NA)
            continue
        try:
            values.append(_parse_one(value, format))
        except ValueError:
            if errors == "coerce":
                values.append(NA)
            else:
                raise
    return Series(values, index=data.index.tolist(), name=data.name)


class DatetimeAccessor:
    """Vectorized datetime properties reached through ``series.dt``."""

    def __init__(self, series: Series):
        self._series = series

    def _map(self, func: Callable[[datetime], Any]) -> Series:
        values = []
        for value in self._series:
            if is_missing(value):
                values.append(NA)
            elif isinstance(value, datetime):
                values.append(func(value))
            else:
                raise AttributeError(
                    "Can only use .dt accessor with datetime values; "
                    f"got {type(value).__name__} (apply pd.to_datetime first)"
                )
        return Series(values, index=self._series.index.tolist(), name=self._series.name)

    @property
    def year(self) -> Series:
        return self._map(lambda d: d.year)

    @property
    def month(self) -> Series:
        return self._map(lambda d: d.month)

    @property
    def day(self) -> Series:
        return self._map(lambda d: d.day)

    @property
    def hour(self) -> Series:
        return self._map(lambda d: d.hour)

    @property
    def dayofweek(self) -> Series:
        return self._map(lambda d: d.weekday())

    @property
    def quarter(self) -> Series:
        return self._map(lambda d: (d.month - 1) // 3 + 1)

    @property
    def dayofyear(self) -> Series:
        return self._map(lambda d: d.timetuple().tm_yday)

    def strftime(self, fmt: str) -> Series:
        return self._map(lambda d: d.strftime(fmt))
