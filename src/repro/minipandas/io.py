"""CSV reading and writing for the minipandas substrate.

``read_csv`` performs per-column type inference that matches the pandas
behaviour the corpus scripts rely on: integer columns stay integers unless
they contain missing values (then they become float64 with NaN), and
anything that fails numeric parsing becomes an object column.
"""

from __future__ import annotations

import csv
import io as _io
from typing import Any, List, Optional, Sequence, Union

from ._missing import NA
from .frame import DataFrame
from .series import Series

__all__ = ["read_csv", "write_csv"]

#: CSV fields treated as missing, mirroring pandas' default NA sentinels.
_NA_STRINGS = {"", "NA", "N/A", "NaN", "nan", "NULL", "null", "None", "#N/A"}


def read_csv(
    path_or_buffer: Union[str, _io.TextIOBase],
    usecols: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    index_col: Optional[Union[int, str]] = None,
) -> DataFrame:
    """Parse a CSV file (or readable buffer) into a DataFrame."""
    if isinstance(path_or_buffer, str):
        with open(path_or_buffer, "r", newline="") as handle:
            return _parse(handle, usecols, nrows, index_col)
    return _parse(path_or_buffer, usecols, nrows, index_col)


def _parse(handle, usecols, nrows, index_col) -> DataFrame:
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV source is empty") from None

    raw_columns: List[List[str]] = [[] for _ in header]
    for row_number, row in enumerate(reader):
        if nrows is not None and row_number >= nrows:
            break
        for pos in range(len(header)):
            raw_columns[pos].append(row[pos] if pos < len(row) else "")

    data = {
        name: _infer_column(values) for name, values in zip(header, raw_columns)
    }

    index = None
    if index_col is not None:
        index_name = header[index_col] if isinstance(index_col, int) else index_col
        index = data.pop(index_name)

    frame = DataFrame(data, index=index)
    if usecols is not None:
        frame = frame[list(usecols)]
    return frame


def _infer_column(raw: List[str]) -> List[Any]:
    """Convert raw CSV strings into int/float/bool/str values with NA markers."""
    parsed: List[Any] = []
    all_int = all_float = all_bool = True
    for field in raw:
        stripped = field.strip()
        if stripped in _NA_STRINGS:
            parsed.append(None)
            continue
        parsed.append(stripped)
        if stripped not in ("True", "False", "true", "false"):
            all_bool = False
        if not _looks_like_int(stripped):
            all_int = False
            if not _looks_like_float(stripped):
                all_float = False

    if all_bool and any(v is not None for v in parsed):
        return [
            None if v is None else v in ("True", "true") for v in parsed
        ]
    if all_int and any(v is not None for v in parsed):
        if any(v is None for v in parsed):
            return [NA if v is None else float(v) for v in parsed]
        return [int(v) for v in parsed]
    if all_float and any(v is not None for v in parsed):
        return [NA if v is None else float(v) for v in parsed]
    return parsed  # object column with None markers


def _looks_like_int(text: str) -> bool:
    if not text:
        return False
    body = text[1:] if text[0] in "+-" else text
    return body.isdigit()


def _looks_like_float(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def write_csv(frame: DataFrame, path: str, index: bool = False) -> None:
    """Serialize *frame* to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = (["index"] if index else []) + frame.columns
        writer.writerow(header)
        for pos in range(len(frame)):
            row = [frame.index[pos]] if index else []
            for col in frame.columns:
                value = frame[col].iloc[pos]
                row.append("" if _is_na(value) else value)
            writer.writerow(row)


def _is_na(value: Any) -> bool:
    from ._missing import is_missing

    return is_missing(value)
