"""A minimal immutable axis-label container, mirroring ``pandas.Index``."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence

__all__ = ["Index", "RangeIndex"]


class Index:
    """An ordered, immutable sequence of row labels.

    Supports the subset of the pandas ``Index`` API the corpus scripts and
    the LucidScript sandbox rely on: iteration, length, membership,
    positional access, equality, and ``tolist``.
    """

    def __init__(self, labels: Iterable[Any]):
        self._labels: List[Any] = list(labels)
        self._positions = None  # lazy label -> position map
        self._unique = None  # lazy uniqueness memo (Index is immutable)

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._labels)

    def __contains__(self, label: Any) -> bool:
        return label in self._position_map()

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Index(self._labels[item])
        return self._labels[item]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Index):
            return self._labels == other._labels
        if isinstance(other, (list, tuple)):
            return self._labels == list(other)
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mirrors pandas (unhashable)
        raise TypeError("Index objects are unhashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(x) for x in self._labels[:10])
        suffix = ", ..." if len(self._labels) > 10 else ""
        return f"Index([{preview}{suffix}], length={len(self._labels)})"

    # -- lookups ------------------------------------------------------------------
    def _position_map(self) -> dict:
        if self._positions is None:
            self._positions = {}
            for pos, label in enumerate(self._labels):
                # first occurrence wins, matching get_loc on duplicate labels
                self._positions.setdefault(label, pos)
        return self._positions

    def get_loc(self, label: Any) -> int:
        """Return the position of *label*, raising KeyError when absent."""
        try:
            return self._position_map()[label]
        except KeyError:
            raise KeyError(f"label {label!r} not found in index") from None

    def positions_for(self, labels: Sequence[Any]) -> List[int]:
        """Map a sequence of labels to positions, raising on any miss."""
        mapping = self._position_map()
        out = []
        for label in labels:
            if label not in mapping:
                raise KeyError(f"label {label!r} not found in index")
            out.append(mapping[label])
        return out

    def tolist(self) -> List[Any]:
        return list(self._labels)

    def to_list(self) -> List[Any]:
        return self.tolist()

    def is_unique(self) -> bool:
        """Whether every label occurs once.  Memoized — the columnar
        kernels consult this to decide if positional fast paths preserve
        the legacy label-aligned semantics exactly."""
        if self._unique is None:
            self._unique = len(set(self._labels)) == len(self._labels)
        return self._unique

    def take(self, positions: Sequence[int]) -> "Index":
        return Index(self._labels[pos] for pos in positions)


def RangeIndex(n: int) -> Index:
    """Build the default 0..n-1 integer index."""
    return Index(range(n))
