"""Grouped aggregation and transformation (``DataFrame.groupby``)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from . import kernels
from ._missing import NA, is_missing
from .frame import DataFrame
from .series import Series

__all__ = ["GroupBy", "SeriesGroupBy"]

_AGG_NAMES = ("mean", "median", "sum", "min", "max", "count", "std", "var", "nunique")


def _naive():
    from . import _naive as module

    return module


class GroupBy:
    """A lazily grouped view of a DataFrame keyed by one or more columns."""

    def __init__(self, frame: DataFrame, by: Union[str, Sequence[str]]):
        self._frame = frame
        self._by: List[str] = [by] if isinstance(by, str) else list(by)
        for col in self._by:
            if col not in frame.columns:
                raise KeyError(f"grouping column {col!r} not found")
        self._groups = self._build_groups()

    def _build_groups(self) -> Dict[Any, List[int]]:
        groups: Dict[Any, List[int]] = {}
        payloads = [self._frame._data[c]._values for c in self._by]
        if len(payloads) == 1:
            # single key: skip the per-row tuple entirely
            for pos, v in enumerate(payloads[0]):
                if is_missing(v):
                    continue  # pandas drops NA group keys by default
                groups.setdefault(v, []).append(pos)
        else:
            for pos, raw in enumerate(zip(*payloads)):
                if any(is_missing(v) for v in raw):
                    continue
                groups.setdefault(raw, []).append(pos)
        return groups

    # -- accessors ------------------------------------------------------------
    def __getitem__(self, col: Union[str, List[str]]) -> "SeriesGroupBy":
        if isinstance(col, list):
            if len(col) != 1:
                raise NotImplementedError("multi-column group selection is unsupported")
            col = col[0]
        if col not in self._frame.columns:
            raise KeyError(f"column {col!r} not found")
        return SeriesGroupBy(self._frame, self._groups, col, by=self._by)

    @property
    def groups(self) -> Dict[Any, List[int]]:
        return {k: list(v) for k, v in self._groups.items()}

    def size(self) -> Series:
        keys = sorted(self._groups.keys(), key=repr)
        return Series([len(self._groups[k]) for k in keys], index=keys)

    def ngroups(self) -> int:
        return len(self._groups)

    # -- aggregation ------------------------------------------------------------
    def _value_columns(self) -> List[str]:
        numeric = ("int64", "float64", "bool")
        return [
            c
            for c in self._frame.columns
            if c not in self._by and self._frame[c].dtype in numeric
        ]

    def agg(self, spec) -> DataFrame:
        """Aggregate with a name ('mean'), or a {column: name} mapping."""
        keys = sorted(self._groups.keys(), key=repr)
        if isinstance(spec, str):
            spec = {c: spec for c in self._value_columns()}
        data: Dict[str, List[Any]] = {}
        for col, func_name in spec.items():
            if func_name not in _AGG_NAMES:
                raise ValueError(f"unsupported aggregation: {func_name!r}")
            column = self._frame[col]
            data[col] = [
                getattr(column.take(self._groups[k]), func_name)() for k in keys
            ]
        out = DataFrame(data, index=keys)
        if kernels._AUDIT:
            kernels.audit(
                "groupby.agg",
                out,
                lambda: _naive().groupby_agg_frame(self._frame, self._by, spec),
            )
        return out

    def mean(self) -> DataFrame:
        return self.agg("mean")

    def median(self) -> DataFrame:
        return self.agg("median")

    def sum(self) -> DataFrame:
        return self.agg("sum")

    def min(self) -> DataFrame:
        return self.agg("min")

    def max(self) -> DataFrame:
        return self.agg("max")

    def count(self) -> DataFrame:
        return self.agg("count")

    def std(self) -> DataFrame:
        return self.agg("std")


class SeriesGroupBy:
    """A single grouped column (``df.groupby(key)[col]``)."""

    def __init__(
        self,
        frame: DataFrame,
        groups: Dict[Any, List[int]],
        col: str,
        by: Optional[List[str]] = None,
    ):
        self._frame = frame
        self._groups = groups
        self._col = col
        self._by = by

    def _agg(self, func_name: str) -> Series:
        keys = sorted(self._groups.keys(), key=repr)
        column = self._frame[self._col]
        values = [getattr(column.take(self._groups[k]), func_name)() for k in keys]
        out = Series(values, index=keys, name=self._col)
        if kernels._AUDIT and self._by is not None:
            kernels.audit(
                "groupby.agg",
                out,
                lambda: _naive().groupby_agg_series(
                    self._frame, self._by, self._col, func_name
                ),
            )
        return out

    def mean(self) -> Series:
        return self._agg("mean")

    def median(self) -> Series:
        return self._agg("median")

    def sum(self) -> Series:
        return self._agg("sum")

    def min(self) -> Series:
        return self._agg("min")

    def max(self) -> Series:
        return self._agg("max")

    def count(self) -> Series:
        return self._agg("count")

    def std(self) -> Series:
        return self._agg("std")

    def nunique(self) -> Series:
        return self._agg("nunique")

    def agg(self, func_name: str) -> Series:
        if func_name not in _AGG_NAMES:
            raise ValueError(f"unsupported aggregation: {func_name!r}")
        return self._agg(func_name)

    def transform(self, func_name: str) -> Series:
        """Broadcast a per-group aggregate back to the original row order."""
        if func_name not in _AGG_NAMES:
            raise ValueError(f"unsupported transform: {func_name!r}")
        column = self._frame[self._col]
        per_group = {
            key: getattr(column.take(positions), func_name)()
            for key, positions in self._groups.items()
        }
        values: List[Any] = [NA] * len(self._frame)
        for key, positions in self._groups.items():
            for pos in positions:
                values[pos] = per_group[key]
        return Series(values, index=self._frame.index.tolist(), name=self._col)
