"""A one-dimensional labelled array mirroring the pandas ``Series`` API.

Values are stored as a plain Python list — the column *payload*.
Payloads are treated as immutable and structurally shared: ``copy()``,
untouched-column passthrough in DataFrame ops, and sandbox snapshots all
reference the same list, and the few in-place mutation entry points
(``__setitem__``, ``loc`` assignment) copy-on-write through
:meth:`Series._materialize` first.  Mixed-type and missing-data handling
stay straightforward; numeric reductions convert to numpy on demand.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from . import kernels
from ._missing import NA, is_missing
from .index import Index, RangeIndex

__all__ = ["Series"]

_UNSET = object()


def _infer_dtype(values: Sequence[Any]) -> str:
    """Infer a minipandas dtype name ('int64'|'float64'|'bool'|'object').

    Missing markers (None/NaN) do not force object dtype: a column of ints
    with gaps is float64, matching pandas' NaN-promotion behaviour.
    """
    saw_float = saw_int = saw_bool = saw_other = saw_missing = False
    for v in values:
        if is_missing(v):
            saw_missing = True
        elif isinstance(v, (bool, np.bool_)):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            saw_float = True
        else:
            saw_other = True
    if saw_other:
        return "object"
    if saw_bool and not (saw_int or saw_float):
        return "bool" if not saw_missing else "object"
    if saw_float or (saw_int and saw_missing):
        return "float64"
    if saw_int:
        return "int64"
    # all values missing (or empty): float64 matches pandas' all-NaN columns
    return "float64"


def _coerce_scalar(value: Any) -> Any:
    """Normalize numpy scalars to builtin Python scalars."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


class Series:
    """A labelled 1-D column of values with pandas-like semantics."""

    #: Copy-on-write marker: True when ``_values`` may be referenced by
    #: another Series (class-level default so ``__new__`` paths start
    #: unshared without an explicit assignment).
    _shared = False

    def __init__(
        self,
        data: Iterable[Any] = (),
        index: Optional[Iterable[Any]] = None,
        name: Optional[str] = None,
        dtype: Optional[str] = None,
    ):
        shared_index: Optional[Index] = None
        shared_payload = False
        if isinstance(data, Series):
            # constructor values are already coerced, so adopt the payload
            # by reference; copy-on-write isolates later mutation
            values = data._values
            shared_payload = True
            data._shared = True
            if index is None:
                shared_index = data._index
            if name is None:
                name = data.name
        elif isinstance(data, dict):
            if index is None:
                index = list(data.keys())
            values = [data[k] for k in index]
        elif isinstance(data, np.ndarray):
            values = [_coerce_scalar(v) for v in data.tolist()] if data.dtype == object else data.tolist()
        else:
            values = [_coerce_scalar(v) for v in data]
        self._values: List[Any] = values
        if shared_index is not None:
            self._index: Index = shared_index
        else:
            self._index = Index(index) if index is not None else RangeIndex(len(values))
        if len(self._index) != len(self._values):
            raise ValueError(
                f"index length {len(self._index)} does not match data length {len(self._values)}"
            )
        self.name = name
        if dtype is not None:
            self._values = _cast_values(self._values, dtype)
        elif shared_payload:
            self._shared = True

    # ------------------------------------------------------------------ basics
    @property
    def values(self) -> np.ndarray:
        dtype = self.dtype
        if dtype == "float64":
            return np.array([NA if is_missing(v) else float(v) for v in self._values], dtype=np.float64)
        if dtype == "int64":
            return np.array(self._values, dtype=np.int64)
        if dtype == "bool":
            return np.array(self._values, dtype=bool)
        return np.array(self._values, dtype=object)

    @property
    def index(self) -> Index:
        return self._index

    @property
    def dtype(self) -> str:
        return _infer_dtype(self._values)

    @property
    def shape(self) -> tuple:
        return (len(self._values),)

    @property
    def empty(self) -> bool:
        return not self._values

    @property
    def size(self) -> int:
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __contains__(self, label: Any) -> bool:
        return label in self._index

    def __repr__(self) -> str:
        lines = [
            f"{label}\t{value!r}"
            for label, value in list(zip(self._index, self._values))[:10]
        ]
        if len(self._values) > 10:
            lines.append("...")
        lines.append(f"Name: {self.name}, Length: {len(self)}, dtype: {self.dtype}")
        return "\n".join(lines)

    def copy(self) -> "Series":
        return self._clone(self._index)

    def _clone(self, index: Index) -> "Series":
        """O(1) structural copy: shared payload, shared immutable index.

        Both the payload list and the ``Index`` are shared by reference —
        the payload under copy-on-write (any in-place mutation on either
        side materializes a private list first), the index because it is
        immutable.  This is the cheap snapshot primitive behind the
        incremental sandbox executor: snapshots and live namespaces share
        column storage until a script actually writes a cell.
        """
        return self._share(index=index)

    def _share(self, index: Optional[Index] = None, name: Any = _UNSET) -> "Series":
        """A new Series referencing this payload (both sides marked shared).

        Used wherever an op leaves a column untouched: the derived frame
        passes the same payload object through instead of rebuilding the
        list.  *index*/*name* override the wrapper's labels/name without
        touching the payload (e.g. ``rename``, ``reset_index``).
        """
        self._shared = True
        out = Series.__new__(Series)
        out._values = self._values
        out._shared = True
        out._index = self._index if index is None else index
        out.name = self.name if name is _UNSET else name
        return out

    def _materialize(self) -> List[Any]:
        """The payload as a privately owned list — copy-on-write barrier.

        Every in-place mutation entry point calls this first; when the
        payload is shared the list is copied once and the flag cleared,
        so sharers never observe the write.
        """
        if self._shared:
            self._values = list(self._values)
            self._shared = False
        return self._values

    @classmethod
    def _from_payload(cls, values: List[Any], index: Index, name) -> "Series":
        """Internal fast constructor: adopt *values* (already coerced) and
        *index* (an Index object) without copying or re-validating."""
        out = cls.__new__(cls)
        out._values = values
        out._index = index
        out.name = name
        return out

    @classmethod
    def _from_sequence(cls, values, index: Index, name) -> "Series":
        """Coerce caller-supplied *values* and attach an existing Index
        object, skipping the constructor's per-column Index rebuild."""
        if isinstance(values, np.ndarray):
            coerced = (
                [_coerce_scalar(v) for v in values.tolist()]
                if values.dtype == object
                else values.tolist()
            )
        else:
            coerced = [_coerce_scalar(v) for v in values]
        if len(coerced) != len(index):
            raise ValueError(
                f"index length {len(index)} does not match data length {len(coerced)}"
            )
        return cls._from_payload(coerced, index, name)

    def _with_values(self, values: List[Any], coerce: bool = False) -> "Series":
        """Derive a Series with new *values* but this Series' labels.

        ``Index`` is immutable, so the derived Series shares ``self._index``
        directly instead of paying ``tolist()`` + ``Index(...)`` (a full
        label-list copy and position-map rebuild) on every elementwise op.
        ``coerce`` applies the constructor's numpy-scalar normalization and
        is only needed when *values* may contain caller-supplied objects.
        """
        out = Series.__new__(Series)
        out._values = [_coerce_scalar(v) for v in values] if coerce else values
        out._index = self._index
        out.name = self.name
        return out

    def tolist(self) -> List[Any]:
        return list(self._values)

    def to_list(self) -> List[Any]:
        return self.tolist()

    def item(self) -> Any:
        if len(self._values) != 1:
            raise ValueError("can only convert a length-1 Series to a scalar")
        return self._values[0]

    # --------------------------------------------------------------- indexing
    def __getitem__(self, key):
        if isinstance(key, Series) and key.dtype == "bool":
            return self._filter_mask(key)
        if isinstance(key, (list, np.ndarray)) and len(key) and isinstance(key[0], (bool, np.bool_)):
            return self._filter_mask(self._with_values([bool(f) for f in key]))
        if isinstance(key, slice):
            return Series(
                self._values[key], index=self._index.tolist()[key], name=self.name
            )
        if isinstance(key, tuple) and key in self._index:
            return self._values[self._index.get_loc(key)]
        if isinstance(key, (list, tuple)):
            positions = self._index.positions_for(key)
            return self.take(positions)
        pos = self._index.get_loc(key)
        return self._values[pos]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, Series) and key.dtype == "bool":
            positions = [
                self._index.get_loc(label)
                for label, flag in zip(key.index, key._values)
                if flag
            ]
            values = self._materialize()
            for pos in positions:
                values[pos] = value
            return
        pos = self._index.get_loc(key)
        self._materialize()[pos] = value

    def _filter_mask(self, mask: "Series") -> "Series":
        if mask._index is self._index and self._index.is_unique():
            # the mask was derived from this Series (comparisons share the
            # index object), so flags align positionally — skip the
            # label-alignment dict entirely
            return self.take([pos for pos, flag in enumerate(mask._values) if flag])
        mask_by_label = dict(zip(mask.index, mask._values))
        values, labels = [], []
        for label, value in zip(self._index, self._values):
            if mask_by_label.get(label, False):
                values.append(value)
                labels.append(label)
        return Series(values, index=labels, name=self.name)

    def take(self, positions: Sequence[int]) -> "Series":
        positions = list(positions)
        values = self._values
        return Series._from_payload(
            [values[p] for p in positions],
            self._index.take(positions),
            self.name,
        )

    @property
    def iloc(self) -> "_SeriesILoc":
        return _SeriesILoc(self)

    @property
    def loc(self) -> "_SeriesLoc":
        return _SeriesLoc(self)

    def head(self, n: int = 5) -> "Series":
        return self[: max(n, 0)]

    def tail(self, n: int = 5) -> "Series":
        if n <= 0:
            return self[len(self):]
        return self[-n:]

    def reset_index(self, drop: bool = False):
        if not drop:
            raise NotImplementedError("Series.reset_index(drop=False) is unsupported")
        return self._share(index=RangeIndex(len(self._values)))

    # ------------------------------------------------------- elementwise math
    def _binary_op(self, other: Any, op: Callable[[Any, Any], Any], propagate_na: bool = True) -> "Series":
        if isinstance(other, Series):
            other_by_label = dict(zip(other.index, other._values))
            values = []
            for label, value in zip(self._index, self._values):
                rhs = other_by_label.get(label, NA)
                if propagate_na and (is_missing(value) or is_missing(rhs)):
                    values.append(NA)
                else:
                    values.append(op(value, rhs))
            return self._with_values(values, coerce=True)
        values = []
        for value in self._values:
            if propagate_na and is_missing(value):
                values.append(NA)
            else:
                values.append(op(value, other))
        return self._with_values(values, coerce=True)

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Series":
        def safe(lhs, rhs):
            if is_missing(lhs) or is_missing(rhs):
                return False
            try:
                return bool(op(lhs, rhs))
            except TypeError:
                return False

        if isinstance(other, Series):
            other_by_label = dict(zip(other.index, other._values))
            values = [
                safe(value, other_by_label.get(label, NA))
                for label, value in zip(self._index, self._values)
            ]
        else:
            values = [safe(value, other) for value in self._values]
        return self._with_values(values)

    def __add__(self, other):
        return self._binary_op(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._binary_op(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._binary_op(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binary_op(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._binary_op(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._binary_op(other, lambda a, b: b * a)

    def __truediv__(self, other):
        return self._binary_op(other, _safe_div)

    def __rtruediv__(self, other):
        return self._binary_op(other, lambda a, b: _safe_div(b, a))

    def __floordiv__(self, other):
        return self._binary_op(other, lambda a, b: a // b if b != 0 else NA)

    def __mod__(self, other):
        return self._binary_op(other, lambda a, b: a % b if b != 0 else NA)

    def __pow__(self, other):
        return self._binary_op(other, lambda a, b: a ** b)

    def __neg__(self):
        return self._binary_op(0, lambda a, _b: -a)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other):
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._compare(other, lambda a, b: a >= b)

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._binary_op(other, lambda a, b: bool(a) and bool(b), propagate_na=False)

    def __or__(self, other):
        return self._binary_op(other, lambda a, b: bool(a) or bool(b), propagate_na=False)

    def __xor__(self, other):
        return self._binary_op(other, lambda a, b: bool(a) != bool(b), propagate_na=False)

    def __invert__(self):
        return self._with_values(
            [not bool(v) if not is_missing(v) else True for v in self._values]
        )

    def __bool__(self):
        raise ValueError(
            "The truth value of a Series is ambiguous. Use s.any() or s.all()."
        )

    # ----------------------------------------------------------- missing data
    def isnull(self) -> "Series":
        return self._with_values([is_missing(v) for v in self._values])

    isna = isnull

    def notnull(self) -> "Series":
        return ~self.isnull()

    notna = notnull

    def fillna(self, value: Any) -> "Series":
        if isinstance(value, Series):
            fill_by_label = dict(zip(value.index, value._values))
            out: Optional[List[Any]] = None
            for pos, (label, v) in enumerate(zip(self._index, self._values)):
                if is_missing(v) and label in fill_by_label:
                    if out is None:
                        out = list(self._values)
                    out[pos] = _coerce_scalar(fill_by_label[label])
        else:
            fill = _coerce_scalar(value)
            out = None
            for pos, v in enumerate(self._values):
                if is_missing(v):
                    if out is None:
                        out = list(self._values)
                    out[pos] = fill
        if out is None:
            # nothing filled: pass the payload through untouched
            return self._share()
        return self._with_values(out)

    def dropna(self) -> "Series":
        pairs = [
            (label, v) for label, v in zip(self._index, self._values) if not is_missing(v)
        ]
        return Series(
            [v for _, v in pairs], index=[label for label, _ in pairs], name=self.name
        )

    # ------------------------------------------------------------- predicates
    def between(self, left: Any, right: Any, inclusive: str = "both") -> "Series":
        if inclusive == "both":
            op = lambda v: left <= v <= right
        elif inclusive == "neither":
            op = lambda v: left < v < right
        elif inclusive == "left":
            op = lambda v: left <= v < right
        elif inclusive == "right":
            op = lambda v: left < v <= right
        else:
            raise ValueError(f"invalid inclusive value: {inclusive!r}")
        values = [False if is_missing(v) else bool(op(v)) for v in self._values]
        return self._with_values(values)

    def isin(self, collection: Iterable[Any]) -> "Series":
        lookup = set(collection)
        values = [
            False if is_missing(v) else v in lookup for v in self._values
        ]
        return self._with_values(values)

    def any(self) -> bool:
        return any(bool(v) for v in self._values if not is_missing(v))

    def all(self) -> bool:
        return all(bool(v) for v in self._values if not is_missing(v))

    def duplicated(self) -> "Series":
        seen = set()
        flags = []
        for v in self._values:
            # unique object sentinel: a genuine ("__na__",) cell can never
            # collide with NA; unhashable cells fall back to a repr key
            key = kernels.na_key(v)
            flags.append(key in seen)
            seen.add(key)
        return self._with_values(flags)

    # ------------------------------------------------------------ conversions
    def astype(self, dtype) -> "Series":
        name = _dtype_name(dtype)
        return self._with_values(_cast_values(self._values, name))

    def map(self, mapper) -> "Series":
        if isinstance(mapper, dict):
            values = [
                NA if is_missing(v) else mapper.get(v, NA) for v in self._values
            ]
        else:
            values = [NA if is_missing(v) else mapper(v) for v in self._values]
        return self._with_values(values, coerce=True)

    def apply(self, func: Callable[[Any], Any]) -> "Series":
        return self._with_values([func(v) for v in self._values], coerce=True)

    def replace(self, to_replace, value=None) -> "Series":
        if isinstance(to_replace, dict):
            mapping = to_replace
            values = [
                mapping.get(v, v) if not is_missing(v) else v for v in self._values
            ]
        else:
            targets = (
                set(to_replace) if isinstance(to_replace, (list, tuple, set)) else {to_replace}
            )
            values = [
                value if (not is_missing(v) and v in targets) else v
                for v in self._values
            ]
        return self._with_values(values, coerce=True)

    def clip(self, lower=None, upper=None) -> "Series":
        def clip_one(v):
            if is_missing(v):
                return v
            if lower is not None and v < lower:
                return lower
            if upper is not None and v > upper:
                return upper
            return v

        return self._with_values([clip_one(v) for v in self._values], coerce=True)

    def abs(self) -> "Series":
        return self._with_values(
            [v if is_missing(v) else abs(v) for v in self._values]
        )

    def round(self, decimals: int = 0) -> "Series":
        return self._with_values(
            [v if is_missing(v) else round(v, decimals) for v in self._values]
        )

    # ------------------------------------------------------------- reductions
    def _numeric(self) -> List[float]:
        out = []
        for v in self._values:
            if is_missing(v):
                continue
            if isinstance(v, bool):
                out.append(float(v))
            elif isinstance(v, (int, float)):
                out.append(float(v))
        return out

    def count(self) -> int:
        return sum(1 for v in self._values if not is_missing(v))

    def sum(self):
        nums = self._numeric()
        return float(np.sum(nums)) if nums else 0.0

    def mean(self):
        nums = self._numeric()
        return float(np.mean(nums)) if nums else NA

    def median(self):
        nums = self._numeric()
        return float(np.median(nums)) if nums else NA

    def std(self, ddof: int = 1):
        nums = self._numeric()
        if len(nums) <= ddof:
            return NA
        return float(np.std(nums, ddof=ddof))

    def var(self, ddof: int = 1):
        nums = self._numeric()
        if len(nums) <= ddof:
            return NA
        return float(np.var(nums, ddof=ddof))

    def min(self):
        present = [v for v in self._values if not is_missing(v)]
        return min(present) if present else NA

    def max(self):
        present = [v for v in self._values if not is_missing(v)]
        return max(present) if present else NA

    def quantile(self, q: float = 0.5):
        nums = self._numeric()
        return float(np.quantile(nums, q)) if nums else NA

    def skew(self):
        nums = self._numeric()
        if len(nums) < 3:
            return NA
        arr = np.asarray(nums)
        centered = arr - arr.mean()
        std = arr.std(ddof=1)
        if std == 0:
            return 0.0
        n = len(arr)
        return float((n / ((n - 1) * (n - 2))) * np.sum((centered / std) ** 3))

    def mode(self) -> "Series":
        counts: Dict[Any, int] = {}
        for v in self._values:
            if is_missing(v):
                continue
            counts[v] = counts.get(v, 0) + 1
        if not counts:
            return Series([], name=self.name)
        best = max(counts.values())
        modes = sorted((v for v, c in counts.items() if c == best), key=repr)
        return Series(modes, name=self.name)

    def idxmax(self):
        best_label, best_value = None, None
        for label, v in zip(self._index, self._values):
            if is_missing(v):
                continue
            if best_value is None or v > best_value:
                best_label, best_value = label, v
        if best_label is None:
            raise ValueError("attempt to get idxmax of an all-NA Series")
        return best_label

    def idxmin(self):
        best_label, best_value = None, None
        for label, v in zip(self._index, self._values):
            if is_missing(v):
                continue
            if best_value is None or v < best_value:
                best_label, best_value = label, v
        if best_label is None:
            raise ValueError("attempt to get idxmin of an all-NA Series")
        return best_label

    def nunique(self, dropna: bool = True) -> int:
        seen = set()
        has_na = False
        for v in self._values:
            if is_missing(v):
                has_na = True
            else:
                seen.add(v)
        return len(seen) + (0 if dropna else int(has_na))

    def unique(self) -> List[Any]:
        seen = set()
        out = []
        for v in self._values:
            key = kernels.na_key(v)
            if key not in seen:
                seen.add(key)
                out.append(v)
        return out

    def value_counts(self, normalize: bool = False, dropna: bool = True) -> "Series":
        counts: Dict[Any, int] = {}
        for v in self._values:
            if dropna and is_missing(v):
                continue
            key = NA if is_missing(v) else v
            counts[key] = counts.get(key, 0) + 1
        items = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        total = sum(counts.values()) or 1
        values = [c / total if normalize else c for _, c in items]
        return Series(values, index=[k for k, _ in items], name=self.name)

    def describe(self) -> "Series":
        stats = {
            "count": self.count(),
            "mean": self.mean(),
            "std": self.std(),
            "min": self.min(),
            "25%": self.quantile(0.25),
            "50%": self.quantile(0.5),
            "75%": self.quantile(0.75),
            "max": self.max(),
        }
        return Series(list(stats.values()), index=list(stats.keys()), name=self.name)

    # ----------------------------------------------------------------- sorting
    def sort_values(self, ascending: bool = True) -> "Series":
        def sort_key(pair):
            v = pair[1]
            return (is_missing(v), v if not is_missing(v) else 0)

        pairs = sorted(zip(self._index, self._values), key=sort_key, reverse=not ascending)
        if not ascending:
            # keep missing values last regardless of direction
            pairs = [p for p in pairs if not is_missing(p[1])] + [
                p for p in pairs if is_missing(p[1])
            ]
        return Series(
            [v for _, v in pairs], index=[label for label, _ in pairs], name=self.name
        )

    def sort_index(self) -> "Series":
        pairs = sorted(zip(self._index, self._values), key=lambda p: repr(p[0]))
        return Series(
            [v for _, v in pairs], index=[label for label, _ in pairs], name=self.name
        )

    # ---------------------------------------------------------------- sampling
    def sample(self, n: Optional[int] = None, frac: Optional[float] = None,
               random_state: Optional[int] = None) -> "Series":
        if n is None:
            n = int(round((frac if frac is not None else 1.0) * len(self)))
        n = min(n, len(self))
        rng = np.random.default_rng(random_state)
        positions = sorted(rng.choice(len(self), size=n, replace=False).tolist())
        return self.take(positions)

    # -------------------------------------------------------- windows & order
    def shift(self, periods: int = 1) -> "Series":
        """Shift values by *periods* positions, filling vacated slots with NaN."""
        n = len(self._values)
        if periods >= 0:
            values = [NA] * min(periods, n) + self._values[: max(n - periods, 0)]
        else:
            k = min(-periods, n)
            values = self._values[k:] + [NA] * k
        return self._with_values(values)

    def diff(self, periods: int = 1) -> "Series":
        shifted = self.shift(periods)
        return self - shifted

    def pct_change(self, periods: int = 1) -> "Series":
        previous = self.shift(periods)
        return (self - previous) / previous

    def cumsum(self) -> "Series":
        values, total = [], 0.0
        for v in self._values:
            if is_missing(v):
                values.append(NA)
            else:
                total += v
                values.append(total)
        return self._with_values(values)

    def cummax(self) -> "Series":
        values, best = [], None
        for v in self._values:
            if is_missing(v):
                values.append(NA)
            else:
                best = v if best is None else max(best, v)
                values.append(best)
        return self._with_values(values)

    def cummin(self) -> "Series":
        values, best = [], None
        for v in self._values:
            if is_missing(v):
                values.append(NA)
            else:
                best = v if best is None else min(best, v)
                values.append(best)
        return self._with_values(values)

    def rank(self, ascending: bool = True, method: str = "average") -> "Series":
        """Rank values (1-based); ties share the average rank by default."""
        if method not in ("average", "min", "first"):
            raise ValueError(f"unsupported rank method: {method!r}")
        present = [
            (v, pos) for pos, v in enumerate(self._values) if not is_missing(v)
        ]
        present.sort(key=lambda pair: pair[0], reverse=not ascending)
        ranks: List[Any] = [NA] * len(self._values)
        i = 0
        while i < len(present):
            j = i
            while j + 1 < len(present) and present[j + 1][0] == present[i][0]:
                j += 1
            if method == "average":
                value = (i + j) / 2 + 1
            elif method == "min":
                value = i + 1
            else:  # first: order of appearance within the tie
                value = None
            for offset, (_, pos) in enumerate(present[i : j + 1]):
                ranks[pos] = (i + offset + 1) if method == "first" else value
            i = j + 1
        return self._with_values(ranks)

    def ffill(self) -> "Series":
        if not any(is_missing(v) for v in self._values):
            return self._share()
        values, last = [], NA
        for v in self._values:
            if is_missing(v):
                values.append(last)
            else:
                last = v
                values.append(v)
        return self._with_values(values)

    def bfill(self) -> "Series":
        if not any(is_missing(v) for v in self._values):
            return self._share()
        values: List[Any] = []
        upcoming = NA
        for v in reversed(self._values):
            if is_missing(v):
                values.append(upcoming)
            else:
                upcoming = v
                values.append(v)
        values.reverse()
        return self._with_values(values)

    def interpolate(self) -> "Series":
        """Linear interpolation between the nearest present neighbours.

        Leading/trailing gaps are left missing, matching pandas'
        ``limit_direction='forward'``-free default for interior gaps.
        """
        values = list(self._values)
        present = [pos for pos, v in enumerate(values) if not is_missing(v)]
        for left, right in zip(present, present[1:]):
            gap = right - left
            if gap <= 1:
                continue
            lo, hi = float(values[left]), float(values[right])
            for step in range(1, gap):
                values[left + step] = lo + (hi - lo) * step / gap
        return self._with_values(values)

    def where(self, condition: "Series", other: Any = NA) -> "Series":
        """Keep values where *condition* holds; replace the rest with *other*."""
        condition_by_label = dict(zip(condition.index, condition))
        values = [
            v if condition_by_label.get(label, False) else (
                other[label] if isinstance(other, Series) and label in other.index
                else other
            )
            for label, v in zip(self._index, self._values)
        ]
        return self._with_values(values, coerce=True)

    def mask(self, condition: "Series", other: Any = NA) -> "Series":
        """Replace values where *condition* holds (inverse of where)."""
        return self.where(~condition, other)

    def combine_first(self, other: "Series") -> "Series":
        """Fill this Series' missing values from *other* (label-aligned)."""
        other_by_label = dict(zip(other.index, other))
        values = [
            other_by_label.get(label, v) if is_missing(v) else v
            for label, v in zip(self._index, self._values)
        ]
        return self._with_values(values)

    def to_frame(self, name: Optional[str] = None):
        from .frame import DataFrame

        column = name if name is not None else (self.name or 0)
        return DataFrame(
            {column: list(self._values)}, index=self._index.tolist()
        )

    def rolling(self, window: int, min_periods: Optional[int] = None):
        from .rolling import Rolling

        return Rolling(self, window, min_periods=min_periods)

    def nlargest(self, n: int = 5) -> "Series":
        return self.sort_values(ascending=False).head(n)

    def nsmallest(self, n: int = 5) -> "Series":
        return self.sort_values(ascending=True).head(n)

    # ------------------------------------------------------------ str accessor
    @property
    def str(self):
        from .strings import StringAccessor

        return StringAccessor(self)

    @property
    def dt(self):
        from .datetimes import DatetimeAccessor

        return DatetimeAccessor(self)

    # --------------------------------------------------------------- utilities
    def rename(self, name: str) -> "Series":
        out = self.copy()
        out.name = name
        return out

    def corr(self, other: "Series") -> float:
        pairs = []
        other_by_label = dict(zip(other.index, other._values))
        for label, v in zip(self._index, self._values):
            rhs = other_by_label.get(label, NA)
            if not is_missing(v) and not is_missing(rhs):
                pairs.append((float(v), float(rhs)))
        if len(pairs) < 2:
            return NA
        xs = np.array([p[0] for p in pairs])
        ys = np.array([p[1] for p in pairs])
        if xs.std() == 0 or ys.std() == 0:
            return NA
        return float(np.corrcoef(xs, ys)[0, 1])


class _SeriesILoc:
    def __init__(self, series: Series):
        self._series = series

    def __getitem__(self, item):
        if isinstance(item, slice):
            return Series(
                self._series._values[item],
                index=self._series.index.tolist()[item],
                name=self._series.name,
            )
        if isinstance(item, (list, np.ndarray)):
            return self._series.take([int(i) for i in item])
        return self._series._values[int(item)]


class _SeriesLoc:
    def __init__(self, series: Series):
        self._series = series

    def __getitem__(self, item):
        return self._series[item]

    def __setitem__(self, item, value):
        self._series[item] = value


def _safe_div(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0:
            return NA
        return math.inf if a > 0 else -math.inf


def _dtype_name(dtype) -> str:
    if dtype in (int, "int", "int64", "int32"):
        return "int64"
    if dtype in (float, "float", "float64", "float32"):
        return "float64"
    if dtype in (bool, "bool"):
        return "bool"
    if dtype in (str, "str", "object", "category"):
        return "object"
    raise TypeError(f"unsupported dtype: {dtype!r}")


def _cast_values(values: List[Any], dtype_name: str) -> List[Any]:
    name = _dtype_name(dtype_name)
    out = []
    for v in values:
        if is_missing(v):
            if name == "int64":
                raise ValueError("cannot convert NA to integer")
            out.append(NA if name == "float64" else (None if name == "object" else NA))
            continue
        if name == "int64":
            out.append(int(v))
        elif name == "float64":
            out.append(float(v))
        elif name == "bool":
            out.append(bool(v))
        else:
            out.append(str(v))
    return out
