"""Missing-value conventions shared across the minipandas substrate.

Numeric columns use ``float('nan')`` as their missing marker; object columns
use ``None``.  ``is_missing`` recognizes both, which lets mixed-provenance
values (e.g. a raw CSV field that failed numeric parsing) flow through
``fillna``/``dropna`` uniformly.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["NA", "is_missing", "missing_for_dtype"]

#: Canonical missing-value sentinel exposed as ``minipandas.NA``.
NA = float("nan")


def is_missing(value: Any) -> bool:
    """Return True when *value* is a missing-data marker (None or NaN)."""
    if value is None:
        return True
    if isinstance(value, float):
        return math.isnan(value)
    # numpy scalar floats compare unequal to themselves when NaN.
    try:
        return bool(value != value)
    except Exception:
        return False


def missing_for_dtype(dtype: str) -> Any:
    """Return the missing marker appropriate for a minipandas dtype name."""
    if dtype in ("float64", "int64", "bool"):
        return NA
    return None
