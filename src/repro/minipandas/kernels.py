"""Kernel helpers and the kernel-audit machinery for minipandas.

The hot table ops (``fillna``, ``dropna``, ``duplicated``/
``drop_duplicates``, ``get_dummies``, boolean masks/``take``, groupby
aggregation) run as single-pass columnar kernels over shared
copy-on-write column payloads.  This module holds what those kernels
share:

* the **dedup-key conventions** — a unique object sentinel for missing
  cells (a genuine ``"__na__"`` string can never collide with NA) and a
  repr-key fallback for unhashable cell values (a cell holding a list
  must not abort a search wave with ``TypeError``);
* the **audit mode** behind ``LSConfig.verify_kernels`` — a process-wide
  switch that makes every kernel shadow-run the naive row-at-a-time
  reference implementation (:mod:`repro.minipandas._naive`) and raise
  :class:`KernelMismatchError` on any divergence.  The kernels are
  bit-identical to the references by construction; the audit exists to
  *prove* that on live workloads, not for production.

The audit flag is deliberately module-global: the sandbox executes
candidate scripts against this substrate in-process, so one switch
covers every frame the search touches.  It only audits the process it
is set in (shard workers run unaudited unless they set it themselves).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from ._missing import is_missing

__all__ = [
    "KernelMismatchError",
    "kernel_audit",
    "set_kernel_audit",
    "audit_enabled",
    "audit",
    "na_key",
    "row_key",
    "fresh_name",
]

#: Missing-cell stand-in for dedup keys.  ``object()`` identity can never
#: equal a real cell value, unlike the old ``"__na__"`` string sentinel.
NA_KEY = object()

#: Marker tuple head for the repr-key fallback on unhashable cells.
_UNHASHABLE = object()


def na_key(value: Any) -> Any:
    """The dedup-key form of one cell: NA sentinel, value, or repr-key."""
    if is_missing(value):
        return NA_KEY
    try:
        hash(value)
    except TypeError:
        return (_UNHASHABLE, type(value).__name__, repr(value))
    return value


def row_key(cells) -> tuple:
    """A hashable dedup key for one row of cells.

    Optimistic: builds the plain tuple first and only re-keys through
    :func:`na_key`'s repr fallback when the tuple turns out unhashable,
    so the common all-hashable row pays a single pass.
    """
    key = tuple(NA_KEY if is_missing(v) else v for v in cells)
    try:
        hash(key)
    except TypeError:
        return tuple(na_key(v) for v in cells)
    return key


def fresh_name(name: str, used) -> str:
    """First ``name``/``name_1``/``name_2``… not present in *used*.

    The deterministic collision rule shared by ``get_dummies`` and
    ``concat(axis=1)``: insertion order decides who keeps the bare name.
    """
    if name not in used:
        return name
    suffix = 1
    while f"{name}_{suffix}" in used:
        suffix += 1
    return f"{name}_{suffix}"


# ------------------------------------------------------------------ audit mode
class KernelMismatchError(AssertionError):
    """A columnar kernel diverged from its naive reference implementation."""


#: Process-wide audit switch; read directly by the kernels as
#: ``kernels._AUDIT`` so the disabled path costs one attribute load.
_AUDIT = False


def audit_enabled() -> bool:
    return _AUDIT


def set_kernel_audit(enabled: bool) -> None:
    """Turn the shadow-run audit on or off for this process."""
    global _AUDIT
    _AUDIT = bool(enabled)


@contextmanager
def kernel_audit(enabled: bool = True):
    """Scope the audit switch: ``with kernel_audit(cfg.verify_kernels): …``."""
    global _AUDIT
    prior = _AUDIT
    _AUDIT = bool(enabled)
    try:
        yield
    finally:
        _AUDIT = prior


def audit(op: str, kernel_result, naive: Callable[[], Any]) -> None:
    """Shadow-run *naive* and require bit-identity with *kernel_result*.

    The audit flag is cleared while the reference runs — the references
    are built from primitive loops, but anything they call must not
    re-enter the audit (and must not recurse through it).
    """
    global _AUDIT
    _AUDIT = False
    try:
        expected = naive()
    finally:
        _AUDIT = True
    if not _results_match(kernel_result, expected):
        raise KernelMismatchError(
            f"kernel {op!r} diverged from its naive reference: "
            f"kernel={_describe(kernel_result)} naive={_describe(expected)}"
        )


# ---------------------------------------------------------------- comparisons
def same_cell(a: Any, b: Any) -> bool:
    """Bit-identity for one cell: same missingness flavour, same type,
    same value.  ``1``/``True``/``1.0`` are all distinct here."""
    if is_missing(a) or is_missing(b):
        return is_missing(a) and is_missing(b) and ((a is None) == (b is None))
    if type(a) is not type(b):
        return False
    try:
        return bool(a == b)
    except Exception:  # noqa: BLE001 - incomparable values are "not equal"
        return False


def series_match(a, b) -> bool:
    """Bit-identity for two Series: name, labels, and every cell."""
    if len(a) != len(b) or a.name != b.name:
        return False
    if a.index.tolist() != b.index.tolist():
        return False
    return all(same_cell(x, y) for x, y in zip(a._values, b._values))


def frames_match(a, b) -> bool:
    """Bit-identity for two DataFrames: column order, labels, every cell."""
    if a.columns != b.columns:
        return False
    if a.index.tolist() != b.index.tolist():
        return False
    return all(
        same_cell(x, y)
        for c in a.columns
        for x, y in zip(a[c]._values, b[c]._values)
    )


def _results_match(a, b) -> bool:
    # late import: frame/series import this module at load time
    from .frame import DataFrame
    from .series import Series

    if isinstance(a, DataFrame) and isinstance(b, DataFrame):
        return frames_match(a, b)
    if isinstance(a, Series) and isinstance(b, Series):
        return series_match(a, b)
    return type(a) is type(b) and a == b


def _describe(obj) -> str:
    from .frame import DataFrame
    from .series import Series

    if isinstance(obj, DataFrame):
        return f"DataFrame(columns={obj.columns!r}, rows={len(obj)})"
    if isinstance(obj, Series):
        return f"Series(name={obj.name!r}, values={obj.tolist()!r})"
    return repr(obj)
