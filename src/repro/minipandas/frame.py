"""A two-dimensional labelled table mirroring the pandas ``DataFrame`` API.

The frame is a column store: an ordered mapping of column name to
:class:`~repro.minipandas.series.Series`, all sharing one row :class:`Index`
object.  The API surface covers everything exercised by the
data-preparation corpora that LucidScript standardizes — selection,
boolean filtering, missing-data handling, dummy encoding, grouping,
merging, and label-based assignment.

Hot ops run as single-pass columnar kernels: they walk each column's
payload list directly (never per-element ``iloc``), and any column an op
leaves untouched is passed through as the *same payload object* under
copy-on-write (:meth:`Series._share`), so derived frames — and the
sandbox's prefix snapshots — share storage until something actually
writes a cell.  ``LSConfig.verify_kernels`` shadow-runs the naive
row-at-a-time references in :mod:`repro.minipandas._naive` against every
kernel and raises :class:`repro.minipandas.kernels.KernelMismatchError`
on divergence.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import kernels
from ._missing import NA, is_missing
from .index import Index, RangeIndex
from .series import Series

__all__ = ["DataFrame"]

_NUMERIC_DTYPES = ("int64", "float64", "bool")


def _naive():
    """The naive reference implementations, imported lazily: the audit is
    off by default and ``_naive`` imports frame/series back."""
    from . import _naive as module

    return module


class DataFrame:
    """A column-oriented table with pandas-like semantics."""

    def __init__(
        self,
        data: Optional[Union[Dict[str, Iterable[Any]], List[Dict[str, Any]]]] = None,
        index: Optional[Iterable[Any]] = None,
        columns: Optional[Sequence[str]] = None,
    ):
        self._data: Dict[str, Series] = {}
        self._columns: List[str] = []

        if data is None:
            data = {}

        if isinstance(data, DataFrame):
            if index is None:
                index = data._index  # immutable, adopted by reference below
            data = {col: data._data[col] for col in data._columns}

        if isinstance(data, list):
            # list of row dicts
            keys: List[str] = []
            for row in data:
                for key in row:
                    if key not in keys:
                        keys.append(key)
            data = {key: [row.get(key, NA) for row in data] for key in keys}

        if not isinstance(data, dict):
            raise TypeError(f"unsupported DataFrame data type: {type(data).__name__}")

        lengths = {len(list(v)) if not isinstance(v, Series) else len(v) for v in data.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have mismatched lengths: {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0

        if index is None:
            self._index: Index = RangeIndex(n_rows)
        elif isinstance(index, Index):
            self._index = index  # Index is immutable: safe to adopt
        else:
            self._index = Index(index)
        if len(self._index) != n_rows and data:
            raise ValueError(
                f"index length {len(self._index)} does not match data length {n_rows}"
            )

        # every column shares the frame's single Index object; Series
        # payloads are adopted by reference under copy-on-write
        ordered = columns if columns is not None else list(data.keys())
        for col in ordered:
            values = data[col]
            if isinstance(values, Series):
                self._data[col] = values._share(index=self._index, name=col)
            else:
                self._data[col] = Series._from_sequence(values, self._index, col)
            self._columns.append(col)

    # ------------------------------------------------------------------ basics
    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def index(self) -> Index:
        return self._index

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self._index), len(self._columns))

    @property
    def empty(self) -> bool:
        return len(self._index) == 0 or not self._columns

    @property
    def dtypes(self) -> Series:
        return Series(
            [self._data[c].dtype for c in self._columns], index=list(self._columns)
        )

    @property
    def values(self) -> np.ndarray:
        if not self._columns:
            return np.empty((len(self._index), 0))
        cols = [self._data[c].tolist() for c in self._columns]
        if all(self._data[c].dtype in _NUMERIC_DTYPES for c in self._columns):
            return np.array(
                [[NA if is_missing(v) else float(v) for v in col] for col in cols],
                dtype=np.float64,
            ).T
        return np.array(cols, dtype=object).T

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __contains__(self, col: str) -> bool:
        return col in self._data

    def __repr__(self) -> str:
        head = self.head(8)
        widths = {
            c: max(len(str(c)), *(len(repr(v)) for v in head._data[c])) if len(head) else len(str(c))
            for c in self._columns
        }
        lines = ["  ".join(str(c).rjust(widths[c]) for c in self._columns)]
        for pos in range(len(head)):
            lines.append(
                "  ".join(
                    repr(head._data[c].iloc[pos]).rjust(widths[c]) for c in self._columns
                )
            )
        if len(self) > 8:
            lines.append("...")
        lines.append(f"[{len(self)} rows x {len(self._columns)} columns]")
        return "\n".join(lines)

    @classmethod
    def _from_data(
        cls, columns: Sequence[str], data: Dict[str, Series], index: Index
    ) -> "DataFrame":
        """Internal fast constructor: adopt prepared columns verbatim.

        Callers guarantee *data* holds one Series per name in *columns*,
        each already aligned to *index* (same length, positionally) with
        ``name`` equal to its column name.  No coercion, no Index
        rebuild — this is how kernels hand shared payloads through.
        """
        obj = cls.__new__(cls)
        obj._columns = list(columns)
        obj._data = data
        obj._index = index
        return obj

    def _shared_columns(self) -> Dict[str, Series]:
        """All columns as shared-payload wrappers (the untouched-column
        passthrough used by ``copy``/``take``-identity/no-op kernels)."""
        return {c: self._data[c]._share() for c in self._columns}

    def copy(self) -> "DataFrame":
        """O(columns) structural copy: shared payloads, shared index.

        The row :class:`Index` is immutable and every column payload is
        passed through by reference under copy-on-write — an in-place
        write on either side (``loc`` assignment, ``Series.__setitem__``)
        materializes a private list first, so the copy is as independent
        as a deep copy at a fraction of the cost.  The sandbox's
        incremental executor leans on this to snapshot namespaces between
        statements without duplicating cell storage.
        """
        return DataFrame._from_data(
            self._columns, self._shared_columns(), self._index
        )

    # --------------------------------------------------------------- selection
    def __getitem__(self, key):
        if isinstance(key, str):
            if key not in self._data:
                raise KeyError(f"column {key!r} not found")
            return self._data[key]
        if isinstance(key, Series):
            if key.dtype != "bool":
                raise TypeError("Series used as a DataFrame key must be boolean")
            return self._filter_mask(key)
        if isinstance(key, (list, tuple)):
            if key and all(isinstance(k, (bool, np.bool_)) for k in key):
                return self._filter_mask(
                    Series._from_sequence(list(key), self._index, None)
                )
            missing = [k for k in key if k not in self._data]
            if missing:
                raise KeyError(f"columns {missing!r} not found")
            # column selection leaves values untouched: share every payload
            # (dict ordering mirrors the legacy first-occurrence dedup)
            cols = list(dict.fromkeys(key))
            return DataFrame._from_data(
                cols, {k: self._data[k]._share() for k in cols}, self._index
            )
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return self._filter_mask(
                Series._from_sequence(key.tolist(), self._index, None)
            )
        if isinstance(key, slice):
            return self.iloc[key]
        raise TypeError(f"unsupported DataFrame key: {type(key).__name__}")

    def __setitem__(self, key: str, value) -> None:
        if not isinstance(key, str):
            raise TypeError("column labels must be strings")
        n = len(self._index)
        if isinstance(value, Series):
            if value._index is self._index and self._index.is_unique():
                # derived from this frame (ops share the index object):
                # labels align positionally, so adopt the payload directly
                self._data[key] = value._share(index=self._index, name=key)
            else:
                aligned = self._align_series(value)
                self._data[key] = Series._from_sequence(aligned, self._index, key)
        elif isinstance(value, (list, tuple, np.ndarray)):
            values = list(value)
            if len(values) != n:
                raise ValueError(
                    f"length of values ({len(values)}) does not match rows ({n})"
                )
            self._data[key] = Series._from_sequence(values, self._index, key)
        else:
            self._data[key] = Series._from_sequence([value] * n, self._index, key)
        if key not in self._columns:
            self._columns.append(key)

    def __delitem__(self, key: str) -> None:
        if key not in self._data:
            raise KeyError(f"column {key!r} not found")
        del self._data[key]
        self._columns.remove(key)

    def _align_series(self, series: Series) -> List[Any]:
        by_label = dict(zip(series.index, series))
        return [by_label.get(label, NA) for label in self._index]

    def _filter_mask(self, mask: Series) -> "DataFrame":
        if mask._index is self._index and self._index.is_unique():
            # mask derived from this frame (comparisons/combinators share
            # the index object): flags align positionally
            keep = [pos for pos, flag in enumerate(mask._values) if flag]
        else:
            mask_by_label = dict(zip(mask.index, mask))
            keep = [
                pos
                for pos, label in enumerate(self._index)
                if mask_by_label.get(label, False)
            ]
        return self.take(keep)

    def take(self, positions: Sequence[int]) -> "DataFrame":
        positions = list(positions)
        n = len(self._index)
        if len(positions) == n and positions == list(range(n)):
            # identity gather: pass every payload (and the index) through
            return DataFrame._from_data(
                self._columns, self._shared_columns(), self._index
            )
        new_index = self._index.take(positions)
        data = {}
        for c in self._columns:
            values = self._data[c]._values
            data[c] = Series._from_payload(
                [values[p] for p in positions], new_index, c
            )
        out = DataFrame._from_data(self._columns, data, new_index)
        if kernels._AUDIT:
            kernels.audit("take", out, lambda: _naive().take_frame(self, positions))
        return out

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(range(min(max(n, 0), len(self))))

    def tail(self, n: int = 5) -> "DataFrame":
        size = len(self)
        start = max(size - max(n, 0), 0)
        return self.take(range(start, size))

    def pop(self, col: str) -> Series:
        series = self[col]
        del self[col]
        return series

    def get(self, col: str, default=None):
        return self._data.get(col, default)

    def select_dtypes(self, include=None, exclude=None) -> "DataFrame":
        include = _normalize_dtype_filter(include)
        exclude = _normalize_dtype_filter(exclude)
        cols = []
        for c in self._columns:
            dtype = self._data[c].dtype
            if include is not None and dtype not in include:
                continue
            if exclude is not None and dtype in exclude:
                continue
            cols.append(c)
        return self[cols]

    @property
    def loc(self) -> "_Loc":
        return _Loc(self)

    @property
    def iloc(self) -> "_ILoc":
        return _ILoc(self)

    @property
    def T(self) -> "DataFrame":
        return self.transpose()

    def transpose(self) -> "DataFrame":
        new_cols = [str(label) for label in self._index]
        data = {}
        for pos, col in enumerate(new_cols):
            data[col] = [self._data[c].iloc[pos] for c in self._columns]
        return DataFrame(data, index=list(self._columns))

    def iterrows(self) -> Iterator[Tuple[Any, Series]]:
        for pos, label in enumerate(self._index):
            yield label, Series(
                [self._data[c].iloc[pos] for c in self._columns],
                index=list(self._columns),
                name=label,
            )

    def itertuples(self) -> Iterator[tuple]:
        for pos, label in enumerate(self._index):
            yield (label,) + tuple(self._data[c].iloc[pos] for c in self._columns)

    # ------------------------------------------------------------ missing data
    def isnull(self) -> "DataFrame":
        # Series.isnull shares this frame's index, so the bool columns
        # drop straight into a derived frame without re-coercion
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].isnull() for c in self._columns},
            self._index,
        )

    isna = isnull

    def notnull(self) -> "DataFrame":
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].notnull() for c in self._columns},
            self._index,
        )

    notna = notnull

    def fillna(self, value) -> "DataFrame":
        out: Dict[str, Series] = {}
        if isinstance(value, Series):
            fill_by_col = dict(zip(value.index, value))
            for c in self._columns:
                if c in fill_by_col and not is_missing(fill_by_col[c]):
                    out[c] = self._data[c].fillna(fill_by_col[c])
                else:
                    out[c] = self._data[c]._share()
        elif isinstance(value, dict):
            for c in self._columns:
                if c in value:
                    out[c] = self._data[c].fillna(value[c])
                else:
                    out[c] = self._data[c]._share()
        else:
            for c in self._columns:
                out[c] = self._data[c].fillna(value)
        result = DataFrame._from_data(self._columns, out, self._index)
        if kernels._AUDIT:
            kernels.audit(
                "fillna", result, lambda: _naive().fillna_frame(self, value)
            )
        return result

    def dropna(
        self,
        axis: int = 0,
        how: Optional[str] = None,
        subset: Optional[Sequence[str]] = None,
        thresh: Optional[int] = None,
    ) -> "DataFrame":
        if how is not None and thresh is not None:
            raise TypeError(
                "You cannot set both the how and thresh arguments at the same time."
            )
        if how is None:
            how = "any"
        if thresh is None and how not in ("any", "all"):
            raise ValueError(f"invalid how: {how!r}")
        if axis == 1:
            cols = []
            for c in self._columns:
                missing = sum(1 for v in self._data[c]._values if is_missing(v))
                present = len(self) - missing
                if thresh is not None:
                    if present >= thresh:
                        cols.append(c)
                elif how == "any":
                    if missing == 0:
                        cols.append(c)
                else:
                    # "all": drop only columns that are entirely missing; a
                    # zero-row frame has no missing values, so keep every column
                    if present > 0 or len(self) == 0:
                        cols.append(c)
            out = self[cols]
            if kernels._AUDIT:
                kernels.audit(
                    "dropna",
                    out,
                    lambda: _naive().dropna_frame(self, axis, how, subset, thresh),
                )
            return out
        check_cols = list(subset) if subset is not None else list(self._columns)
        for c in check_cols:
            if c not in self._data:
                raise KeyError(f"column {c!r} not found")
        # columnar missing count: one pass per checked column, no iloc
        n = len(self)
        missing_counts = [0] * n
        for c in check_cols:
            for pos, v in enumerate(self._data[c]._values):
                if is_missing(v):
                    missing_counts[pos] += 1
        n_check = len(check_cols)
        if thresh is not None:
            keep = [
                pos for pos, m in enumerate(missing_counts) if n_check - m >= thresh
            ]
        elif how == "any":
            keep = [pos for pos, m in enumerate(missing_counts) if m == 0]
        else:
            # "all": a row over zero checked columns has nothing missing
            keep = [
                pos
                for pos, m in enumerate(missing_counts)
                if n_check - m > 0 or not check_cols
            ]
        out = self.take(keep)
        if kernels._AUDIT:
            kernels.audit(
                "dropna",
                out,
                lambda: _naive().dropna_frame(self, axis, how, subset, thresh),
            )
        return out

    # -------------------------------------------------------------- reductions
    def _numeric_columns(self) -> List[str]:
        return [c for c in self._columns if self._data[c].dtype in _NUMERIC_DTYPES]

    def _reduce(self, op_name: str, numeric_only: bool = True) -> Series:
        cols = self._numeric_columns() if numeric_only else list(self._columns)
        values = [getattr(self._data[c], op_name)() for c in cols]
        return Series(values, index=cols)

    def mean(self, numeric_only: bool = True) -> Series:
        return self._reduce("mean", numeric_only)

    def median(self, numeric_only: bool = True) -> Series:
        return self._reduce("median", numeric_only)

    def std(self, numeric_only: bool = True) -> Series:
        return self._reduce("std", numeric_only)

    def var(self, numeric_only: bool = True) -> Series:
        return self._reduce("var", numeric_only)

    def sum(self, numeric_only: bool = True) -> Series:
        return self._reduce("sum", numeric_only)

    def min(self, numeric_only: bool = False) -> Series:
        return self._reduce("min", numeric_only)

    def max(self, numeric_only: bool = False) -> Series:
        return self._reduce("max", numeric_only)

    def count(self) -> Series:
        return Series(
            [self._data[c].count() for c in self._columns], index=list(self._columns)
        )

    def nunique(self) -> Series:
        return Series(
            [self._data[c].nunique() for c in self._columns], index=list(self._columns)
        )

    def mode(self) -> "DataFrame":
        modes = {c: self._data[c].mode().tolist() for c in self._columns}
        longest = max((len(v) for v in modes.values()), default=0)
        padded = {
            c: values + [NA] * (longest - len(values)) for c, values in modes.items()
        }
        return DataFrame(padded)

    def quantile(self, q: float = 0.5) -> Series:
        cols = self._numeric_columns()
        return Series([self._data[c].quantile(q) for c in cols], index=cols)

    def describe(self) -> "DataFrame":
        cols = self._numeric_columns()
        stats = ["count", "mean", "std", "min", "25%", "50%", "75%", "max"]
        data = {c: self._data[c].describe().tolist() for c in cols}
        return DataFrame(data, index=stats)

    def corr(self) -> "DataFrame":
        cols = self._numeric_columns()
        data = {}
        for c1 in cols:
            data[c1] = [
                1.0 if c1 == c2 else self._data[c1].corr(self._data[c2]) for c2 in cols
            ]
        return DataFrame(data, index=list(cols))

    # ----------------------------------------------------------- deduplication
    def duplicated(self, subset: Optional[Sequence[str]] = None) -> Series:
        check_cols = list(subset) if subset is not None else list(self._columns)
        seen = set()
        flags = []
        n = len(self)
        if not check_cols:
            # zero checked columns: every row shares the empty key
            flags = [pos > 0 for pos in range(n)]
        else:
            # single zip pass over the column payloads; keys use a unique
            # object sentinel for NA (a genuine "__na__" cell never
            # collides) and fall back to a repr key for unhashable cells
            # instead of raising TypeError mid-search
            payloads = [self._data[c]._values for c in check_cols]
            for row in zip(*payloads):
                key = kernels.row_key(row)
                flags.append(key in seen)
                seen.add(key)
        out = Series._from_payload(flags, self._index, None)
        if kernels._AUDIT:
            kernels.audit(
                "duplicated", out, lambda: _naive().duplicated_frame(self, subset)
            )
        return out

    def drop_duplicates(self, subset: Optional[Sequence[str]] = None) -> "DataFrame":
        dup = self.duplicated(subset)
        keep = [pos for pos, flag in enumerate(dup._values) if not flag]
        return self.take(keep)

    # ------------------------------------------------------------- mutations
    def drop(
        self,
        labels=None,
        axis: int = 0,
        columns=None,
        index=None,
        errors: str = "raise",
    ) -> "DataFrame":
        if columns is not None:
            axis, labels = 1, columns
        elif index is not None:
            axis, labels = 0, index
        if labels is None:
            raise TypeError("drop requires labels, columns=, or index=")
        if isinstance(labels, (str, int)) or not isinstance(labels, (list, tuple, set, Index)):
            labels = [labels]
        labels = list(labels)
        if axis == 1:
            missing = [c for c in labels if c not in self._data]
            if missing and errors == "raise":
                raise KeyError(f"columns {missing!r} not found")
            keep = [c for c in self._columns if c not in set(labels)]
            return self[keep]
        drop_set = set(labels)
        if errors == "raise":
            present = set(self._index)
            missing_rows = [lbl for lbl in labels if lbl not in present]
            if missing_rows:
                raise KeyError(f"index labels {missing_rows!r} not found")
        keep_pos = [
            pos for pos, label in enumerate(self._index) if label not in drop_set
        ]
        return self.take(keep_pos)

    def rename(self, columns: Optional[Dict[str, str]] = None, **_ignored) -> "DataFrame":
        if columns is None:
            return self.copy()
        # values untouched: share every payload under the new names
        # (dict collisions keep legacy last-wins, first-insertion order)
        data = {
            columns.get(c, c): self._data[c]._share(name=columns.get(c, c))
            for c in self._columns
        }
        return DataFrame._from_data(list(data.keys()), data, self._index)

    def astype(self, dtype) -> "DataFrame":
        if isinstance(dtype, dict):
            data = {
                c: (
                    self._data[c].astype(dtype[c])
                    if c in dtype
                    else self._data[c]._share()
                )
                for c in self._columns
            }
        else:
            data = {c: self._data[c].astype(dtype) for c in self._columns}
        return DataFrame._from_data(self._columns, data, self._index)

    def apply(self, func: Callable, axis: int = 0):
        if axis == 0:
            results = {}
            scalar = True
            for c in self._columns:
                result = func(self._data[c])
                results[c] = result
                if isinstance(result, Series):
                    scalar = False
            if scalar:
                return Series(
                    [results[c] for c in self._columns], index=list(self._columns)
                )
            return DataFrame(
                {c: list(results[c]) for c in self._columns}, index=self._index.tolist()
            )
        values = []
        for _, row in self.iterrows():
            values.append(func(row))
        return Series(values, index=self._index.tolist())

    def applymap(self, func: Callable[[Any], Any]) -> "DataFrame":
        return DataFrame(
            {c: [func(v) for v in self._data[c]] for c in self._columns},
            index=self._index.tolist(),
        )

    def assign(self, **kwargs) -> "DataFrame":
        out = self.copy()
        for key, value in kwargs.items():
            out[key] = value(out) if callable(value) else value
        return out

    def insert(self, loc: int, column: str, value) -> None:
        if column in self._data:
            raise ValueError(f"column {column!r} already exists")
        self[column] = value
        self._columns.remove(column)
        self._columns.insert(loc, column)

    # ---------------------------------------------------------------- sorting
    def sort_values(self, by, ascending: bool = True) -> "DataFrame":
        if isinstance(by, str):
            by = [by]
        for c in by:
            if c not in self._data:
                raise KeyError(f"column {c!r} not found")

        payloads = [self._data[c]._values for c in by]

        def sort_key(pos):
            return tuple(
                (is_missing(v), v if not is_missing(v) else 0)
                for v in (payload[pos] for payload in payloads)
            )

        order = sorted(range(len(self)), key=sort_key, reverse=not ascending)
        if not ascending:
            first = payloads[0]
            order = [p for p in order if not is_missing(first[p])] + [
                p for p in order if is_missing(first[p])
            ]
        return self.take(order)

    def sort_index(self) -> "DataFrame":
        order = sorted(range(len(self)), key=lambda pos: repr(self._index[pos]))
        return self.take(order)

    def reset_index(self, drop: bool = True) -> "DataFrame":
        if drop and not self._columns:
            # legacy round-trip through an empty dict: no columns, no rows
            return DataFrame({})
        new_index = RangeIndex(len(self._index))
        data: Dict[str, Series] = {}
        if not drop:
            data["index"] = Series._from_sequence(
                self._index.tolist(), new_index, "index"
            )
        for c in self._columns:
            # values untouched: share payloads under the fresh range index
            # (an existing "index" column overwrites the label column,
            # matching the legacy dict-merge behaviour)
            data[c] = self._data[c]._share(index=new_index)
        return DataFrame._from_data(list(data.keys()), data, new_index)

    def set_index(self, col: str) -> "DataFrame":
        new_index = Index(self._data[col]._values)
        cols = [c for c in self._columns if c != col]
        return DataFrame._from_data(
            cols, {c: self._data[c]._share(index=new_index) for c in cols}, new_index
        )

    # ---------------------------------------------------------- imputation etc
    def ffill(self) -> "DataFrame":
        # Series.ffill shares the index (and, when nothing is missing,
        # the payload), so the columns drop straight into a derived frame
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].ffill() for c in self._columns},
            self._index,
        )

    def bfill(self) -> "DataFrame":
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].bfill() for c in self._columns},
            self._index,
        )

    def nlargest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=False).head(n)

    def nsmallest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=True).head(n)

    def shift(self, periods: int = 1) -> "DataFrame":
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].shift(periods) for c in self._columns},
            self._index,
        )

    def pivot(self, index: str, columns: str, values: str) -> "DataFrame":
        """Reshape long→wide with unique (index, columns) pairs."""
        from .ops import pivot_table

        seen = set()
        for pos in range(len(self)):
            key = (self._data[index].iloc[pos], self._data[columns].iloc[pos])
            if key in seen:
                raise ValueError(
                    f"pivot requires unique (index, columns) pairs; {key!r} repeats"
                )
            seen.add(key)
        return pivot_table(self, values=values, index=index, columns=columns)

    # --------------------------------------------------------------- sampling
    def sample(
        self,
        n: Optional[int] = None,
        frac: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> "DataFrame":
        if n is None:
            n = int(round((frac if frac is not None else 1.0) * len(self)))
        n = min(n, len(self))
        rng = np.random.default_rng(random_state)
        positions = sorted(rng.choice(len(self), size=n, replace=False).tolist())
        return self.take(positions)

    def add_prefix(self, prefix: str) -> "DataFrame":
        return self.rename(columns={c: f"{prefix}{c}" for c in self._columns})

    def add_suffix(self, suffix: str) -> "DataFrame":
        return self.rename(columns={c: f"{c}{suffix}" for c in self._columns})

    def isin(self, collection) -> "DataFrame":
        return DataFrame._from_data(
            self._columns,
            {c: self._data[c].isin(collection) for c in self._columns},
            self._index,
        )

    # ----------------------------------------------------------------- query
    def query(self, expression: str, **variables) -> "DataFrame":
        """Filter rows with a boolean expression string.

        Supports comparisons (incl. chained), and/or/not, arithmetic,
        ``in`` membership, and ``@name`` references supplied as keyword
        arguments: ``df.query("Age > @lo and Sex == 'male'", lo=18)``.
        """
        from .query import evaluate_query

        return self[evaluate_query(self, expression, variables)]

    # --------------------------------------------------------------- grouping
    def groupby(self, by):
        from .groupby import GroupBy

        return GroupBy(self, by)

    # ---------------------------------------------------------------- joining
    def merge(
        self,
        right: "DataFrame",
        on: Optional[Union[str, Sequence[str]]] = None,
        how: str = "inner",
        left_on: Optional[str] = None,
        right_on: Optional[str] = None,
        suffixes: Tuple[str, str] = ("_x", "_y"),
    ) -> "DataFrame":
        from .ops import merge

        return merge(
            self, right, on=on, how=how, left_on=left_on, right_on=right_on,
            suffixes=suffixes,
        )

    def append(self, other: "DataFrame") -> "DataFrame":
        from .ops import concat

        return concat([self, other], ignore_index=True)

    # -------------------------------------------------------------------- io
    def to_csv(self, path: str, index: bool = False) -> None:
        from .io import write_csv

        write_csv(self, path, index=index)

    def to_dict(self, orient: str = "list") -> dict:
        if orient == "list":
            return {c: self._data[c].tolist() for c in self._columns}
        if orient == "records":
            return [
                {c: self._data[c].iloc[pos] for c in self._columns}
                for pos in range(len(self))
            ]
        raise ValueError(f"unsupported orient: {orient!r}")


class _Loc:
    """Label-based selection/assignment (``df.loc``)."""

    def __init__(self, frame: DataFrame):
        self._frame = frame

    def __getitem__(self, key):
        frame = self._frame
        if isinstance(key, tuple):
            rows, cols = key
            subset = self._select_rows(rows)
            if isinstance(cols, str):
                return subset[cols] if isinstance(subset, DataFrame) else subset[cols]
            return subset[list(cols)]
        return self._select_rows(key)

    def _select_rows(self, rows):
        frame = self._frame
        if isinstance(rows, Series) and rows.dtype == "bool":
            return frame._filter_mask(rows)
        if isinstance(rows, slice):
            if rows.start is None and rows.stop is None:
                return frame.copy()
            raise NotImplementedError("loc slices with bounds are unsupported")
        if isinstance(rows, (list, Index, np.ndarray)):
            labels = list(rows)
            if labels and all(isinstance(v, (bool, np.bool_)) for v in labels):
                return frame._filter_mask(Series(labels, index=frame.index.tolist()))
            positions = frame.index.positions_for(labels)
            return frame.take(positions)
        # single label -> row Series
        pos = frame.index.get_loc(rows)
        return Series(
            [frame._data[c].iloc[pos] for c in frame.columns],
            index=frame.columns,
            name=rows,
        )

    def __setitem__(self, key, value) -> None:
        frame = self._frame
        if not isinstance(key, tuple):
            raise NotImplementedError("loc assignment requires (rows, column)")
        rows, col = key
        if not isinstance(col, str):
            raise NotImplementedError("loc assignment supports a single column")
        if col not in frame._data:
            frame[col] = NA
        if isinstance(rows, Series) and rows.dtype == "bool":
            positions = [
                frame.index.get_loc(label)
                for label, flag in zip(rows.index, rows)
                if flag and label in frame.index
            ]
        elif isinstance(rows, (list, Index, np.ndarray)):
            positions = frame.index.positions_for(list(rows))
        elif isinstance(rows, slice) and rows.start is None and rows.stop is None:
            positions = list(range(len(frame)))
        else:
            positions = [frame.index.get_loc(rows)]
        column = frame._data[col]
        payload = column._materialize()  # copy-on-write: never touch sharers
        if isinstance(value, (list, tuple, np.ndarray, Series)):
            values = list(value)
            if len(values) != len(positions):
                raise ValueError(
                    f"length of values ({len(values)}) does not match targets ({len(positions)})"
                )
            for pos, v in zip(positions, values):
                payload[pos] = v
        else:
            for pos in positions:
                payload[pos] = value


class _ILoc:
    """Position-based selection (``df.iloc``)."""

    def __init__(self, frame: DataFrame):
        self._frame = frame

    def __getitem__(self, key):
        frame = self._frame
        if isinstance(key, tuple):
            rows, cols = key
            subset = self._select_rows(rows)
            col_names = self._resolve_cols(cols)
            if isinstance(col_names, str):
                if isinstance(subset, Series):
                    return subset[col_names]
                return subset[col_names]
            if isinstance(subset, Series):
                return subset[list(col_names)]
            return subset[list(col_names)]
        return self._select_rows(key)

    def _resolve_cols(self, cols):
        names = self._frame.columns
        if isinstance(cols, int):
            return names[cols]
        if isinstance(cols, slice):
            return names[cols]
        return [names[int(i)] for i in cols]

    def _select_rows(self, rows):
        frame = self._frame
        if isinstance(rows, int):
            pos = rows if rows >= 0 else len(frame) + rows
            if not 0 <= pos < len(frame):
                raise IndexError(f"position {rows} out of bounds for {len(frame)} rows")
            return Series(
                [frame._data[c].iloc[pos] for c in frame.columns],
                index=frame.columns,
                name=frame.index[pos],
            )
        if isinstance(rows, slice):
            return frame.take(range(*rows.indices(len(frame))))
        return frame.take([int(i) for i in rows])


def _normalize_dtype_filter(spec) -> Optional[set]:
    if spec is None:
        return None
    if isinstance(spec, (str, type)):
        spec = [spec]
    out = set()
    for item in spec:
        if item in ("number", "numeric", int, float):
            out.update(("int64", "float64"))
        elif item in ("object", str, "category"):
            out.add("object")
        elif item in ("bool", bool):
            out.add("bool")
        elif item in ("int64", "float64"):
            out.add(item)
        else:
            raise TypeError(f"unsupported dtype filter: {item!r}")
    return out
