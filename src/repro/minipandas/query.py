"""``DataFrame.query`` — filter rows with a boolean expression string.

Implements the subset of pandas' query language that data-preparation
scripts use: column names, comparisons (including chained ones),
``and``/``or``/``not`` (plus ``&``/``|``/``~``), arithmetic, ``in``
membership, parentheses, and ``@variable`` references resolved against a
caller-supplied mapping.  Expressions are parsed with :mod:`ast` and
evaluated against Series operations — no ``eval`` of arbitrary code.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Optional

from .series import Series

__all__ = ["evaluate_query"]

_ALLOWED_CALLS = {"abs"}


class _QueryEvaluator(ast.NodeVisitor):
    def __init__(self, frame, variables: Dict[str, Any]):
        self._frame = frame
        self._variables = variables

    # -- leaves -----------------------------------------------------------
    def visit_Name(self, node: ast.Name):
        if node.id in self._frame.columns:
            return self._frame[node.id]
        if node.id in ("True", "False", "None"):  # pragma: no cover - py<3.8
            return {"True": True, "False": False, "None": None}[node.id]
        raise ValueError(f"unknown column {node.id!r} in query")

    def visit_Constant(self, node: ast.Constant):
        return node.value

    def visit_List(self, node: ast.List):
        return [self.visit(e) for e in node.elts]

    def visit_Tuple(self, node: ast.Tuple):
        return [self.visit(e) for e in node.elts]

    # -- @variables ---------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute):
        raise ValueError("attribute access is not allowed in query expressions")

    def _resolve_at(self, name: str):
        if name not in self._variables:
            raise ValueError(f"undefined query variable @{name}")
        return self._variables[name]

    # -- operators ----------------------------------------------------------
    def visit_Compare(self, node: ast.Compare):
        result = None
        left = self.visit(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.visit(comparator)
            part = self._compare(left, op, right)
            result = part if result is None else result & part
            left = right
        return result

    def _compare(self, left, op, right):
        if isinstance(op, ast.Eq):
            return left == right
        if isinstance(op, ast.NotEq):
            return left != right
        if isinstance(op, ast.Lt):
            return left < right
        if isinstance(op, ast.LtE):
            return left <= right
        if isinstance(op, ast.Gt):
            return left > right
        if isinstance(op, ast.GtE):
            return left >= right
        if isinstance(op, ast.In):
            if not isinstance(left, Series):
                raise ValueError("'in' requires a column on the left")
            return left.isin(right)
        if isinstance(op, ast.NotIn):
            if not isinstance(left, Series):
                raise ValueError("'not in' requires a column on the left")
            return ~left.isin(right)
        raise ValueError(f"unsupported comparison: {type(op).__name__}")

    def visit_BoolOp(self, node: ast.BoolOp):
        values = [self.visit(v) for v in node.values]
        result = values[0]
        for value in values[1:]:
            result = (result & value) if isinstance(node.op, ast.And) else (result | value)
        return result

    def visit_BinOp(self, node: ast.BinOp):
        left, right = self.visit(node.left), self.visit(node.right)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Div):
            return left / right
        if isinstance(node.op, ast.Mod):
            return left % right
        if isinstance(node.op, ast.Pow):
            return left ** right
        if isinstance(node.op, ast.BitAnd):
            return left & right
        if isinstance(node.op, ast.BitOr):
            return left | right
        raise ValueError(f"unsupported operator: {type(node.op).__name__}")

    def visit_UnaryOp(self, node: ast.UnaryOp):
        operand = self.visit(node.operand)
        if isinstance(node.op, (ast.Not, ast.Invert)):
            return ~operand if isinstance(operand, Series) else not operand
        if isinstance(node.op, ast.USub):
            return -operand
        raise ValueError(f"unsupported unary operator: {type(node.op).__name__}")

    def visit_Call(self, node: ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _ALLOWED_CALLS:
            args = [self.visit(a) for a in node.args]
            if node.func.id == "abs":
                value = args[0]
                return value.abs() if isinstance(value, Series) else abs(value)
        raise ValueError("only abs() calls are allowed in query expressions")

    def generic_visit(self, node):
        raise ValueError(
            f"unsupported syntax in query expression: {type(node).__name__}"
        )

    def visit(self, node):  # dispatch without falling into generic iteration
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is None:
            return self.generic_visit(node)
        return method(node)


def _substitute_at_variables(expression: str) -> str:
    """Rewrite ``@name`` into a resolvable marker (``__at_name``)."""
    return expression.replace("@", "__at_")


def evaluate_query(
    frame, expression: str, variables: Optional[Dict[str, Any]] = None
):
    """Evaluate a query *expression* against *frame*, returning a mask."""
    variables = variables or {}
    rewritten = _substitute_at_variables(expression)
    try:
        tree = ast.parse(rewritten, mode="eval")
    except SyntaxError as exc:
        raise ValueError(f"invalid query expression: {expression!r}") from exc

    class _WithAt(_QueryEvaluator):
        def visit_Name(self, node: ast.Name):
            if node.id.startswith("__at_"):
                return self._resolve_at(node.id[len("__at_"):])
            return super().visit_Name(node)

    mask = _WithAt(frame, variables).visit(tree.body)
    if not isinstance(mask, Series) or mask.dtype != "bool":
        raise ValueError("query expression must evaluate to a boolean mask")
    return mask
