"""Module-level table operations: ``get_dummies``, ``concat``, ``merge``,
``cut``, ``qcut``, ``to_numeric``, ``melt``, ``pivot_table``.

These are the free functions the corpus scripts call as ``pd.<name>(...)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import kernels
from ._missing import NA, is_missing
from .frame import DataFrame
from .series import Series, _coerce_scalar

__all__ = [
    "get_dummies",
    "concat",
    "merge",
    "cut",
    "qcut",
    "to_numeric",
    "melt",
    "pivot_table",
    "isnull",
    "isna",
    "notnull",
    "unique",
]


def get_dummies(
    data: Union[DataFrame, Series],
    columns: Optional[Sequence[str]] = None,
    prefix: Optional[Union[str, Dict[str, str]]] = None,
    prefix_sep: str = "_",
    drop_first: bool = False,
    dtype=int,
) -> DataFrame:
    """One-hot encode categorical columns (object/bool dtype by default)."""
    if isinstance(data, Series):
        name = data.name or ""
        frame = DataFrame({name: data.tolist()}, index=data.index.tolist())
        return get_dummies(
            frame, columns=[name], prefix=prefix, prefix_sep=prefix_sep,
            drop_first=drop_first, dtype=dtype,
        )

    if columns is None:
        encode = [c for c in data.columns if data[c].dtype in ("object", "bool")]
    else:
        for c in columns:
            if c not in data.columns:
                raise KeyError(f"column {c!r} not found")
        encode = list(columns)

    zero = _coerce_scalar(dtype(0))
    one = _coerce_scalar(dtype(1))
    n = len(data)
    out: Dict[str, Series] = {}
    for col in data.columns:
        if col not in encode:
            # passthrough columns keep their payloads; colliding names are
            # de-duplicated deterministically in insertion order (first
            # occupant keeps the bare name) instead of silently overwriting
            name = kernels.fresh_name(col, out)
            out[name] = data[col]._share(name=name)
            continue
        series = data[col]
        categories = _dummy_categories(series, drop_first)
        if isinstance(prefix, dict):
            col_prefix = prefix.get(col, col)
        elif isinstance(prefix, str):
            col_prefix = prefix
        else:
            col_prefix = col
        # one-pass bucket kernel: each cell flips a single 1 in its
        # category's column instead of comparing against every category
        buckets: Dict[Any, List[Any]] = {}
        for category in categories:
            name = kernels.fresh_name(f"{col_prefix}{prefix_sep}{category}", out)
            column = [zero] * n
            buckets[kernels.na_key(category)] = column
            out[name] = Series._from_payload(column, data.index, name)
        for pos, v in enumerate(series._values):
            if is_missing(v):
                continue
            column = buckets.get(kernels.na_key(v))
            if column is not None:
                column[pos] = one
    result = DataFrame._from_data(list(out.keys()), out, data.index)
    if kernels._AUDIT:
        kernels.audit(
            "get_dummies",
            result,
            lambda: _naive_module().get_dummies_frame(
                data, encode, prefix, prefix_sep, drop_first, dtype
            ),
        )
    return result


def _dummy_categories(series: Series, drop_first: bool) -> List[Any]:
    """Distinct non-missing values in the established sort order.

    Keyed through :func:`kernels.na_key` so a column holding unhashable
    cells yields repr-grouped categories instead of raising ``TypeError``
    mid-search; equality semantics for hashable values are unchanged
    (``1``/``True``/``1.0`` still collapse, like the old ``set``).
    """
    distinct: Dict[Any, Any] = {}
    for v in series._values:
        if not is_missing(v):
            distinct.setdefault(kernels.na_key(v), v)
    categories = sorted(distinct.values(), key=lambda v: (str(type(v)), str(v)))
    return categories[1:] if drop_first else categories


def _naive_module():
    from . import _naive as module

    return module


def concat(
    objs: Sequence[Union[DataFrame, Series]],
    axis: int = 0,
    ignore_index: bool = False,
) -> DataFrame:
    """Stack frames vertically (axis=0) or side by side (axis=1)."""
    objs = [
        DataFrame({o.name or str(pos): o.tolist()}, index=o.index.tolist())
        if isinstance(o, Series)
        else o
        for pos, o in enumerate(objs)
    ]
    if not objs:
        raise ValueError("no objects to concatenate")

    if axis == 1:
        n = len(objs[0])
        data: Dict[str, List[Any]] = {}
        for frame in objs:
            if len(frame) != n:
                raise ValueError("axis=1 concat requires equal-length frames")
            for col in frame.columns:
                name = col
                suffix = 1
                while name in data:
                    name = f"{col}_{suffix}"
                    suffix += 1
                data[name] = frame[col].tolist()
        return DataFrame(data, index=objs[0].index.tolist())

    all_columns: List[str] = []
    for frame in objs:
        for col in frame.columns:
            if col not in all_columns:
                all_columns.append(col)
    data = {col: [] for col in all_columns}
    labels: List[Any] = []
    for frame in objs:
        for col in all_columns:
            if col in frame.columns:
                data[col].extend(frame[col].tolist())
            else:
                data[col].extend([NA] * len(frame))
        labels.extend(frame.index.tolist())
    index = None if ignore_index else labels
    return DataFrame(data, index=index)


def merge(
    left: DataFrame,
    right: DataFrame,
    on: Optional[Union[str, Sequence[str]]] = None,
    how: str = "inner",
    left_on: Optional[str] = None,
    right_on: Optional[str] = None,
    suffixes: Tuple[str, str] = ("_x", "_y"),
) -> DataFrame:
    """Database-style join of two frames on key column(s)."""
    if on is not None:
        left_keys = [on] if isinstance(on, str) else list(on)
        right_keys = list(left_keys)
    elif left_on is not None and right_on is not None:
        left_keys, right_keys = [left_on], [right_on]
    else:
        shared = [c for c in left.columns if c in right.columns]
        if not shared:
            raise ValueError("no common columns to merge on")
        left_keys = right_keys = shared

    for key in left_keys:
        if key not in left.columns:
            raise KeyError(f"left key {key!r} not found")
    for key in right_keys:
        if key not in right.columns:
            raise KeyError(f"right key {key!r} not found")

    right_index: Dict[tuple, List[int]] = {}
    for pos in range(len(right)):
        key = tuple(right[k].iloc[pos] for k in right_keys)
        if any(is_missing(v) for v in key):
            continue
        right_index.setdefault(key, []).append(pos)

    left_value_cols = [c for c in left.columns]
    right_value_cols = [c for c in right.columns if c not in set(right_keys) or right_keys != left_keys]
    if right_keys == left_keys:
        right_value_cols = [c for c in right.columns if c not in set(right_keys)]

    def out_name(col: str, side: int) -> str:
        other = right.columns if side == 0 else left.columns
        keys = right_keys if side == 0 else left_keys
        if col in other and col not in keys:
            return col + suffixes[side]
        return col

    data: Dict[str, List[Any]] = {out_name(c, 0): [] for c in left_value_cols}
    for c in right_value_cols:
        data[out_name(c, 1)] = []

    matched_right: set = set()
    for lpos in range(len(left)):
        key = tuple(left[k].iloc[lpos] for k in left_keys)
        matches = right_index.get(key, []) if not any(is_missing(v) for v in key) else []
        if matches:
            matched_right.update(matches)
            for rpos in matches:
                for c in left_value_cols:
                    data[out_name(c, 0)].append(left[c].iloc[lpos])
                for c in right_value_cols:
                    data[out_name(c, 1)].append(right[c].iloc[rpos])
        elif how in ("left", "outer"):
            for c in left_value_cols:
                data[out_name(c, 0)].append(left[c].iloc[lpos])
            for c in right_value_cols:
                data[out_name(c, 1)].append(NA)

    if how in ("right", "outer"):
        for rpos in range(len(right)):
            if rpos in matched_right:
                continue
            for c in left_value_cols:
                if c in left_keys:
                    key_pos = left_keys.index(c)
                    data[out_name(c, 0)].append(right[right_keys[key_pos]].iloc[rpos])
                else:
                    data[out_name(c, 0)].append(NA)
            for c in right_value_cols:
                data[out_name(c, 1)].append(right[c].iloc[rpos])

    return DataFrame(data)


def cut(series: Series, bins: Union[int, Sequence[float]], labels=None) -> Series:
    """Bin numeric values into discrete intervals."""
    values = series.tolist()
    numeric = [float(v) for v in values if not is_missing(v)]
    if isinstance(bins, int):
        if not numeric:
            return Series([NA] * len(values), index=series.index.tolist(), name=series.name)
        lo, hi = min(numeric), max(numeric)
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        edges = np.linspace(lo, hi, bins + 1).tolist()
        edges[0] -= abs(hi - lo) * 1e-3
    else:
        edges = [float(b) for b in bins]

    out = []
    for v in values:
        if is_missing(v):
            out.append(NA)
            continue
        placed = False
        for b in range(len(edges) - 1):
            if edges[b] < float(v) <= edges[b + 1]:
                out.append(
                    labels[b] if labels is not None else f"({edges[b]:g}, {edges[b + 1]:g}]"
                )
                placed = True
                break
        if not placed:
            out.append(NA)
    return Series(out, index=series.index.tolist(), name=series.name)


def qcut(series: Series, q: int, labels=None) -> Series:
    """Quantile-based binning."""
    numeric = sorted(float(v) for v in series if not is_missing(v))
    if not numeric:
        return Series([NA] * len(series), index=series.index.tolist(), name=series.name)
    edges = [float(np.quantile(numeric, i / q)) for i in range(q + 1)]
    # collapse duplicate edges to keep bins well-formed
    unique_edges = [edges[0] - 1e-9]
    for e in edges[1:]:
        if e > unique_edges[-1]:
            unique_edges.append(e)
    return cut(series, unique_edges, labels=labels[: len(unique_edges) - 1] if labels else None)


def to_numeric(series: Series, errors: str = "raise") -> Series:
    """Convert values to floats; errors='coerce' maps failures to NaN."""
    out = []
    for v in series:
        if is_missing(v):
            out.append(NA)
            continue
        try:
            as_float = float(v)
            out.append(int(as_float) if isinstance(v, (int, np.integer)) else as_float)
        except (TypeError, ValueError):
            if errors == "coerce":
                out.append(NA)
            else:
                raise ValueError(f"unable to parse {v!r} as numeric") from None
    return Series(out, index=series.index.tolist(), name=series.name)


def melt(
    frame: DataFrame,
    id_vars: Optional[Sequence[str]] = None,
    value_vars: Optional[Sequence[str]] = None,
    var_name: str = "variable",
    value_name: str = "value",
) -> DataFrame:
    """Unpivot from wide to long format."""
    id_vars = list(id_vars) if id_vars is not None else []
    if value_vars is None:
        value_vars = [c for c in frame.columns if c not in id_vars]
    data: Dict[str, List[Any]] = {c: [] for c in id_vars}
    data[var_name] = []
    data[value_name] = []
    for var in value_vars:
        for pos in range(len(frame)):
            for c in id_vars:
                data[c].append(frame[c].iloc[pos])
            data[var_name].append(var)
            data[value_name].append(frame[var].iloc[pos])
    return DataFrame(data)


def pivot_table(
    frame: DataFrame,
    values: str,
    index: str,
    columns: str,
    aggfunc: str = "mean",
) -> DataFrame:
    """Spread a long table into a wide one with one aggregate per cell."""
    row_keys = sorted({v for v in frame[index] if not is_missing(v)}, key=repr)
    col_keys = sorted({v for v in frame[columns] if not is_missing(v)}, key=repr)
    cells: Dict[tuple, List[float]] = {}
    for pos in range(len(frame)):
        r, c, v = frame[index].iloc[pos], frame[columns].iloc[pos], frame[values].iloc[pos]
        if is_missing(r) or is_missing(c) or is_missing(v):
            continue
        cells.setdefault((r, c), []).append(float(v))

    def aggregate(bucket: List[float]):
        if not bucket:
            return NA
        if aggfunc == "mean":
            return float(np.mean(bucket))
        if aggfunc == "sum":
            return float(np.sum(bucket))
        if aggfunc == "count":
            return len(bucket)
        if aggfunc == "median":
            return float(np.median(bucket))
        raise ValueError(f"unsupported aggfunc: {aggfunc!r}")

    data = {
        str(ck): [aggregate(cells.get((rk, ck), [])) for rk in row_keys]
        for ck in col_keys
    }
    return DataFrame(data, index=row_keys)


def isnull(obj):
    """Module-level null check over a Series/DataFrame/scalar."""
    if isinstance(obj, (Series, DataFrame)):
        return obj.isnull()
    return is_missing(obj)


isna = isnull


def notnull(obj):
    if isinstance(obj, (Series, DataFrame)):
        return obj.notnull()
    return not is_missing(obj)


def unique(series: Series) -> List[Any]:
    return series.unique()
