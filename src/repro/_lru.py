"""A tiny LRU cache with hit/miss accounting.

Several hot paths keep bounded memo tables — the sandbox's parsed-CSV
cache, the beam search's execution/statement memos, and the incremental
executor's namespace snapshots.  They all share this one implementation so
eviction is true LRU (lookups refresh recency) and hit rates are
observable by :class:`repro.core.beam.SearchStats`.

Caches shared across threads (the server engine's warm registry, the
process-wide corpus cache) construct with ``thread_safe=True``, which
guards every mutating operation with an :class:`threading.RLock`.  The
default stays lock-free: the hot single-threaded paths (beam memos,
snapshot pools) pay nothing for the option.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, List, Optional

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    A ``capacity`` of 0 disables storage entirely (every lookup misses),
    which callers use as an off switch without branching at every site.
    """

    def __init__(self, capacity: int, thread_safe: bool = False):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock: Optional[threading.RLock] = (
            threading.RLock() if thread_safe else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------- mapping api
    def get(self, key: Hashable, default: Any = None) -> Any:
        if self._lock is not None:
            with self._lock:
                return self._get(key, default)
        return self._get(key, default)

    def _get(self, key: Hashable, default: Any) -> Any:
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Lookup without touching recency or hit/miss counters."""
        if self._lock is not None:
            with self._lock:
                return self._entries.get(key, default)
        return self._entries.get(key, default)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        if self._lock is not None:
            with self._lock:
                self._set(key, value)
            return
        self._set(key, value)

    def _set(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def keys(self) -> List[Hashable]:
        """A stable list of keys (LRU to MRU) — safe to iterate while
        other threads mutate a thread-safe cache."""
        if self._lock is not None:
            with self._lock:
                return list(self._entries)
        return list(self._entries)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        if self._lock is not None:
            with self._lock:
                return self._entries.pop(key, default)
        return self._entries.pop(key, default)

    def clear(self) -> None:
        if self._lock is not None:
            with self._lock:
                self._entries.clear()
            return
        self._entries.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity in place, evicting LRU entries if shrinking.

        Shared eviction discipline for caches whose bound is configurable
        after construction (e.g. the worker-resident caches sized by
        ``LSConfig``): both sides of a parent/worker mirror call this with
        the same capacity before the same operation sequence, so their
        eviction decisions stay in lockstep.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if self._lock is not None:
            with self._lock:
                self._resize(capacity)
            return
        self._resize(capacity)

    def _resize(self, capacity: int) -> None:
        self.capacity = capacity
        if capacity == 0:
            if self._entries:
                self.evictions += len(self._entries)
                self._entries.clear()
            return
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------- accounting
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
        }
