"""A Sourcery-style code cleaner (Section 6.1.1, "Sourcery").

Sourcery improves *syntax* quality: formatting, idioms, dead code.  It
never changes which data-preparation operations a script performs, so its
output is semantically — and after lemmatization, representationally —
identical to the input.  This is why the paper measures 0.0% RE
improvement for it on every dataset (Table 5).

The cleaner here performs real syntactic work: canonical quoting and
spacing via the AST round-trip, duplicate-import removal, dead-assignment
elimination for names that are written twice with no intervening read, and
constant folding of trivial arithmetic.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from .base import Baseline

__all__ = ["SyntaxCleaner"]


class SyntaxCleaner(Baseline):
    """Syntax-level cleanup that preserves the operation sequence."""

    name = "Sourcery"

    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        try:
            tree = ast.parse(script)
        except SyntaxError:
            return script
        statements = self._dedupe_imports(tree.body)
        statements = [self._fold_constants(node) for node in statements]
        return "\n".join(ast.unparse(node) for node in statements)

    # ------------------------------------------------------------- passes
    @staticmethod
    def _dedupe_imports(body: List[ast.stmt]) -> List[ast.stmt]:
        seen: Set[str] = set()
        out: List[ast.stmt] = []
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                key = ast.unparse(node)
                if key in seen:
                    continue
                seen.add(key)
            out.append(node)
        return out

    @staticmethod
    def _fold_constants(node: ast.stmt) -> ast.stmt:
        class Folder(ast.NodeTransformer):
            def visit_BinOp(self, binop: ast.BinOp):
                self.generic_visit(binop)
                if isinstance(binop.left, ast.Constant) and isinstance(
                    binop.right, ast.Constant
                ):
                    left, right = binop.left.value, binop.right.value
                    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
                        try:
                            if isinstance(binop.op, ast.Add):
                                return ast.copy_location(ast.Constant(left + right), binop)
                            if isinstance(binop.op, ast.Sub):
                                return ast.copy_location(ast.Constant(left - right), binop)
                            if isinstance(binop.op, ast.Mult):
                                return ast.copy_location(ast.Constant(left * right), binop)
                        except Exception:  # pragma: no cover - defensive
                            return binop
                return binop

        folded = Folder().visit(node)
        ast.fix_missing_locations(folded)
        return folded
