"""An Auto-Tables-style multi-step relationalizer (Section 6.1.1).

Auto-Tables [Li et al., SIGMOD Rec. '24] synthesizes a *sequence* of
table-reshaping operators (transpose, melt/unpivot, pivot, ...) that turn
a non-relational table into relational form, without examples.  Like
Auto-Suggest it only reshapes structure; it never performs feature
engineering or cleaning, so the paper measures 0.0% improvement on the
evaluation corpora.

Here: a greedy depth-bounded search over the same operator set, guided by
a relationality score; on an already-relational table the empty program
wins and the script is returned unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..minipandas import DataFrame
from ..minipandas.ops import melt
from ..sandbox import run_script
from .base import Baseline
from .table_features import featurize_table

__all__ = ["AutoTables", "relationality_score", "synthesize_reshape_program"]

#: operator name -> (table transform, pandas source line)
_OPERATORS: dict = {
    "transpose": (lambda f: f.T, "df = df.T"),
    "melt": (lambda f: melt(f), "df = pd.melt(df)"),
}

_MAX_DEPTH = 3


def relationality_score(frame: DataFrame) -> float:
    """How relational does *frame* look?  Higher is better.

    Rewards entity-per-row shape (more rows than columns, header names
    that are labels rather than data values) and penalizes the wide
    matrix shapes Auto-Tables exists to fix.
    """
    features = featurize_table(frame)
    score = 0.0
    if not features.wide:
        score += 1.0
    score += 1.0 - features.yearlike_column_fraction
    score += 1.0 - features.numeric_name_fraction
    if features.n_rows >= features.n_cols:
        score += 1.0
    return score


def synthesize_reshape_program(
    frame: DataFrame, max_depth: int = _MAX_DEPTH
) -> List[str]:
    """Greedy multi-step reshape synthesis; [] when no step helps."""
    program: List[str] = []
    current = frame
    current_score = relationality_score(current)
    for _ in range(max_depth):
        best: Optional[Tuple[float, str, DataFrame]] = None
        for name, (transform, source) in _OPERATORS.items():
            try:
                candidate = transform(current)
            except Exception:
                continue
            score = relationality_score(candidate)
            if best is None or score > best[0]:
                best = (score, source, candidate)
        if best is None or best[0] <= current_score + 1e-9:
            break
        current_score, source, current = best
        program.append(source)
    return program


class AutoTables(Baseline):
    """Multi-step structural transformation appended to the script."""

    name = "Auto-Tables"

    def __init__(self, data_dir: Optional[str] = None):
        self.data_dir = data_dir

    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        frame = self._load_input_table(script)
        if frame is None:
            return script
        program = synthesize_reshape_program(frame)
        if not program:
            return script
        return script + "\n" + "\n".join(program)

    def _load_input_table(self, script: str) -> Optional[DataFrame]:
        lines = [
            line
            for line in script.splitlines()
            if line.strip().startswith(("import ", "from "))
            or "read_csv" in line
        ]
        if not lines:
            return None
        result = run_script("\n".join(lines), data_dir=self.data_dir, sample_rows=500)
        return result.output if result.ok else None
