"""Common interface for the competing methods of Section 6.1.1."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["Baseline", "BaselineResult"]


@dataclass
class BaselineResult:
    """A baseline's rewrite of one input script."""

    method: str
    input_script: str
    output_script: str

    @property
    def changed(self) -> bool:
        return self.output_script != self.input_script


class Baseline(ABC):
    """A competing script-rewriting method.

    Unlike LucidScript, baselines receive no execution or user-intent
    oracle — mirroring how the paper ran them (Sourcery and the GPT models
    emit code without constraint checking; Auto-Suggest/Auto-Tables operate
    on the table, not the script semantics).
    """

    name: str = "baseline"

    @abstractmethod
    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        """Return the method's version of *script* given corpus access."""

    def run(self, script: str, corpus: Sequence[str]) -> BaselineResult:
        return BaselineResult(
            method=self.name,
            input_script=script,
            output_script=self.rewrite(script, corpus),
        )
