"""An Auto-Suggest-style single-step recommender (Section 6.1.1).

Auto-Suggest [Yan & He, SIGMOD'20] learns to recommend the *next* data
preparation operator for an input table from table characteristics.  Its
operator catalogue is table-structural (pivot, unpivot/melt, transpose,
...), so on corpora dominated by feature engineering and cleaning it finds
nothing applicable — the paper measures 0.0% improvement for it.

This reimplementation keeps that contract: a rule model over
:mod:`table_features` predicts one structural operator (or None), and the
rewrite appends the corresponding pandas line when a prediction fires.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..minipandas import DataFrame
from ..sandbox import run_script
from .base import Baseline
from .table_features import TableFeatures, featurize_table

__all__ = ["AutoSuggest", "predict_next_operator"]

#: The structural operator catalogue and its pandas realization.
OPERATOR_TEMPLATES = {
    "transpose": "df = df.T",
    "melt": "df = pd.melt(df)",
    "pivot": "df = pd.pivot_table(df, values={values!r}, index={index!r}, columns={columns!r})",
}


def predict_next_operator(features: TableFeatures) -> Optional[str]:
    """Predict the single most likely next structural operator.

    Mirrors the published system's decision structure: melt for
    year-in-header wide tables, transpose for attribute-per-row tables,
    pivot for long key/value logs — and *no suggestion* for tables that
    already look relational.
    """
    if features.has_duplicate_keys and features.n_cols <= 4:
        return "pivot"
    if features.looks_relational:
        return None
    if features.yearlike_column_fraction >= 0.3 or features.numeric_name_fraction >= 0.3:
        return "melt"
    if features.wide and features.n_rows < features.n_cols:
        return "transpose"
    return None


class AutoSuggest(Baseline):
    """Single-step structural recommendation appended to the script.

    ``learned=True`` swaps the rule model for the trained
    :class:`~repro.baselines.auto_suggest_model.NextOperatorModel`,
    matching the published system's learning-to-recommend design.
    """

    name = "Auto-Suggest"

    def __init__(self, data_dir: Optional[str] = None, learned: bool = False):
        self.data_dir = data_dir
        self.learned = learned

    def _predict(self, frame: DataFrame) -> Optional[str]:
        if self.learned:
            from .auto_suggest_model import default_model

            return default_model().predict(frame)
        return predict_next_operator(featurize_table(frame))

    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        frame = self._load_input_table(script)
        if frame is None:
            return script
        operator = self._predict(frame)
        if operator is None:
            return script
        template = OPERATOR_TEMPLATES[operator]
        if operator == "pivot":
            object_cols = [c for c in frame.columns if frame[c].dtype == "object"]
            numeric_cols = [
                c for c in frame.columns if frame[c].dtype in ("int64", "float64")
            ]
            if len(object_cols) < 2 or not numeric_cols:
                return script
            template = template.format(
                values=numeric_cols[0], index=object_cols[0], columns=object_cols[1]
            )
        return script + "\n" + template

    def _load_input_table(self, script: str) -> Optional[DataFrame]:
        """Auto-Suggest conditions on D_IN: run just the load prefix."""
        lines = [
            line
            for line in script.splitlines()
            if line.strip().startswith(("import ", "from "))
            or "read_csv" in line
        ]
        if not lines:
            return None
        result = run_script("\n".join(lines), data_dir=self.data_dir, sample_rows=500)
        return result.output if result.ok else None
