"""repro.baselines — the competing methods of Section 6.1.1.

Behaviour-faithful offline implementations: a Sourcery-style syntax
cleaner, simulated GPT-3.5/GPT-4 rewriters, and Auto-Suggest /
Auto-Tables structural recommenders.  See DESIGN.md for the substitution
rationale for each.
"""

from .auto_suggest import AutoSuggest, predict_next_operator
from .auto_suggest_model import (
    NextOperatorModel,
    generate_training_tables,
)
from .auto_tables import AutoTables, relationality_score, synthesize_reshape_program
from .base import Baseline, BaselineResult
from .learn2clean import Learn2Clean, Learn2CleanAgent, QualityState
from .llm import LLMProfile, SimulatedLLM, gpt35, gpt4
from .syntax_cleaner import SyntaxCleaner
from .table_features import TableFeatures, featurize_table

__all__ = [
    "AutoSuggest",
    "AutoTables",
    "Baseline",
    "BaselineResult",
    "LLMProfile",
    "Learn2Clean",
    "Learn2CleanAgent",
    "NextOperatorModel",
    "QualityState",
    "SimulatedLLM",
    "SyntaxCleaner",
    "TableFeatures",
    "featurize_table",
    "generate_training_tables",
    "gpt35",
    "gpt4",
    "predict_next_operator",
    "relationality_score",
    "synthesize_reshape_program",
]
