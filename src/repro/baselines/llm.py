"""Simulated GPT-3.5 / GPT-4 baselines (Section 6.1.1-6.1.2).

The real GPT baselines are network services; this offline simulation
reproduces their *observed* behaviour on the script-standardization task
(Table 5): near-zero median improvement, a positive tail when the model
happens to imitate the prompt's corpus scripts well, and a heavy negative
tail when it rewrites steps into equivalent-but-nonstandard code (the
paper observed down to -129%).

Mechanism, mirroring the paper's best surveyed prompt ("here are 4 corpus
scripts; improve the user script"):

* with some probability the model judges the script fine and returns it
  (normalized) unchanged — GPT-4 does this more often;
* otherwise it keeps most user steps, occasionally *rephrasing* one into
  equivalent code the corpus never uses, or dropping one;
* it copies a few steps from its 4-script prompt window, inserting each
  right after a line it followed in the prompt (LLMs are good at local
  imitation) — these are the corpus-aligned, improvement-positive edits;
* it sprinkles in "internet-popular" generic steps the corpus does not
  use (improvement-negative);
* it never checks the execution or user-intent constraints.

GPT-4 differs from GPT-3.5 only in its mix: more no-ops, fewer
rephrasings, more prompt imitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..lang import ScriptError, lemmatize
from .base import Baseline

__all__ = ["SimulatedLLM", "LLMProfile", "gpt35", "gpt4"]

#: Steps popular in global training data but absent from our corpora.
_GENERIC_STEPS = (
    "df = df.dropna()",
    "df = df.reset_index(drop=True)",
    "df = df.drop_duplicates()",
    "df = df.fillna(0)",
)

#: Rephrasing templates: semantically close, representationally different.
_REPHRASE_SUFFIXES = (
    ".copy()",
    ".reset_index(drop=True)",
)


@dataclass(frozen=True)
class LLMProfile:
    """Behavioural mix of one model generation."""

    label: str
    noop_probability: float
    keep_probability: float
    rephrase_probability: float
    prompt_copy_rate: float
    generic_rate: float
    prompt_scripts: int = 4


_GPT35 = LLMProfile(
    label="GPT-3.5",
    noop_probability=0.25,
    keep_probability=0.95,
    rephrase_probability=0.06,
    prompt_copy_rate=1.0,
    generic_rate=0.3,
)
_GPT4 = LLMProfile(
    label="GPT-4",
    noop_probability=0.35,
    keep_probability=0.98,
    rephrase_probability=0.02,
    prompt_copy_rate=1.5,
    generic_rate=0.12,
)


def _is_protected(line: str) -> bool:
    stripped = line.strip()
    return (
        stripped.startswith("import ")
        or stripped.startswith("from ")
        or "read_csv" in stripped
    )


def _is_tail(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("y =") or stripped.startswith("X =")


class SimulatedLLM(Baseline):
    """An offline stand-in for a GPT-class code rewriter."""

    def __init__(self, profile: LLMProfile, seed: int = 0):
        self.profile = profile
        self.name = profile.label
        self._rng = np.random.default_rng(seed)

    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        rng = self._rng
        try:
            normalized = lemmatize(script)
        except ScriptError:
            return script
        if rng.random() < self.profile.noop_probability:
            return normalized
        lines = normalized.splitlines()

        follows = self._prompt_orderings(corpus, rng)
        existing = set(lines)

        body: List[str] = []
        tail: List[str] = []
        for line in lines:
            if _is_tail(line):
                tail.append(line)
                continue
            if _is_protected(line):
                body.append(line)
                continue
            if rng.random() > self.profile.keep_probability:
                continue  # dropped a user step
            if rng.random() < self.profile.rephrase_probability:
                body.append(self._rephrase(line, rng))
            else:
                body.append(line)

        body = self._imitate_prompt(body, follows, existing, rng)

        n_generic = int(rng.poisson(self.profile.generic_rate))
        generic = [s for s in _GENERIC_STEPS if s not in existing]
        rng.shuffle(generic)
        body.extend(generic[:n_generic])

        return "\n".join(body + tail)

    # ------------------------------------------------------------- internals
    def _prompt_orderings(
        self, corpus: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[str]]:
        """line -> lines observed to directly follow it in the prompt window."""
        follows: Dict[str, List[str]] = {}
        if not corpus:
            return follows
        n = min(self.profile.prompt_scripts, len(corpus))
        picks = rng.choice(len(corpus), size=n, replace=False)
        for pick in picks:
            try:
                normalized = lemmatize(corpus[int(pick)])
            except ScriptError:
                continue
            prompt_lines = [
                line for line in normalized.splitlines() if not _is_tail(line)
            ]
            for previous, current in zip(prompt_lines, prompt_lines[1:]):
                if _is_protected(current):
                    continue
                follows.setdefault(previous, []).append(current)
        return follows

    def _imitate_prompt(
        self,
        body: List[str],
        follows: Dict[str, List[str]],
        existing: set,
        rng: np.random.Generator,
    ) -> List[str]:
        """Insert prompt steps after lines they followed in the prompt."""
        n_copies = int(rng.poisson(self.profile.prompt_copy_rate))
        out = list(body)
        for _ in range(n_copies):
            positions = list(range(len(out)))
            rng.shuffle(positions)
            inserted = False
            for pos in positions:
                successors = [
                    s
                    for s in follows.get(out[pos], [])
                    if s not in existing and s not in out
                ]
                if successors:
                    step = successors[int(rng.integers(0, len(successors)))]
                    out.insert(pos + 1, step)
                    inserted = True
                    break
            if not inserted:
                break
        return out

    @staticmethod
    def _rephrase(line: str, rng: np.random.Generator) -> str:
        """Rewrite a step into equivalent-but-nonstandard code."""
        stripped = line.strip()
        suffix = _REPHRASE_SUFFIXES[int(rng.integers(0, len(_REPHRASE_SUFFIXES)))]
        if stripped.startswith("df = ") and stripped.endswith(")"):
            return stripped + suffix
        return stripped


def gpt35(seed: int = 0) -> SimulatedLLM:
    """The simulated GPT-3.5 baseline."""
    return SimulatedLLM(_GPT35, seed=seed)


def gpt4(seed: int = 0) -> SimulatedLLM:
    """The simulated GPT-4 baseline."""
    return SimulatedLLM(_GPT4, seed=seed)
