"""Table characterization shared by the Auto-Suggest/Auto-Tables baselines.

Both published systems decide among *structural* operators by inspecting
the shape of the input table (wide vs. long, header-like value rows,
column-name patterns).  These features drive their rule models here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ..minipandas import DataFrame, is_missing

__all__ = ["TableFeatures", "featurize_table"]

_YEARLIKE = re.compile(r"^(19|20)\d{2}$")


@dataclass(frozen=True)
class TableFeatures:
    """Structural signals of one table."""

    n_rows: int
    n_cols: int
    numeric_fraction: float
    yearlike_column_fraction: float
    wide: bool
    #: fraction of columns whose name parses as a number (melt signal)
    numeric_name_fraction: float
    #: does some key column combination repeat (pivot signal)?
    has_duplicate_keys: bool

    @property
    def looks_relational(self) -> bool:
        """True when the table already has entity-per-row shape."""
        return (
            not self.wide
            and self.yearlike_column_fraction < 0.3
            and self.numeric_name_fraction < 0.3
        )


def featurize_table(frame: DataFrame) -> TableFeatures:
    n_rows, n_cols = frame.shape
    numeric = sum(
        1 for c in frame.columns if frame[c].dtype in ("int64", "float64", "bool")
    )
    yearlike = sum(1 for c in frame.columns if _YEARLIKE.match(str(c)))
    numeric_names = sum(1 for c in frame.columns if _parses_as_number(str(c)))

    has_dupes = False
    if n_cols >= 2 and n_rows >= 2:
        key_cols = [c for c in frame.columns if frame[c].dtype == "object"][:2]
        if len(key_cols) == 2:
            seen = set()
            for pos in range(min(n_rows, 500)):
                key = (frame[key_cols[0]].iloc[pos], frame[key_cols[1]].iloc[pos])
                if key in seen:
                    has_dupes = True
                    break
                seen.add(key)

    return TableFeatures(
        n_rows=n_rows,
        n_cols=n_cols,
        numeric_fraction=numeric / n_cols if n_cols else 0.0,
        yearlike_column_fraction=yearlike / n_cols if n_cols else 0.0,
        wide=n_cols > 30 and n_cols > n_rows / 4,
        numeric_name_fraction=numeric_names / n_cols if n_cols else 0.0,
        has_duplicate_keys=has_dupes,
    )


def _parses_as_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
