"""A Learn2Clean-style reinforcement-learning pipeline optimizer.

Learn2Clean [Berti-Equille, WWW'19] — the multi-step system the paper's
related work contrasts against — uses Q-learning to pick the sequence of
preparation operators that maximizes a downstream model's performance.
It optimizes a *different objective* than LucidScript: accuracy rather
than standardness, with no corpus and no user script to preserve.

This offline reimplementation is faithful to that design:

* **state** — a discretized data-quality profile of the working table
  (missing values? duplicates? outliers? unencoded categoricals?);
* **actions** — a catalogue of preparation operators instantiated
  against the table's schema (imputation variants, dedup, 3σ outlier
  filtering, dummy encoding, plus *stop*);
* **reward** — the change in downstream holdout accuracy after applying
  the operator (evaluated with :func:`repro.ml.evaluate_downstream`);
* **policy** — tabular ε-greedy Q-learning over episodes on the actual
  dataset.

The learned pipeline can then be rendered as a pandas script, which is
how the :class:`Learn2Clean` baseline plugs into the standardization
harness — where, as the paper argues, accuracy-seeking pipelines are not
necessarily *standard* ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..minipandas import DataFrame, is_missing
from ..ml import DownstreamEvaluationError, evaluate_downstream
from .base import Baseline

__all__ = ["QualityState", "Action", "Learn2CleanAgent", "Learn2Clean"]

STOP = "stop"


@dataclass(frozen=True)
class QualityState:
    """Discretized quality profile of a working table (the RL state)."""

    has_missing: bool
    has_duplicates: bool
    has_outliers: bool
    has_categoricals: bool

    @classmethod
    def of(cls, frame: DataFrame, target: str) -> "QualityState":
        feature_cols = [c for c in frame.columns if c != target]
        has_missing = any(
            frame[c].isnull().any() for c in feature_cols
        )
        has_duplicates = bool(frame.duplicated().any()) if len(frame) else False
        has_outliers = False
        for c in feature_cols:
            series = frame[c]
            if series.dtype not in ("int64", "float64"):
                continue
            mean, std = series.mean(), series.std()
            if is_missing(std) or std == 0:
                continue
            if ((series - mean).abs() > 3 * std).any():
                has_outliers = True
                break
        has_categoricals = any(
            frame[c].dtype == "object" and frame[c].nunique() <= 20
            for c in feature_cols
        )
        return cls(has_missing, has_duplicates, has_outliers, has_categoricals)


@dataclass(frozen=True)
class Action:
    """One preparation operator: a table transform plus its script line."""

    name: str
    source: str
    transform: Callable[[DataFrame], DataFrame] = field(compare=False, hash=False)


def _catalogue(frame: DataFrame, target: str) -> List[Action]:
    """Instantiate the operator catalogue against a concrete schema."""
    from ..minipandas.ops import get_dummies

    numeric = [
        c for c in frame.columns
        if c != target and frame[c].dtype in ("int64", "float64")
    ]
    categorical = [
        c for c in frame.columns
        if c != target and frame[c].dtype == "object" and frame[c].nunique() <= 20
    ]
    actions = [
        Action("impute_mean", "df = df.fillna(df.mean())",
               lambda f: f.fillna(f.mean())),
        Action("impute_median", "df = df.fillna(df.median())",
               lambda f: f.fillna(f.median())),
        Action("drop_missing", "df = df.dropna()", lambda f: f.dropna()),
        Action("dedup", "df = df.drop_duplicates()", lambda f: f.drop_duplicates()),
    ]
    for col in numeric[:4]:
        def clip_outliers(f, col=col):
            series = f[col]
            mean, std = series.mean(), series.std()
            if is_missing(std) or std == 0:
                return f
            return f[(series - mean).abs() <= 3 * std]

        actions.append(
            Action(
                f"outliers_{col}",
                f"df = df[(df['{col}'] - df['{col}'].mean()).abs() "
                f"<= 3 * df['{col}'].std()]",
                clip_outliers,
            )
        )
    if categorical:
        actions.append(
            Action(
                "encode",
                f"df = pd.get_dummies(df, columns={sorted(categorical)!r})",
                lambda f: get_dummies(f, columns=categorical),
            )
        )
    return actions


class Learn2CleanAgent:
    """Tabular ε-greedy Q-learning over preparation pipelines."""

    def __init__(
        self,
        target: str,
        task: Optional[str] = None,
        max_steps: int = 4,
        n_episodes: int = 25,
        epsilon: float = 0.3,
        learning_rate: float = 0.5,
        discount: float = 0.9,
        random_state: int = 0,
    ):
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if n_episodes < 1:
            raise ValueError("n_episodes must be >= 1")
        self.target = target
        self.task = task
        self.max_steps = max_steps
        self.n_episodes = n_episodes
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.discount = discount
        self._rng = np.random.default_rng(random_state)
        self.q_table: Dict[Tuple[QualityState, str], float] = {}
        self._actions: List[Action] = []

    # ------------------------------------------------------------- internals
    def _accuracy(self, frame: DataFrame) -> float:
        try:
            return evaluate_downstream(
                frame, self.target, task=self.task, random_state=0
            ).accuracy
        except DownstreamEvaluationError:
            return 0.0

    def _action_names(self) -> List[str]:
        return [a.name for a in self._actions] + [STOP]

    def _q(self, state: QualityState, action: str) -> float:
        return self.q_table.get((state, action), 0.0)

    def _choose(self, state: QualityState, greedy: bool) -> str:
        names = self._action_names()
        if not greedy and self._rng.random() < self.epsilon:
            return names[int(self._rng.integers(0, len(names)))]
        return max(names, key=lambda a: self._q(state, a))

    def _apply(self, frame: DataFrame, action_name: str) -> DataFrame:
        for action in self._actions:
            if action.name == action_name:
                out = action.transform(frame)
                return out if len(out) >= 10 else frame  # refuse to empty the table
        return frame

    # ----------------------------------------------------------------- train
    def fit(self, frame: DataFrame) -> "Learn2CleanAgent":
        """Q-learn a cleaning policy on *frame*."""
        if self.target not in frame.columns:
            raise ValueError(f"target column {self.target!r} missing")
        self._actions = _catalogue(frame, self.target)
        for _ in range(self.n_episodes):
            working = frame
            accuracy = self._accuracy(working)
            for _step in range(self.max_steps):
                state = QualityState.of(working, self.target)
                action_name = self._choose(state, greedy=False)
                if action_name == STOP:
                    self._update(state, action_name, 0.0, None)
                    break
                candidate = self._apply(working, action_name)
                new_accuracy = self._accuracy(candidate)
                reward = new_accuracy - accuracy
                next_state = QualityState.of(candidate, self.target)
                self._update(state, action_name, reward, next_state)
                working, accuracy = candidate, new_accuracy
        return self

    def _update(
        self,
        state: QualityState,
        action: str,
        reward: float,
        next_state: Optional[QualityState],
    ) -> None:
        future = 0.0
        if next_state is not None:
            future = max(self._q(next_state, a) for a in self._action_names())
        old = self._q(state, action)
        self.q_table[(state, action)] = old + self.learning_rate * (
            reward + self.discount * future - old
        )

    # ---------------------------------------------------------------- policy
    def recommend(self, frame: DataFrame) -> List[Action]:
        """Greedy rollout of the learned policy: the recommended pipeline."""
        if not self._actions:
            raise RuntimeError("agent is not fitted; call fit() first")
        pipeline: List[Action] = []
        working = frame
        for _ in range(self.max_steps):
            state = QualityState.of(working, self.target)
            action_name = self._choose(state, greedy=True)
            if action_name == STOP:
                break
            action = next(a for a in self._actions if a.name == action_name)
            if action in pipeline:
                break  # policy loop: the operator no longer changes state
            candidate = self._apply(working, action_name)
            pipeline.append(action)
            working = candidate
        return pipeline


class Learn2Clean(Baseline):
    """Learn2Clean as a script-rewriting baseline.

    Learns an accuracy-maximizing pipeline on D_IN and renders it as a
    pandas script (header + learned operators + conventional tail).  The
    corpus is ignored — the published system has no notion of one — which
    is exactly why accuracy-optimal pipelines need not be standard.
    """

    name = "Learn2Clean"

    def __init__(
        self,
        data_dir: str,
        target: str,
        task: Optional[str] = None,
        n_episodes: int = 15,
        random_state: int = 0,
    ):
        self.data_dir = data_dir
        self.target = target
        self.task = task
        self.n_episodes = n_episodes
        self.random_state = random_state
        self._pipeline_cache: Optional[List[Action]] = None

    def _pipeline(self, script: str) -> List[Action]:
        if self._pipeline_cache is None:
            from ..sandbox import run_script

            lines = [
                line
                for line in script.splitlines()
                if line.strip().startswith(("import ", "from ")) or "read_csv" in line
            ]
            result = run_script(
                "\n".join(lines), data_dir=self.data_dir, sample_rows=400
            )
            if not result.ok or result.output is None:
                self._pipeline_cache = []
            else:
                agent = Learn2CleanAgent(
                    target=self.target,
                    task=self.task,
                    n_episodes=self.n_episodes,
                    random_state=self.random_state,
                )
                agent.fit(result.output)
                self._pipeline_cache = agent.recommend(result.output)
        return self._pipeline_cache

    def rewrite(self, script: str, corpus: Sequence[str]) -> str:
        pipeline = self._pipeline(script)
        if not pipeline:
            return script
        header = [
            line
            for line in script.splitlines()
            if line.strip().startswith(("import ", "from ")) or "read_csv" in line
        ]
        body = [action.source for action in pipeline]
        tail = [
            f"y = df['{self.target}']",
            f"X = df.drop('{self.target}', axis=1)",
        ]
        return "\n".join(header + body + tail)
