"""A learned next-operator model for the Auto-Suggest baseline.

The published Auto-Suggest system *learns* to recommend the next operator
from features of the input table, trained on harvested notebooks.  This
module reproduces that design offline: a synthetic generator emits tables
labelled with the structural operator a notebook author would apply
(melt for year-in-header matrices, transpose for attribute-per-row
tables, pivot for key/value logs, none for relational tables), and a
one-vs-rest logistic model is trained over the same
:class:`~repro.baselines.table_features.TableFeatures` the rule model
uses.

The trained model backs :class:`LearnedAutoSuggest`; on relational
competition data it predicts "none", reproducing the paper's 0%
improvement with a genuine learned component rather than a hard rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..minipandas import DataFrame
from ..ml.linear import LogisticRegression
from .table_features import TableFeatures, featurize_table

__all__ = [
    "OPERATOR_CLASSES",
    "generate_training_tables",
    "NextOperatorModel",
]

OPERATOR_CLASSES = ("none", "melt", "transpose", "pivot")


def _feature_vector(features: TableFeatures) -> List[float]:
    return [
        np.log1p(features.n_rows),
        np.log1p(features.n_cols),
        features.numeric_fraction,
        features.yearlike_column_fraction,
        features.numeric_name_fraction,
        float(features.wide),
        float(features.has_duplicate_keys),
        features.n_rows / max(features.n_cols, 1),
    ]


def _relational_table(rng: np.random.Generator) -> DataFrame:
    n = int(rng.integers(30, 200))
    return DataFrame(
        {
            "name": [f"e{i}" for i in range(n)],
            "category": rng.choice(["a", "b", "c"], size=n).tolist(),
            "value": rng.normal(0, 1, n).tolist(),
            "count": rng.integers(0, 50, n).tolist(),
        }
    )


def _year_matrix_table(rng: np.random.Generator) -> DataFrame:
    n = int(rng.integers(3, 15))
    n_years = int(rng.integers(12, 40))
    start = int(rng.integers(1950, 1990))
    data = {"entity": [f"e{i}" for i in range(n)]}
    for year in range(start, start + n_years):
        data[str(year)] = rng.normal(100, 10, n).tolist()
    return DataFrame(data)


def _attribute_per_row_table(rng: np.random.Generator) -> DataFrame:
    n_attrs = int(rng.integers(4, 10))
    n_entities = int(rng.integers(40, 120))
    data = {"attribute": [f"attr{i}" for i in range(n_attrs)]}
    for entity in range(n_entities):
        data[f"e{entity}"] = rng.normal(0, 1, n_attrs).tolist()
    return DataFrame(data)


def _key_value_log_table(rng: np.random.Generator) -> DataFrame:
    n = int(rng.integers(40, 200))
    shops = [f"shop{int(i)}" for i in rng.integers(0, 5, n)]
    items = [f"item{int(i)}" for i in rng.integers(0, 6, n)]
    return DataFrame(
        {"shop": shops, "item": items, "v": rng.normal(10, 2, n).tolist()}
    )


_GENERATORS = {
    "none": _relational_table,
    "melt": _year_matrix_table,
    "transpose": _attribute_per_row_table,
    "pivot": _key_value_log_table,
}


def generate_training_tables(
    n_per_class: int = 40, seed: int = 0
) -> List[Tuple[DataFrame, str]]:
    """Labelled (table, next-operator) training examples."""
    rng = np.random.default_rng(seed)
    examples: List[Tuple[DataFrame, str]] = []
    for label in OPERATOR_CLASSES:
        for _ in range(n_per_class):
            examples.append((_GENERATORS[label](rng), label))
    return examples


class NextOperatorModel:
    """One-vs-rest logistic model over table features."""

    def __init__(self):
        self._models: Dict[str, LogisticRegression] = {}
        self.classes_: Tuple[str, ...] = OPERATOR_CLASSES

    def fit(self, examples: Sequence[Tuple[DataFrame, str]]) -> "NextOperatorModel":
        if not examples:
            raise ValueError("cannot train on an empty example set")
        X = np.array(
            [_feature_vector(featurize_table(table)) for table, _ in examples]
        )
        labels = [label for _, label in examples]
        for cls in self.classes_:
            y = np.array([1 if label == cls else 0 for label in labels])
            model = LogisticRegression(n_iter=400)
            model.fit(X, y)
            self._models[cls] = model
        return self

    def predict_proba(self, table: DataFrame) -> Dict[str, float]:
        if not self._models:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.array([_feature_vector(featurize_table(table))])
        raw = {}
        for cls, model in self._models.items():
            if len(model.classes_) < 2:
                raw[cls] = float(model.classes_[0])
            else:
                raw[cls] = float(model.predict_proba(x)[0, 1])
        total = sum(raw.values()) or 1.0
        return {cls: p / total for cls, p in raw.items()}

    def predict(self, table: DataFrame) -> Optional[str]:
        """Most likely next operator, or None for 'none'."""
        proba = self.predict_proba(table)
        best = max(proba, key=proba.get)
        return None if best == "none" else best


_DEFAULT_MODEL: Optional[NextOperatorModel] = None


def default_model() -> NextOperatorModel:
    """The lazily trained shared model (deterministic training set)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = NextOperatorModel().fit(generate_training_tables())
    return _DEFAULT_MODEL
