"""On-disk snapshots of a :class:`~repro.corpus.index.CorpusIndex`.

Extends the offline-phase persistence of :mod:`repro.lang.persistence`
(which freezes one *vocabulary*) to the full incremental index: the
snapshot carries the content-addressed script records, the membership
order, and the directory manifest (per-file sha1 + mtime + size), so a
reloaded index can ``refresh()`` against its corpus directory and
reparse only files whose bytes actually changed.

Everything order-sensitive (successor target lists, position lists,
membership) is stored as JSON arrays, so a load → ``to_vocabulary()``
is bit-identical to the index that was saved.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import Dict, Optional

from ..lang.persistence import check_format_version
from .index import CorpusIndex, MembershipIndex, _FileEntry
from .retrieval import RetrievalIndex
from .signatures import signature_from_dict, signature_from_source, signature_to_dict
from .store import ScriptRecord, ScriptStore

__all__ = [
    "save_index",
    "load_index",
    "save_retrieval_index",
    "load_retrieval_index",
    "index_to_dict",
    "index_from_dict",
    "retrieval_index_to_dict",
    "retrieval_index_from_dict",
]

_INDEX_FORMAT_VERSION = 1


def _snapshot_dialect(payload: dict, what: str) -> str:
    """The snapshot's dialect, upgrading pre-dialect snapshots in place.

    Snapshots written before the dialect subsystem carry no ``dialect``
    field; they are by construction pandas corpora, so they load as
    ``"pandas"`` with a one-line note rather than an error.
    """
    dialect = payload.get("dialect")
    if dialect is None:
        sys.stderr.write(
            f"note: {what} snapshot predates dialect tagging; loading as 'pandas'\n"
        )
        return "pandas"
    return str(dialect)


def _record_to_dict(record: ScriptRecord) -> dict:
    return {
        "source": record.source,
        "n_statements": record.n_statements,
        "edge_counts": [
            [source, target, count]
            for (source, target), count in record.edge_counts.items()
        ],
        "onegram_counts": dict(record.onegram_counts),
        "ngram_counts": dict(record.ngram_counts),
        "successors_by_source": record.successors_by_source,
        "template_slots": {
            sig: [first_df, first_any]
            for sig, (first_df, first_any) in record.template_slots.items()
        },
        "position_lists": record.position_lists,
        "signature": signature_to_dict(record.signature),
    }


def _record_from_dict(
    content_hash: str, payload: dict, dialect: str = "pandas"
) -> ScriptRecord:
    onegram_counts = Counter(payload["onegram_counts"])
    saved_signature = payload.get("signature")
    if saved_signature is not None:
        signature = signature_from_dict(content_hash, saved_signature)
    else:
        # pre-retrieval snapshot: the signature is a pure function of the
        # persisted source + 1-grams, so recompute bit-identically
        signature = signature_from_source(
            content_hash, payload["source"], onegram_counts
        )
    return ScriptRecord(
        content_hash=content_hash,
        source=payload["source"],
        n_statements=int(payload["n_statements"]),
        edge_counts=Counter(
            {(s, t): c for s, t, c in payload["edge_counts"]}
        ),
        onegram_counts=onegram_counts,
        ngram_counts=Counter(payload["ngram_counts"]),
        successors_by_source={
            sig: list(targets)
            for sig, targets in payload["successors_by_source"].items()
        },
        template_slots={
            sig: (slot[0], slot[1]) for sig, slot in payload["template_slots"].items()
        },
        position_lists={
            sig: [float(v) for v in values]
            for sig, values in payload["position_lists"].items()
        },
        signature=signature,
        dialect=dialect,
    )


def index_to_dict(index: MembershipIndex) -> dict:
    """JSON-serializable snapshot: records + membership + manifest.

    Works for any :class:`MembershipIndex` — the snapshot carries only
    membership-layer state (records, member order, manifest), because
    every subclass rebuilds its derived structures by re-admitting the
    members through the live delta path on load.
    """
    return {
        "format_version": _INDEX_FORMAT_VERSION,
        "kind": "retrieval" if isinstance(index, RetrievalIndex) else "corpus",
        "dialect": index.dialect,
        "corpus_dir": index.corpus_dir,
        "n_failures": index.n_failures,
        "members": [
            [script_id, content_hash]
            for script_id, content_hash in index._members.items()
        ],
        "records": {
            content_hash: _record_to_dict(record)
            for content_hash, record in index._records.items()
        },
        "manifest": {
            name: {
                "script_id": entry.script_id,
                "sha1": entry.raw_sha,
                "mtime_ns": entry.mtime_ns,
                "size": entry.size,
            }
            for name, entry in index._files.items()
        },
    }


def _restore_members(index: MembershipIndex, payload: dict, dialect: str) -> None:
    """Re-admit a snapshot's members through the live delta path.

    In saved order, with their saved ids, so every aggregate and
    derived structure is reconstructed by the same code that maintains
    them live — there is no second, drift-prone restore path.
    """
    records: Dict[str, ScriptRecord] = {
        content_hash: _record_from_dict(content_hash, record_payload, dialect)
        for content_hash, record_payload in payload["records"].items()
    }
    for record in records.values():
        index.store.put(record)
    for script_id, content_hash in payload["members"]:
        index._admit(records[content_hash], script_id=int(script_id))
    index.n_failures = int(payload.get("n_failures", 0))
    index.corpus_dir = payload.get("corpus_dir")
    for name, entry in payload.get("manifest", {}).items():
        index._files[name] = _FileEntry(
            script_id=entry["script_id"],
            raw_sha=entry["sha1"],
            mtime_ns=int(entry["mtime_ns"]),
            size=int(entry["size"]),
        )


def index_from_dict(payload: dict, store: Optional[ScriptStore] = None) -> CorpusIndex:
    """Rebuild a :class:`CorpusIndex` from its snapshot, reparsing nothing."""
    check_format_version(
        payload.get("format_version"), _INDEX_FORMAT_VERSION, "corpus index"
    )
    if payload.get("kind", "corpus") != "corpus":
        raise ValueError(
            f"snapshot holds a {payload['kind']!r} index, not a corpus index"
        )
    dialect = _snapshot_dialect(payload, "corpus index")
    index = CorpusIndex(store=store, dialect=dialect)
    _restore_members(index, payload, dialect)
    return index


def retrieval_index_to_dict(index: RetrievalIndex) -> dict:
    """JSON-serializable snapshot of a retrieval pool index."""
    return index_to_dict(index)


def retrieval_index_from_dict(
    payload: dict, store: Optional[ScriptStore] = None
) -> RetrievalIndex:
    """Rebuild a :class:`RetrievalIndex` from its snapshot.

    Signatures ride the persisted records (recomputed when loading a
    pre-retrieval snapshot), so the band buckets and schema postings are
    rebuilt without lemmatizing or parsing anything.
    """
    check_format_version(
        payload.get("format_version"), _INDEX_FORMAT_VERSION, "retrieval index"
    )
    if payload.get("kind", "corpus") != "retrieval":
        raise ValueError(
            f"snapshot holds a {payload.get('kind', 'corpus')!r} index, "
            "not a retrieval index"
        )
    dialect = _snapshot_dialect(payload, "retrieval index")
    index = RetrievalIndex(store=store, dialect=dialect)
    _restore_members(index, payload, dialect)
    return index


def save_index(index: CorpusIndex, path: str) -> None:
    """Write an index snapshot to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(index_to_dict(index), handle, indent=1)


def load_index(path: str, store: Optional[ScriptStore] = None) -> CorpusIndex:
    """Load a snapshot previously written by :func:`save_index`."""
    with open(path, "r") as handle:
        return index_from_dict(json.load(handle), store=store)


def save_retrieval_index(index: RetrievalIndex, path: str) -> None:
    """Write a retrieval-pool snapshot to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(retrieval_index_to_dict(index), handle, indent=1)


def load_retrieval_index(path: str, store: Optional[ScriptStore] = None) -> RetrievalIndex:
    """Load a snapshot previously written by :func:`save_retrieval_index`."""
    with open(path, "r") as handle:
        return retrieval_index_from_dict(json.load(handle), store=store)
