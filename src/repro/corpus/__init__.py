"""repro.corpus — persistent, content-addressed corpus index.

The offline phase (Section 5.1) as a long-lived, incrementally
maintained asset: a content-addressed :class:`ScriptStore` parses each
unique corpus script once, a :class:`CorpusIndex` keeps the exact
``CorpusVocabulary`` sufficient statistics under O(changed script)
add/remove/refresh deltas, snapshots persist to disk with a staleness
manifest, and a process-wide warm cache makes repeated ``LucidScript``
constructions over the same corpus near-free.

On top of that sits sub-linear retrieval: every record carries a cheap
:class:`ScriptSignature` (minhash + vocabulary + schema features), and
a :class:`RetrievalIndex` answers ``top_k(query, k)`` through LSH band
buckets and schema postings, assembling a working :class:`CorpusIndex`
from a giant pool without touching more than the true candidates.
"""

from .cache import (
    CorpusCacheCounters,
    cached_index,
    clear_corpus_cache,
    configure_shared_store,
    corpus_cache_counters,
    corpus_key,
    shared_retrieval_index,
    shared_store,
)
from .index import CorpusIndex, IndexMismatchError, MembershipIndex, RefreshReport
from .persistence import (
    index_from_dict,
    index_to_dict,
    load_index,
    load_retrieval_index,
    save_index,
    save_retrieval_index,
)
from .retrieval import (
    RetrievalCounters,
    RetrievalIndex,
    RetrievalMismatchError,
    RetrievedScript,
)
from .signatures import ScriptSignature, signature_similarity, table_signature
from .store import ScriptRecord, ScriptStore, StoreCounters, content_address

__all__ = [
    "CorpusCacheCounters",
    "CorpusIndex",
    "IndexMismatchError",
    "MembershipIndex",
    "RefreshReport",
    "RetrievalCounters",
    "RetrievalIndex",
    "RetrievalMismatchError",
    "RetrievedScript",
    "ScriptRecord",
    "ScriptSignature",
    "ScriptStore",
    "StoreCounters",
    "cached_index",
    "clear_corpus_cache",
    "configure_shared_store",
    "content_address",
    "corpus_cache_counters",
    "corpus_key",
    "index_from_dict",
    "index_to_dict",
    "load_index",
    "load_retrieval_index",
    "save_index",
    "save_retrieval_index",
    "shared_retrieval_index",
    "shared_store",
    "signature_similarity",
    "table_signature",
]
