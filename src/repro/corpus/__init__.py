"""repro.corpus — persistent, content-addressed corpus index.

The offline phase (Section 5.1) as a long-lived, incrementally
maintained asset: a content-addressed :class:`ScriptStore` parses each
unique corpus script once, a :class:`CorpusIndex` keeps the exact
``CorpusVocabulary`` sufficient statistics under O(changed script)
add/remove/refresh deltas, snapshots persist to disk with a staleness
manifest, and a process-wide warm cache makes repeated ``LucidScript``
constructions over the same corpus near-free.
"""

from .cache import (
    CorpusCacheCounters,
    cached_index,
    clear_corpus_cache,
    corpus_cache_counters,
    shared_store,
)
from .index import CorpusIndex, IndexMismatchError, RefreshReport
from .persistence import index_from_dict, index_to_dict, load_index, save_index
from .store import ScriptRecord, ScriptStore, StoreCounters, content_address

__all__ = [
    "CorpusCacheCounters",
    "CorpusIndex",
    "IndexMismatchError",
    "RefreshReport",
    "ScriptRecord",
    "ScriptStore",
    "StoreCounters",
    "cached_index",
    "clear_corpus_cache",
    "content_address",
    "corpus_cache_counters",
    "index_from_dict",
    "index_to_dict",
    "load_index",
    "save_index",
    "shared_store",
]
