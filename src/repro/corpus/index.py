"""Incremental corpus index — the offline phase as a long-lived asset.

Two layers live here.  :class:`MembershipIndex` is the shared membership
engine: an ordered multiset of scripts (insertion order IS the corpus
order) resolved through a content-addressed :class:`ScriptStore`, with
``add_script``/``remove_script``/``refresh`` as pure deltas and a
directory manifest (per-file ``(mtime_ns, size, sha1)``) so a refresh
reparses only files whose bytes actually changed.  Derived state is
delegated to subclass hooks: :class:`CorpusIndex` maintains the exact
``CorpusVocabulary`` sufficient statistics, and
:class:`~repro.corpus.retrieval.RetrievalIndex` maintains LSH band
buckets and schema postings over the same membership contract.

:class:`CorpusIndex` maintains exactly the sufficient statistics that
:class:`~repro.lang.vocabulary.CorpusVocabulary` derives from a corpus —
edge/1-gram/n-gram counters, successor adjacency, statement templates,
relative positions, per-script n-gram frequency — under membership
changes, each costing O(changed script) instead of a full corpus
reparse.

The equivalence contract is *bit-identity*: after any interleaving of
mutations, :meth:`CorpusIndex.to_vocabulary` equals
``CorpusVocabulary.from_scripts(surviving scripts, in index order)`` on
every structure, including the float means of ``relative_positions``
(same values summed in the same order), the ε-smoothed Q(x), and the
tie order of ``ngram_successors`` (Counter insertion order is replayed
from per-script successor lists).  :meth:`verify` audits this the way
``LSConfig.verify_scoring``/``verify_intent`` audit the search engines:
rebuild from scratch, compare exactly, raise on any divergence.

Order-sensitive derived structures (successors, templates, positions)
are rebuilt lazily, per dirty signature, from posting lists — a
membership change touching a script with *k* signatures dirties at most
*k* keys, and untouched keys keep their (still-identical) entries.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from hashlib import sha1
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..lang.errors import ScriptError
from ..lang.vocabulary import CorpusStats, CorpusVocabulary
from .store import ScriptRecord, ScriptStore

__all__ = ["CorpusIndex", "IndexMismatchError", "MembershipIndex", "RefreshReport"]


class IndexMismatchError(RuntimeError):
    """Raised by :meth:`CorpusIndex.verify` when the incrementally
    maintained statistics diverge from a from-scratch rebuild (an index
    bug, never a legitimate runtime condition)."""


@dataclass
class RefreshReport:
    """Outcome of one :meth:`MembershipIndex.refresh` directory scan."""

    scanned: int = 0
    added: int = 0
    changed: int = 0
    removed: int = 0
    unchanged_stat: int = 0  #: skipped on (mtime, size) alone — never read
    unchanged_hash: int = 0  #: re-read but byte-identical — never parsed
    failed: int = 0
    reparsed: int = 0  #: scripts that actually went through the parser
    failed_paths: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return {
            "scanned": self.scanned,
            "added": self.added,
            "changed": self.changed,
            "removed": self.removed,
            "unchanged_stat": self.unchanged_stat,
            "unchanged_hash": self.unchanged_hash,
            "failed": self.failed,
            "reparsed": self.reparsed,
        }


@dataclass
class _FileEntry:
    """Manifest row for one corpus file: staleness keys + its script."""

    script_id: Optional[int]  #: None when the file failed to load/parse
    raw_sha: str
    mtime_ns: int
    size: int


class MembershipIndex:
    """Ordered script membership over a content-addressed store.

    Subclasses override :meth:`_apply` / :meth:`_retract` to maintain
    their derived state as pure deltas; everything about *which* scripts
    are members — ids, ordering, refcounts, per-index strong record
    references, and the stat-scan refresh protocol — lives here once.
    """

    def __init__(
        self, store: Optional[ScriptStore] = None, dialect: Optional[str] = None
    ):
        if store is not None and dialect is not None and store.dialect != dialect:
            raise ValueError(
                f"store dialect {store.dialect!r} does not match "
                f"requested index dialect {dialect!r}"
            )
        self.store = (
            store if store is not None else ScriptStore(dialect=dialect or "pandas")
        )
        #: script_id -> content hash; insertion order IS the corpus order
        self._members: Dict[int, str] = {}
        self._next_id = 0
        #: per-index strong refs (the shared store may be shared/bounded)
        self._records: Dict[str, ScriptRecord] = {}
        self._refcounts: Counter = Counter()
        self.n_failures = 0

        # directory manifest (refresh protocol)
        self.corpus_dir: Optional[str] = None
        self._files: Dict[str, _FileEntry] = {}

    @property
    def dialect(self) -> str:
        """The API dialect every member script was parsed under."""
        return self.store.dialect

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_scripts(
        cls,
        scripts: Iterable[str],
        store: Optional[ScriptStore] = None,
        dialect: Optional[str] = None,
    ) -> "MembershipIndex":
        """Index raw script sources, mirroring
        :meth:`CorpusVocabulary.from_scripts` semantics: unparseable
        scripts are skipped, an all-broken corpus raises ScriptError."""
        index = cls(store=store, dialect=dialect)
        for script in scripts:
            index.add_script(script)
        if not index._members:
            raise ScriptError(
                f"no parseable scripts in corpus ({index.n_failures} failed)"
            )
        return index

    # ------------------------------------------------------------------- sizes
    def __len__(self) -> int:
        return len(self._members)

    @property
    def n_scripts(self) -> int:
        return len(self._members)

    @property
    def n_unique_scripts(self) -> int:
        return len(self._records)

    def script_ids(self) -> List[int]:
        return list(self._members)

    def sources(self) -> List[str]:
        """Lemmatized member sources, in index (corpus) order."""
        return [self._records[h].source for h in self._members.values()]

    def content_hashes(self) -> List[str]:
        return list(self._members.values())

    # --------------------------------------------------------------- mutation
    def add_script(self, raw_source: str) -> Optional[int]:
        """Index one script; returns its id, or None if unparseable."""
        record = self.store.get_or_parse(raw_source)
        if record is None:
            self.n_failures += 1
            return None
        return self._admit(record)

    def add_record(self, record: ScriptRecord) -> int:
        """Admit a prebuilt record through the normal delta path.

        The retrieval layer assembles working corpora this way: top-k
        records (already resident in a store) become a
        :class:`CorpusIndex` without any source text round-trip.
        """
        return self._admit(record)

    def _admit(self, record: ScriptRecord, script_id: Optional[int] = None) -> int:
        """Apply one record's contributions under a new member id.

        ``script_id`` is only passed by the snapshot loader, which must
        preserve saved ids (the manifest references them); live adds
        always allocate the next id, keeping member order = id order.
        """
        if record.dialect != self.dialect:
            raise ValueError(
                f"cannot admit a {record.dialect!r}-dialect script into a "
                f"{self.dialect!r}-dialect index: corpora never mix dialects"
            )
        if script_id is None:
            script_id = self._next_id
        elif script_id in self._members:
            raise ValueError(f"duplicate script id: {script_id}")
        self._next_id = max(self._next_id, script_id + 1)
        self._members[script_id] = record.content_hash
        self._refcounts[record.content_hash] += 1
        self._records.setdefault(record.content_hash, record)
        self._apply(record, script_id)
        return script_id

    def remove_script(self, script_id: int) -> None:
        """Retract one member's contributions (O(changed script))."""
        try:
            content_hash = self._members.pop(script_id)
        except KeyError:
            raise KeyError(f"unknown script id: {script_id}") from None
        record = self._records[content_hash]
        self._refcounts[content_hash] -= 1
        if not self._refcounts[content_hash]:
            del self._refcounts[content_hash]
            del self._records[content_hash]
        self._retract(record, script_id)

    # ------------------------------------------------------------------- hooks
    def _apply(self, record: ScriptRecord, script_id: int) -> None:
        """Fold one new member's contributions into derived state."""

    def _retract(self, record: ScriptRecord, script_id: int) -> None:
        """Retract one removed member's contributions from derived state.

        Runs *after* the membership bookkeeping: when the removed member
        was the last reference to its content hash, the hash is already
        absent from ``_refcounts`` / ``_records``.
        """

    # ----------------------------------------------------------------- refresh
    def refresh(self, corpus_dir: Optional[str] = None) -> RefreshReport:
        """Reconcile the index with a corpus directory, O(changed files).

        The manifest keeps ``(mtime_ns, size, sha1)`` per file: a file
        whose stat signature matches is skipped without being read; one
        whose bytes hash to the recorded sha is touched without being
        parsed; only genuinely new or changed files reach the parser —
        and even those hit the content-addressed store when their
        *lemmatized* text is already known.
        """
        directory = corpus_dir or self.corpus_dir
        if directory is None:
            raise ValueError("no corpus directory: pass corpus_dir or set one")
        self.corpus_dir = directory
        report = RefreshReport()
        parses_before = self.store.counters.parses

        seen: Set[str] = set()
        for name in self._scan(directory):
            report.scanned += 1
            path = os.path.join(directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # raced deletion; handled as a removal below
            seen.add(name)
            entry = self._files.get(name)
            if (
                entry is not None
                and entry.mtime_ns == stat.st_mtime_ns
                and entry.size == stat.st_size
            ):
                report.unchanged_stat += 1
                continue
            try:
                with open(path, "rb") as handle:
                    raw_bytes = handle.read()
            except OSError:
                continue
            raw_sha = sha1(raw_bytes).hexdigest()
            if entry is not None and entry.raw_sha == raw_sha:
                entry.mtime_ns = stat.st_mtime_ns
                entry.size = stat.st_size
                report.unchanged_hash += 1
                continue
            # genuinely new or changed content
            if entry is not None and entry.script_id is not None:
                self.remove_script(entry.script_id)
            source = self._load_source(name, raw_bytes, report)
            script_id = self.add_script(source) if source is not None else None
            if script_id is None and source is not None:
                report.failed += 1
                report.failed_paths.append(name)
            self._files[name] = _FileEntry(
                script_id=script_id,
                raw_sha=raw_sha,
                mtime_ns=stat.st_mtime_ns,
                size=stat.st_size,
            )
            if entry is None:
                report.added += 1
            else:
                report.changed += 1

        for name in list(self._files):
            if name not in seen:
                entry = self._files.pop(name)
                if entry.script_id is not None:
                    self.remove_script(entry.script_id)
                report.removed += 1

        report.reparsed = self.store.counters.parses - parses_before
        return report

    @staticmethod
    def _scan(directory: str) -> List[str]:
        """Corpus file names (relative), .py then .ipynb, each sorted —
        the same order :func:`repro.cli._read_corpus` loads them in."""
        try:
            names = os.listdir(directory)
        except OSError as exc:
            raise ValueError(f"cannot scan corpus directory {directory!r}: {exc}")
        py = sorted(n for n in names if n.endswith(".py"))
        nb = sorted(n for n in names if n.endswith(".ipynb"))
        return py + nb

    @staticmethod
    def _load_source(name: str, raw_bytes: bytes, report: RefreshReport) -> Optional[str]:
        """Decode a corpus file into script text (flattening notebooks)."""
        try:
            text = raw_bytes.decode("utf-8")
        except UnicodeDecodeError:
            report.failed += 1
            report.failed_paths.append(name)
            return None
        if not name.endswith(".ipynb"):
            return text
        import json

        from ..lang.notebooks import script_from_notebook

        try:
            return script_from_notebook(json.loads(text))
        except (ValueError, json.JSONDecodeError):
            report.failed += 1
            report.failed_paths.append(name)
            return None


class CorpusIndex(MembershipIndex):
    """Exact, incrementally maintained corpus sufficient statistics."""

    def __init__(
        self, store: Optional[ScriptStore] = None, dialect: Optional[str] = None
    ):
        super().__init__(store=store, dialect=dialect)

        # aggregate counters (zero entries pruned on removal)
        self.edge_counts: Counter = Counter()
        self.onegram_counts: Counter = Counter()
        self.ngram_counts: Counter = Counter()
        self._total_statements = 0

        # posting lists: signature -> member ids contributing to it
        self._succ_members: Dict[str, Set[int]] = {}
        self._template_members: Dict[str, Set[int]] = {}
        self._position_members: Dict[str, Set[int]] = {}

        # lazily rebuilt derived structures + their dirty sets
        self._successors: Dict[str, Counter] = {}
        self._templates: Dict[str, str] = {}
        self._positions: Dict[str, float] = {}
        self._dirty_succ: Set[str] = set()
        self._dirty_templates: Set[str] = set()
        self._dirty_positions: Set[str] = set()

    # ------------------------------------------------------------------- hooks
    def _apply(self, record: ScriptRecord, script_id: int) -> None:
        self.edge_counts.update(record.edge_counts)
        self.onegram_counts.update(record.onegram_counts)
        self.ngram_counts.update(record.ngram_counts)
        self._total_statements += record.n_statements

        for sig in record.successors_by_source:
            self._succ_members.setdefault(sig, set()).add(script_id)
            self._dirty_succ.add(sig)
        for sig in record.template_slots:
            self._template_members.setdefault(sig, set()).add(script_id)
            self._dirty_templates.add(sig)
        for sig in record.position_lists:
            self._position_members.setdefault(sig, set()).add(script_id)
            self._dirty_positions.add(sig)

    def _retract(self, record: ScriptRecord, script_id: int) -> None:
        self._subtract(self.edge_counts, record.edge_counts)
        self._subtract(self.onegram_counts, record.onegram_counts)
        self._subtract(self.ngram_counts, record.ngram_counts)
        self._total_statements -= record.n_statements

        for sig in record.successors_by_source:
            self._drop_posting(self._succ_members, sig, script_id)
            self._dirty_succ.add(sig)
        for sig in record.template_slots:
            self._drop_posting(self._template_members, sig, script_id)
            self._dirty_templates.add(sig)
        for sig in record.position_lists:
            self._drop_posting(self._position_members, sig, script_id)
            self._dirty_positions.add(sig)

    @staticmethod
    def _subtract(aggregate: Counter, delta: Counter) -> None:
        aggregate.subtract(delta)
        for key in delta:
            if not aggregate[key]:
                del aggregate[key]

    @staticmethod
    def _drop_posting(postings: Dict[str, Set[int]], sig: str, script_id: int) -> None:
        members = postings.get(sig)
        if members is not None:
            members.discard(script_id)
            if not members:
                del postings[sig]

    # ------------------------------------------------------ derived structures
    def _record_of(self, script_id: int) -> ScriptRecord:
        return self._records[self._members[script_id]]

    def _materialize(self) -> None:
        """Rebuild dirty derived entries, replaying corpus order exactly."""
        for sig in self._dirty_succ:
            members = self._succ_members.get(sig)
            if not members:
                self._successors.pop(sig, None)
                continue
            counter: Counter = Counter()
            for script_id in sorted(members):
                for target in self._record_of(script_id).successors_by_source[sig]:
                    counter[target] += 1
            self._successors[sig] = counter
        self._dirty_succ.clear()

        for sig in self._dirty_templates:
            members = self._template_members.get(sig)
            if not members:
                self._templates.pop(sig, None)
                continue
            ordered = sorted(members)
            # CorpusVocabulary's preference rule resolves to: the first
            # df-assignment occurrence in corpus order if one exists,
            # otherwise the very first occurrence
            template: Optional[str] = None
            for script_id in ordered:
                first_df, _ = self._record_of(script_id).template_slots[sig]
                if first_df is not None:
                    template = first_df
                    break
            if template is None:
                template = self._record_of(ordered[0]).template_slots[sig][1]
            self._templates[sig] = template
        self._dirty_templates.clear()

        for sig in self._dirty_positions:
            members = self._position_members.get(sig)
            if not members:
                self._positions.pop(sig, None)
                continue
            values: List[float] = []
            for script_id in sorted(members):
                values.extend(self._record_of(script_id).position_lists[sig])
            self._positions[sig] = sum(values) / len(values)
        self._dirty_positions.clear()

    # ------------------------------------------------------------------ export
    def to_vocabulary(self) -> CorpusVocabulary:
        """A :class:`CorpusVocabulary` bit-identical to a from-scratch
        ``from_scripts`` build over the surviving scripts (index order).

        The returned object owns fresh copies of every structure, so
        callers may hold it across further index mutations.
        """
        if not self._members:
            raise ValueError("cannot build a vocabulary from an empty corpus")
        self._materialize()
        n = len(self._members)
        vocabulary = CorpusVocabulary.__new__(CorpusVocabulary)
        vocabulary._dags = []
        vocabulary.edge_counts = Counter(self.edge_counts)
        vocabulary.onegram_counts = Counter(self.onegram_counts)
        vocabulary.ngram_counts = Counter(self.ngram_counts)
        from collections import defaultdict

        vocabulary.successors = defaultdict(
            Counter, {sig: Counter(c) for sig, c in self._successors.items()}
        )
        vocabulary.onegram_templates = dict(self._templates)
        vocabulary.relative_positions = dict(self._positions)
        vocabulary._total_edges = sum(self.edge_counts.values())
        vocabulary._restored_n_scripts = n
        vocabulary._restored_avg_lines = self._total_statements / n
        vocabulary._restored_frequencies = {
            sig: len(self._position_members[sig]) / n for sig in self.ngram_counts
        }
        return vocabulary

    def stats(self) -> CorpusStats:
        n = len(self._members)
        return CorpusStats(
            n_scripts=n,
            avg_code_lines=self._total_statements / n if n else 0.0,
            uniq_onegrams=len(self.onegram_counts),
            uniq_ngrams=len(self.ngram_counts),
            uniq_edges=len(self.edge_counts),
        )

    # ------------------------------------------------------------------- audit
    def verify(self) -> None:
        """Audit mode: rebuild from scratch and compare bit-for-bit.

        In the spirit of ``LSConfig.verify_scoring``/``verify_intent``:
        any divergence is an engine bug and raises
        :class:`IndexMismatchError` naming the first structure that
        differs.  O(full corpus reparse) — a debugging tool, not a
        production path.
        """
        if not self._members:
            return
        fresh = CorpusVocabulary.from_scripts(
            self.sources(), dialect=self.store._lang_dialect
        )
        mine = self.to_vocabulary()
        self._compare("edge_counts", mine.edge_counts, fresh.edge_counts)
        self._compare("onegram_counts", mine.onegram_counts, fresh.onegram_counts)
        self._compare("ngram_counts", mine.ngram_counts, fresh.ngram_counts)
        self._compare("total_edges", mine.total_edges, fresh.total_edges)
        self._compare("onegram_templates", mine.onegram_templates, fresh.onegram_templates)
        self._compare(
            "relative_positions", mine.relative_positions, fresh.relative_positions
        )
        # successor tie order feeds GetSteps enumeration: compare the
        # exact Counter item order, not just the multiset
        mine_succ = {s: list(c.items()) for s, c in mine.successors.items()}
        fresh_succ = {s: list(c.items()) for s, c in fresh.successors.items()}
        self._compare("successors", mine_succ, fresh_succ)
        self._compare("stats", mine.stats(), fresh.stats())
        for sig in fresh.ngram_counts:
            if mine.statement_frequency(sig) != fresh.statement_frequency(sig):
                raise IndexMismatchError(
                    f"statement_frequency({sig!r}): "
                    f"{mine.statement_frequency(sig)!r} != "
                    f"{fresh.statement_frequency(sig)!r}"
                )
        # Q(x) spot equivalence follows from edge_counts/total, but keep
        # the smoothing mass in the contract explicitly
        self._compare("epsilon", mine.epsilon, fresh.epsilon)

    @staticmethod
    def _compare(what: str, mine, fresh) -> None:
        if mine != fresh:
            raise IndexMismatchError(
                f"incremental index diverged from from-scratch rebuild on {what}"
            )
