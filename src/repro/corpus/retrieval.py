"""Sub-linear corpus retrieval: LSH top-k over script signatures.

The paper assumes a curated per-dataset corpus; at service scale there
is instead one giant pool of scripts across thousands of datasets, and
assembling a working corpus by touching every candidate is O(pool) per
request.  This module is the retrieve-then-compute half of that
architecture: a :class:`RetrievalIndex` holds only the cheap
:class:`~repro.corpus.signatures.ScriptSignature` of each pool script —
LSH band buckets over the minhash plus schema-token postings — and
answers ``top_k(query, k)`` by scoring just the scripts sharing a band
or a schema token with the query, then hands the winners to the exact
engine as a :class:`~repro.corpus.index.CorpusIndex` built through the
ordinary record-delta path.  Downstream stays bit-identical: the
assembled corpus is a real index over real records, and a search over
it equals a search over the same scripts curated by hand.

Exactness, not approximation: :func:`signature_similarity` scores a
pair 0 unless the two signatures share a full LSH band or a schema
token, which is precisely the candidate-generation event.  The
candidate set therefore *equals* the positive-similarity set, and
``top_k`` equals brute force over the whole pool (ties broken by
content address, so results are deterministic across runs and
platforms).  ``verify_retrieval`` (:meth:`RetrievalIndex.top_k` with
``verify=True``) audits the equality per query the way
``verify_scoring``/``verify_index`` audit their engines, raising
:class:`RetrievalMismatchError` on any divergence.

Membership rides :class:`~repro.corpus.index.MembershipIndex`: add /
remove / directory ``refresh`` are pure deltas (bucket edits on the
refcount edges), so the pool index persists through the same snapshot +
stat-scan machinery as the corpus index (see
:func:`repro.corpus.persistence.save_retrieval_index`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lang.errors import ScriptError
from .index import CorpusIndex, MembershipIndex
from .signatures import (
    ScriptSignature,
    band_keys,
    signature_similarity,
    table_signature,
)
from .store import ScriptRecord, ScriptStore

__all__ = [
    "RetrievalCounters",
    "RetrievalIndex",
    "RetrievalMismatchError",
    "RetrievedScript",
]


class RetrievalMismatchError(RuntimeError):
    """Raised by the ``verify_retrieval`` audit when the LSH candidate
    path diverges from brute-force signature similarity (an engine bug,
    never a legitimate runtime condition)."""


@dataclass(frozen=True)
class RetrievedScript:
    """One top-k hit: a pool script and its similarity to the query."""

    content_hash: str
    score: float
    record: ScriptRecord


@dataclass
class RetrievalCounters:
    """Observable work done by one :class:`RetrievalIndex`."""

    queries: int = 0
    candidates: int = 0  #: signatures actually scored across all queries
    fallbacks: int = 0  #: full scans taken because candidates < k

    def snapshot(self) -> Tuple[int, int, int]:
        return (self.queries, self.candidates, self.fallbacks)


#: Accepted query forms: a raw script text, a table (anything with a
#: ``columns`` attribute, e.g. a minipandas DataFrame), or a prebuilt
#: signature.
Query = Union[str, ScriptSignature, object]


class RetrievalIndex(MembershipIndex):
    """LSH-banded top-k similarity search over a pool of scripts.

    The derived state is one signature per *unique* script plus two
    inverted structures — band buckets keyed by ``(band, row values…)``
    and schema-token postings — maintained on the refcount edges of the
    shared membership machinery: duplicates of a script in the pool
    change nothing (retrieval is about *which* scripts exist, not how
    often), and removal only unhooks a signature when its last member
    leaves.
    """

    def __init__(
        self, store: Optional[ScriptStore] = None, dialect: Optional[str] = None
    ):
        super().__init__(store=store, dialect=dialect)
        self._signatures: Dict[str, ScriptSignature] = {}
        self._bands: Dict[Tuple[int, ...], Set[str]] = {}
        self._schema_posts: Dict[str, Set[str]] = {}
        self.counters = RetrievalCounters()

    # ------------------------------------------------------------------- hooks
    def _apply(self, record: ScriptRecord, script_id: int) -> None:
        if self._refcounts[record.content_hash] != 1:
            return  # duplicate member of an already-bucketed script
        signature = record.signature
        self._signatures[record.content_hash] = signature
        for key in band_keys(signature.minhash):
            self._bands.setdefault(key, set()).add(record.content_hash)
        for token in signature.schema:
            self._schema_posts.setdefault(token, set()).add(record.content_hash)

    def _retract(self, record: ScriptRecord, script_id: int) -> None:
        if record.content_hash in self._refcounts:
            return  # other members still reference this script
        signature = self._signatures.pop(record.content_hash)
        for key in band_keys(signature.minhash):
            bucket = self._bands.get(key)
            if bucket is not None:
                bucket.discard(record.content_hash)
                if not bucket:
                    del self._bands[key]
        for token in signature.schema:
            posting = self._schema_posts.get(token)
            if posting is not None:
                posting.discard(record.content_hash)
                if not posting:
                    del self._schema_posts[token]

    # ----------------------------------------------------------------- queries
    def query_signature(self, query: Query) -> ScriptSignature:
        """Resolve any accepted query form to a :class:`ScriptSignature`.

        Raw script texts go through the store (so repeated queries parse
        once and the signature is the content-addressed one); tables
        reduce to their column names via :func:`table_signature`.
        """
        if isinstance(query, ScriptSignature):
            return query
        if isinstance(query, str):
            record = self.store.get_or_parse(query)
            if record is None:
                raise ScriptError("retrieval query script does not parse")
            return record.signature
        columns = getattr(query, "columns", None)
        if columns is not None:
            return table_signature(columns)
        raise TypeError(
                f"unsupported retrieval query type: {type(query).__name__} "
                "(expected script text, table, or ScriptSignature)"
        )

    def _scored(self, signature: ScriptSignature, hashes) -> List[RetrievedScript]:
        hits = [
            RetrievedScript(
                content_hash=content_hash,
                score=signature_similarity(signature, self._signatures[content_hash]),
                record=self._records[content_hash],
            )
            for content_hash in hashes
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.content_hash))
        return hits

    def top_k(self, query: Query, k: int, verify: bool = False) -> List[RetrievedScript]:
        """The *k* pool scripts most similar to *query*, best first.

        Candidates are the union of the query's LSH band buckets and
        schema postings; because :func:`signature_similarity` is gated
        on exactly those two events, this set contains every script
        with positive similarity and the result equals
        :meth:`brute_force_top_k`.  When fewer than *k* candidates
        surface, the scan falls back to the whole pool (counted in
        ``counters.fallbacks``) so the result is still k-deep, padded
        with zero-similarity scripts in content-address order.

        With ``verify=True`` (the ``verify_retrieval`` audit mode) the
        brute-force ranking is computed alongside and any divergence
        raises :class:`RetrievalMismatchError`.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        signature = self.query_signature(query)
        self.counters.queries += 1
        candidates: Set[str] = set()
        for key in band_keys(signature.minhash):
            candidates.update(self._bands.get(key, ()))
        for token in signature.schema:
            candidates.update(self._schema_posts.get(token, ()))
        if len(candidates) < min(k, len(self._signatures)):
            candidates = set(self._signatures)
            self.counters.fallbacks += 1
        self.counters.candidates += len(candidates)
        hits = self._scored(signature, candidates)[:k]
        if verify:
            self._audit(signature, k, hits)
        return hits

    def brute_force_top_k(self, query: Query, k: int) -> List[RetrievedScript]:
        """Reference ranking: score every pool script, no index used."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        signature = self.query_signature(query)
        return self._scored(signature, self._signatures)[:k]

    def _audit(
        self, signature: ScriptSignature, k: int, hits: Sequence[RetrievedScript]
    ) -> None:
        expected = self.brute_force_top_k(signature, k)
        got = [(hit.content_hash, hit.score) for hit in hits]
        want = [(hit.content_hash, hit.score) for hit in expected]
        if got != want:
            missed = [pair for pair in want if pair not in got]
            raise RetrievalMismatchError(
                "verify_retrieval: LSH top-k diverged from brute-force "
                f"signature similarity; missed {missed[:3]!r} "
                f"(k={k}, pool={len(self._signatures)})"
            )

    # ---------------------------------------------------------------- assembly
    def assemble(
        self,
        query: Query,
        k: int,
        store: Optional[ScriptStore] = None,
        verify: bool = False,
    ) -> CorpusIndex:
        """Retrieve top-*k* and build the working :class:`CorpusIndex`.

        The winners are admitted through the normal record-delta path in
        retrieval order (score-descending, content-address tie-break),
        so the assembled corpus — and everything downstream of its
        vocabulary — is a deterministic function of (pool, query, k).
        """
        return self.assemble_from_hits(self.top_k(query, k, verify=verify), store=store)

    def assemble_from_hits(
        self, hits: Sequence[RetrievedScript], store: Optional[ScriptStore] = None
    ) -> CorpusIndex:
        """A working corpus over already-retrieved hits (no reparse)."""
        if not hits:
            raise ScriptError("retrieval returned no scripts to assemble a corpus from")
        corpus = CorpusIndex(store=store if store is not None else self.store)
        for hit in hits:
            corpus.add_record(hit.record)
        return corpus

    # ------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        return {
            "dialect": self.dialect,
            "n_scripts": len(self._members),
            "n_unique_scripts": len(self._signatures),
            "n_band_buckets": len(self._bands),
            "n_schema_tokens": len(self._schema_posts),
            "queries": self.counters.queries,
            "candidates": self.counters.candidates,
            "fallbacks": self.counters.fallbacks,
        }
