"""Content-addressed script storage (the corpus subsystem's parse cache).

Corpus scripts are addressed by the sha1 of their *lemmatized* source:
two raw scripts that lemmatize to the same canonical text are the same
corpus script, parsed once.  Each stored record carries everything the
:class:`~repro.corpus.index.CorpusIndex` needs to add or remove the
script from the aggregate sufficient statistics as a pure count delta —
per-script edge/atom counters, inter-statement successor pairs in DAG
order, 1-gram template candidates, and per-signature relative-position
lists — plus the retrieval :class:`~repro.corpus.signatures
.ScriptSignature` (minhash, vocabulary fingerprint, schema tokens),
computed once here so membership changes and similarity search never
touch the AST again.

A store may be unbounded (the per-index default) or capped: the
process-wide shared store (:func:`repro.corpus.cache.shared_store`)
holds the records of *every* corpus any request touched, so it is
bounded by an :class:`~repro._lru.LRUCache` — long-lived serving
processes stay at a configurable ceiling while indexes keep their own
strong references to the records they admitted (an evicted record is
simply reparsed on next use).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from hashlib import sha1
from typing import Dict, List, Optional, Tuple, Union

from .._lru import LRUCache
from ..lang.errors import ScriptError
from ..lang.lemmatize import lemmatize
from ..lang.parser import ScriptDAG, parse_script
from .signatures import ScriptSignature, signature_from_source

__all__ = ["ScriptRecord", "ScriptStore", "StoreCounters", "content_address"]


def content_address(lemmatized_source: str) -> str:
    """sha1 hex digest of a lemmatized script — the corpus content key."""
    return sha1(lemmatized_source.encode()).hexdigest()


#: Per-1-gram template candidates inside one script, as
#: ``(first_df_source, first_any_source)``: the first enclosing statement
#: whose source starts with ``"df = "`` (None when the script has none
#: for this signature) and the first enclosing statement overall.  These
#: two slots are sufficient to replay :class:`CorpusVocabulary`'s
#: template-preference rule across any corpus ordering.
TemplateSlot = Tuple[Optional[str], str]


@dataclass(frozen=True)
class ScriptRecord:
    """One unique corpus script and its precomputed count contributions."""

    content_hash: str
    source: str  #: lemmatized source (the canonical text that was hashed)
    n_statements: int
    edge_counts: Counter
    onegram_counts: Counter
    ngram_counts: Counter
    #: inter-statement successor targets per source n-gram, preserving
    #: the script's ``inter_edges()`` order (drives Counter insertion
    #: order, hence ``most_common()`` tie order, in the rebuilt index)
    successors_by_source: Dict[str, List[str]]
    #: 1-gram signature -> template candidates (see TemplateSlot)
    template_slots: Dict[str, TemplateSlot]
    #: n-gram signature -> relative positions, in statement order
    position_lists: Dict[str, List[float]]
    #: retrieval signature (minhash / vocab / schema features), a pure
    #: function of (content_hash, source, onegram_counts)
    signature: ScriptSignature
    #: API dialect the script was lemmatized/parsed under; indexes refuse
    #: to mix records of different dialects (trailing field with a default
    #: so pre-dialect snapshots and callers keep working)
    dialect: str = "pandas"

    @classmethod
    def from_dag(
        cls, content_hash: str, source: str, dag: ScriptDAG, dialect: str = "pandas"
    ) -> "ScriptRecord":
        successors: Dict[str, List[str]] = {}
        for edge in dag.inter_edges():
            successors.setdefault(edge.source, []).append(edge.target)
        slots: Dict[str, TemplateSlot] = {}
        positions: Dict[str, List[float]] = {}
        n = max(len(dag) - 1, 1)
        for stmt in dag.statements:
            positions.setdefault(stmt.ngram.signature, []).append(stmt.index / n)
            is_df = stmt.source.startswith("df = ")
            for atom in stmt.onegrams:
                first_df, first_any = slots.get(atom.signature, (None, None))
                if first_any is None:
                    first_any = stmt.source
                if first_df is None and is_df:
                    first_df = stmt.source
                slots[atom.signature] = (first_df, first_any)
        onegram_counts = dag.onegram_counter()
        return cls(
            content_hash=content_hash,
            source=source,
            n_statements=len(dag),
            edge_counts=dag.edge_counter(),
            onegram_counts=onegram_counts,
            ngram_counts=dag.ngram_counter(),
            successors_by_source=successors,
            template_slots=slots,
            position_lists=positions,
            signature=signature_from_source(content_hash, source, onegram_counts),
            dialect=dialect,
        )


@dataclass
class StoreCounters:
    """Observable cache behaviour of one :class:`ScriptStore`."""

    hits: int = 0  #: record served without lemmatize+parse
    lemma_hits: int = 0  #: raw bytes seen before — lemmatize skipped too
    parses: int = 0  #: full lemmatize+parse (cache misses)
    failures: int = 0  #: scripts rejected by the parser
    evictions: int = 0  #: records dropped by a bounded store's LRU cap

    def snapshot(self) -> Tuple[int, int, int, int, int]:
        return (self.hits, self.lemma_hits, self.parses, self.failures, self.evictions)


class ScriptStore:
    """Content-addressed records, deduplicating identical corpus scripts.

    The store may be private to one index or shared process-wide (see
    :mod:`repro.corpus.cache`): records are immutable, so sharing is
    safe, and a leave-one-out sweep or repeated ``LucidScript``
    constructions over overlapping corpora parse each unique script once.
    A raw-text memo additionally skips lemmatization when the exact same
    bytes are offered again.

    ``capacity`` bounds the store: records evict true-LRU once the cap
    is hit (counted in ``counters.evictions``), and the raw-text memo is
    held at twice the cap.  ``None`` (the per-index default) keeps every
    record for the life of the store.

    ``dialect`` names the :class:`~repro.dialects.ApiDialect` every
    script in this store is lemmatized and parsed under; a store never
    mixes dialects (the process-wide cache keeps one store per dialect).
    """

    def __init__(self, capacity: Optional[int] = None, dialect: str = "pandas"):
        if capacity is not None and capacity < 1:
            raise ValueError(f"store capacity must be >= 1 when set, got {capacity}")
        self.capacity = capacity
        self.dialect = dialect
        if dialect == "pandas":
            # None keeps the lang layer on its historical pandas path
            self._lang_dialect = None
        else:
            from ..dialects import get_dialect

            self._lang_dialect = get_dialect(dialect)
        self._records: Union[Dict[str, ScriptRecord], LRUCache] = (
            {} if capacity is None else LRUCache(capacity)
        )
        #: sha1(raw source) -> content hash, so byte-identical re-adds
        #: skip lemmatization entirely
        self._raw_memo: Union[Dict[str, str], LRUCache] = (
            {} if capacity is None else LRUCache(2 * capacity)
        )
        self.counters = StoreCounters()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, content_hash: str) -> bool:
        return content_hash in self._records

    def get(self, content_hash: str) -> Optional[ScriptRecord]:
        return self._records.get(content_hash)

    def raw_content_hash(self, raw_sha: str) -> Optional[str]:
        """The content hash recorded for raw bytes with this sha1, if any.

        A recency-neutral probe (:meth:`LRUCache.peek` on bounded
        stores) — used by the corpus-key fast path, which must not
        perturb eviction order just by computing cache keys.
        """
        if isinstance(self._raw_memo, LRUCache):
            return self._raw_memo.peek(raw_sha)
        return self._raw_memo.get(raw_sha)

    def _remember(self, record: ScriptRecord) -> None:
        self._records[record.content_hash] = record
        if isinstance(self._records, LRUCache):
            self.counters.evictions = self._records.evictions

    def put(self, record: ScriptRecord) -> None:
        """Insert an externally built record (snapshot restore path)."""
        if record.content_hash not in self._records:
            self._remember(record)

    def get_or_parse(self, raw_source: str) -> Optional[ScriptRecord]:
        """The record for *raw_source*, parsing at most once per content.

        Returns None when the script is not parseable (mirroring
        :meth:`CorpusVocabulary.from_scripts`, which skips broken
        corpus scripts); the failure is counted, not raised.
        """
        raw_key = sha1(raw_source.encode()).hexdigest()
        content_hash = self._raw_memo.get(raw_key)
        if content_hash is not None:
            record = self._records.get(content_hash)
            if record is not None:
                self.counters.hits += 1
                self.counters.lemma_hits += 1
                return record
        try:
            lemmatized = lemmatize(raw_source, dialect=self._lang_dialect)
        except ScriptError:
            self.counters.failures += 1
            return None
        content_hash = content_address(lemmatized)
        self._raw_memo[raw_key] = content_hash
        record = self._records.get(content_hash)
        if record is not None:
            self.counters.hits += 1
            return record
        try:
            dag = parse_script(lemmatized, lemmatized=True, dialect=self._lang_dialect)
        except ScriptError:  # pragma: no cover - lemmatize already parsed
            self.counters.failures += 1
            return None
        self.counters.parses += 1
        record = ScriptRecord.from_dag(content_hash, lemmatized, dag, self.dialect)
        self._remember(record)
        return record
