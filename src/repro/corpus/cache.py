"""Process-wide warm corpus cache.

Three layers, all content-addressed:

* a shared :class:`~repro.corpus.store.ScriptStore` — every unique
  corpus script is lemmatized and parsed at most once per process, no
  matter how many indexes or ``LucidScript`` instances reference it
  (leave-one-out sweeps hit this layer N−1 times out of N).  The store
  is *bounded* (:data:`SHARED_STORE_LIMIT` records, true-LRU) so a
  long-lived serving process holds a ceiling's worth of the pool while
  live indexes keep their own strong references to admitted records;
* an LRU of assembled :class:`~repro.corpus.index.CorpusIndex` objects
  keyed by the corpus's *content addresses in corpus order* — a repeated
  ``LucidScript(corpus)`` construction over the same scripts skips even
  the counter merging and goes straight to ``to_vocabulary()``.  Keys
  are resolved through a script-text → address memo, so a warm lookup
  hashes 40 bytes per script instead of the script itself;
* a shared :class:`~repro.corpus.retrieval.RetrievalIndex` over the
  shared store — the process-wide pool that ``top_k`` queries search,
  populated once (e.g. by the harness prewarm or ``index retrieve``)
  and reused by every request.

Every layer only ever returns structures that are bit-identical to a
cold ``CorpusVocabulary.from_scripts`` build, so the cache is a pure
speed knob (``LSConfig.corpus_cache``).

The index-cache key is the *ordered* address sequence, NOT a sorted
set: corpus order is semantic (it drives successor-Counter tie order,
template preference, and position means, all of which ``to_vocabulary``
reproduces bit-identically), so two orderings of the same scripts are
genuinely different corpora and must not share a cache entry.

Thread safety: the standardization server admits jobs on its event loop
while the wave thread curates corpora, so every public function here
holds one module :class:`threading.RLock` around its read-modify-write
of the shared globals, and the LRU layers themselves are constructed
thread-safe.  Single-threaded callers pay one uncontended RLock acquire
per *cache* operation (not per script), which is noise next to a parse.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from hashlib import sha1
from typing import Dict, Optional, Sequence

from .._lru import LRUCache
from .index import CorpusIndex
from .retrieval import RetrievalIndex
from .store import ScriptStore

__all__ = [
    "CorpusCacheCounters",
    "cached_index",
    "clear_corpus_cache",
    "configure_shared_store",
    "corpus_cache_counters",
    "corpus_key",
    "shared_retrieval_index",
    "shared_store",
]

#: Assembled indexes retained for identical corpus sequences.
INDEX_CACHE_LIMIT = 8
#: Default record bound of the process-wide shared store.
SHARED_STORE_LIMIT = 4096
#: Script-text → content-address memo entries (corpus-key fast path).
ADDR_MEMO_LIMIT = 4 * SHARED_STORE_LIMIT

#: One lock for every read-modify-write of the module globals below —
#: reentrant because cached_index -> _corpus_key -> _script_address all
#: acquire it on the same thread.
_LOCK = threading.RLock()

_SHARED_CAPACITY: Optional[int] = SHARED_STORE_LIMIT
#: one shared store per dialect — corpora never mix dialects, so the
#: warm layers are partitioned by dialect name (created lazily)
_SHARED_STORES: Dict[str, ScriptStore] = {}
_SHARED_RETRIEVALS: Dict[str, RetrievalIndex] = {}
_INDEX_CACHE: LRUCache = LRUCache(INDEX_CACHE_LIMIT, thread_safe=True)
#: ``(dialect, raw script text)`` -> content address (or ``"failed:"``
#: marker).  Keyed per dialect because lemmatization is dialect-driven:
#: the same bytes can canonicalize differently under two surfaces.  The
#: str component keeps its interned hash, so a warm key computation
#: never re-hashes script bytes.
_ADDR_MEMO: LRUCache = LRUCache(ADDR_MEMO_LIMIT, thread_safe=True)


@dataclass(frozen=True)
class CorpusCacheCounters:
    """Point-in-time totals of the warm cache's activity."""

    index_hits: int
    index_misses: int
    script_hits: int
    script_parses: int
    script_failures: int
    script_evictions: int = 0  #: records dropped by the bounded shared store
    key_fast: int = 0  #: corpus-key scripts resolved from the address memo
    key_slow: int = 0  #: corpus-key scripts that had to be parsed/hashed

    def delta(self, earlier: "CorpusCacheCounters") -> "CorpusCacheCounters":
        return CorpusCacheCounters(
            index_hits=self.index_hits - earlier.index_hits,
            index_misses=self.index_misses - earlier.index_misses,
            script_hits=self.script_hits - earlier.script_hits,
            script_parses=self.script_parses - earlier.script_parses,
            script_failures=self.script_failures - earlier.script_failures,
            script_evictions=self.script_evictions - earlier.script_evictions,
            key_fast=self.key_fast - earlier.key_fast,
            key_slow=self.key_slow - earlier.key_slow,
        )


def shared_store(dialect: str = "pandas") -> ScriptStore:
    """The process-wide content-addressed parse cache (LRU-bounded).

    One store per dialect, created lazily; the default is the historical
    pandas store.
    """
    with _LOCK:
        store = _SHARED_STORES.get(dialect)
        if store is None:
            store = ScriptStore(capacity=_SHARED_CAPACITY, dialect=dialect)
            _SHARED_STORES[dialect] = store
        return store


def configure_shared_store(capacity: Optional[int]) -> ScriptStore:
    """Rebound the shared stores (None = unbounded) and reset the cache.

    Rebuilds every dialect's store at the new capacity: changing the
    bound of a live LRU mid-flight would make eviction order depend on
    when the reconfiguration happened, so the warm layers restart cold
    instead.  Returns the (fresh) pandas store.
    """
    global _SHARED_CAPACITY
    with _LOCK:
        _SHARED_CAPACITY = capacity
        clear_corpus_cache()
        return shared_store()


def shared_retrieval_index(dialect: str = "pandas") -> RetrievalIndex:
    """The process-wide retrieval pool over the shared store.

    Created lazily and empty; callers (harness prewarm, the CLI) add
    pool scripts through the normal ``add_script`` delta path, and every
    subsequent request shares the buckets.  One pool per dialect.

    Invariant: the returned index is always built over the *current*
    shared store — ``shared_retrieval_index().store is shared_store()``
    holds after any configure/clear sequence (per dialect).  A stale pin
    (e.g. a cached module-level reference created before a
    ``configure_shared_store``) is detected and rebuilt here rather than
    silently retrieving against the orphaned store.
    """
    with _LOCK:
        store = shared_store(dialect)
        retrieval = _SHARED_RETRIEVALS.get(dialect)
        if retrieval is None or retrieval.store is not store:
            retrieval = RetrievalIndex(store=store)
            _SHARED_RETRIEVALS[dialect] = retrieval
        return retrieval


def _script_address(script: str, dialect: str = "pandas") -> str:
    """The content address of one raw corpus script (memoized).

    On a memo miss the script is parsed *into the shared store*, so the
    work is not wasted: the immediately following
    ``CorpusIndex.from_scripts`` over the same sequence finds every
    record already resident.  Unparseable scripts get a stable
    ``failed:`` key derived from their raw bytes.
    """
    with _LOCK:
        memo_key = (dialect, script)
        address = _ADDR_MEMO.get(memo_key)
        if address is not None:
            _COUNTERS["key_fast"] += 1
            return address
        _COUNTERS["key_slow"] += 1
        record = shared_store(dialect).get_or_parse(script)
        if record is not None:
            address = record.content_hash
        else:
            address = "failed:" + sha1(script.encode()).hexdigest()
        _ADDR_MEMO[memo_key] = address
        return address


def _corpus_key(scripts: Sequence[str], dialect: str = "pandas") -> str:
    """Cache key of one corpus: dialect + content addresses, in order."""
    digest = sha1()
    digest.update(dialect.encode())
    digest.update(b"\x00")
    for script in scripts:
        digest.update(_script_address(script, dialect).encode())
        digest.update(b"\x00")
    digest.update(str(len(scripts)).encode())
    return digest.hexdigest()


def corpus_key(scripts: Sequence[str], dialect: str = "pandas") -> str:
    """Public content address of a corpus (ordered script addresses).

    Two corpora share a key iff their scripts are byte-identical in the
    same order *and* were prepared under the same dialect — the identity
    the server engine uses for warm-state admission and cross-request
    wave coalescing.
    """
    with _LOCK:
        return _corpus_key(scripts, dialect)


#: module-level counters that outlive individual cache objects
_COUNTERS = {"key_fast": 0, "key_slow": 0}


def cached_index(scripts: Sequence[str], dialect: str = "pandas") -> CorpusIndex:
    """The warm index for this exact corpus sequence (built on miss).

    Raises :class:`~repro.lang.errors.ScriptError` when no script
    parses, exactly like ``CorpusVocabulary.from_scripts``.  The
    returned index is shared — treat it as read-only, or derive a
    private vocabulary via ``to_vocabulary()`` (which copies).
    """
    with _LOCK:
        key = _corpus_key(scripts, dialect)
        index = _INDEX_CACHE.get(key)
        if index is not None:
            return index
        index = CorpusIndex.from_scripts(scripts, store=shared_store(dialect))
        _INDEX_CACHE[key] = index
        return index


def corpus_cache_counters() -> CorpusCacheCounters:
    with _LOCK:
        hits = parses = failures = evictions = 0
        for store in _SHARED_STORES.values():
            hits += store.counters.hits
            parses += store.counters.parses
            failures += store.counters.failures
            evictions += store.counters.evictions
        return CorpusCacheCounters(
            index_hits=_INDEX_CACHE.hits,
            index_misses=_INDEX_CACHE.misses,
            script_hits=hits,
            script_parses=parses,
            script_failures=failures,
            script_evictions=evictions,
            key_fast=_COUNTERS["key_fast"],
            key_slow=_COUNTERS["key_slow"],
        )


def clear_corpus_cache() -> None:
    """Drop every warm-cache layer (tests and memory-pressure hooks)."""
    with _LOCK:
        _SHARED_STORES.clear()
        _SHARED_RETRIEVALS.clear()
        _INDEX_CACHE.clear()
        _INDEX_CACHE.hits = 0
        _INDEX_CACHE.misses = 0
        _ADDR_MEMO.clear()
        _ADDR_MEMO.hits = 0
        _ADDR_MEMO.misses = 0
        _COUNTERS["key_fast"] = 0
        _COUNTERS["key_slow"] = 0
