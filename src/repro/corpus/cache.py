"""Process-wide warm corpus cache.

Two layers, both content-addressed:

* a shared :class:`~repro.corpus.store.ScriptStore` — every unique
  corpus script is lemmatized and parsed at most once per process, no
  matter how many indexes or ``LucidScript`` instances reference it
  (leave-one-out sweeps hit this layer N−1 times out of N);
* an LRU of assembled :class:`~repro.corpus.index.CorpusIndex` objects
  keyed by the exact raw corpus sequence — a repeated
  ``LucidScript(corpus)`` construction over the same scripts skips even
  the counter merging and goes straight to ``to_vocabulary()``.

Both layers only ever return structures that are bit-identical to a
cold ``CorpusVocabulary.from_scripts`` build, so the cache is a pure
speed knob (``LSConfig.corpus_cache``).
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha1
from typing import Sequence, Tuple

from .._lru import LRUCache
from .index import CorpusIndex
from .store import ScriptStore

__all__ = [
    "CorpusCacheCounters",
    "cached_index",
    "clear_corpus_cache",
    "corpus_cache_counters",
    "shared_store",
]

#: Assembled indexes retained for identical corpus sequences.
INDEX_CACHE_LIMIT = 8

_SHARED_STORE = ScriptStore()
_INDEX_CACHE: LRUCache = LRUCache(INDEX_CACHE_LIMIT)


@dataclass(frozen=True)
class CorpusCacheCounters:
    """Point-in-time totals of the warm cache's activity."""

    index_hits: int
    index_misses: int
    script_hits: int
    script_parses: int
    script_failures: int

    def delta(self, earlier: "CorpusCacheCounters") -> "CorpusCacheCounters":
        return CorpusCacheCounters(
            index_hits=self.index_hits - earlier.index_hits,
            index_misses=self.index_misses - earlier.index_misses,
            script_hits=self.script_hits - earlier.script_hits,
            script_parses=self.script_parses - earlier.script_parses,
            script_failures=self.script_failures - earlier.script_failures,
        )


def shared_store() -> ScriptStore:
    """The process-wide content-addressed parse cache."""
    return _SHARED_STORE


def _corpus_key(scripts: Sequence[str]) -> str:
    digest = sha1()
    for script in scripts:
        digest.update(script.encode())
        digest.update(b"\x00")
    digest.update(str(len(scripts)).encode())
    return digest.hexdigest()


def cached_index(scripts: Sequence[str]) -> CorpusIndex:
    """The warm index for this exact corpus sequence (built on miss).

    Raises :class:`~repro.lang.errors.ScriptError` when no script
    parses, exactly like ``CorpusVocabulary.from_scripts``.  The
    returned index is shared — treat it as read-only, or derive a
    private vocabulary via ``to_vocabulary()`` (which copies).
    """
    key = _corpus_key(scripts)
    index = _INDEX_CACHE.get(key)
    if index is not None:
        return index
    index = CorpusIndex.from_scripts(scripts, store=_SHARED_STORE)
    _INDEX_CACHE[key] = index
    return index


def corpus_cache_counters() -> CorpusCacheCounters:
    counters = _SHARED_STORE.counters
    return CorpusCacheCounters(
        index_hits=_INDEX_CACHE.hits,
        index_misses=_INDEX_CACHE.misses,
        script_hits=counters.hits,
        script_parses=counters.parses,
        script_failures=counters.failures,
    )


def clear_corpus_cache() -> None:
    """Drop both warm-cache layers (tests and memory-pressure hooks)."""
    global _SHARED_STORE
    _SHARED_STORE = ScriptStore()
    _INDEX_CACHE.clear()
    _INDEX_CACHE.hits = 0
    _INDEX_CACHE.misses = 0
