"""Cheap per-script retrieval signatures (minhash, vocabulary, schema).

The retrieval layer (:mod:`repro.corpus.retrieval`) needs to compare a
query against a pool of thousands of scripts without touching their ASTs.
Each script is therefore summarized once — at
:meth:`~repro.corpus.store.ScriptStore` parse time — into a
:class:`ScriptSignature` built entirely from the lemmatized canonical
text and the script's 1-gram atoms:

* **minhash** over shingles of the lemmatized statement stream (each
  statement line, each window of :data:`SHINGLE_WINDOW` consecutive
  lines, and each 1-gram atom signature), permuted by
  :data:`NUM_PERM` fixed universal-hash functions.  Banded into
  :data:`LSH_BANDS` bands of ``NUM_PERM // LSH_BANDS`` rows for
  locality-sensitive bucketing;
* a **vocabulary fingerprint** — the set of 1-gram atom signatures —
  whose exact Jaccard overlap refines ranking among candidates;
* **schema tokens** — the string constants the script touches (column
  names, CSV paths), the dataset-overlap feature that also lets a bare
  *table* act as a query;
* a **phase histogram** over the canonical preparation-phase order of
  :data:`repro.workloads.schemas.GROUPS` (impute → clean → filter →
  feature → encode → split), comparing the *shape* of two preparations.

Everything here is a pure function of the lemmatized source, so
signatures are content-addressed alongside their records: equal scripts
have equal signatures, and a signature persisted in a snapshot is
bit-identical to one recomputed from the source.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from hashlib import blake2b
from math import sqrt
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..workloads.schemas import GROUPS

__all__ = [
    "LSH_BANDS",
    "LSH_ROWS",
    "NUM_PERM",
    "SHINGLE_WINDOW",
    "ScriptSignature",
    "band_keys",
    "bands_collide",
    "minhash_signature",
    "script_shingles",
    "signature_from_source",
    "signature_similarity",
    "signature_from_dict",
    "signature_to_dict",
    "table_signature",
]

#: Number of minhash permutations per signature.
NUM_PERM = 128
#: LSH bands; ``NUM_PERM // LSH_BANDS`` rows each.  With 32 bands of 4
#: rows, two scripts with shingle Jaccard *s* share at least one band
#: with probability 1 - (1 - s^4)^32 — ≈ 0.87 at s = 0.5 and ≈ 1 at
#: s = 0.7, while near-boilerplate overlap (s ≈ 0.2) collides only ≈ 5%
#: of the time, keeping candidate sets small on self-similar pools.
#: Same-dataset scripts reach each other through the schema postings
#: regardless, so sharp banding costs no dataset-mate recall.
LSH_BANDS = 32
LSH_ROWS = NUM_PERM // LSH_BANDS
#: Statement-window width for positional shingles.
SHINGLE_WINDOW = 3

_MERSENNE = (1 << 61) - 1

#: Fixed universal-hash parameters: the permutation family is part of the
#: signature format (a different seed would change every persisted
#: minhash), so it is drawn once from a named constant seed.
_PERM_SEED = 0x4C53  # "LS"
_rng = random.Random(_PERM_SEED)
_PERMS: Tuple[Tuple[int, int], ...] = tuple(
    (_rng.randrange(1, _MERSENNE), _rng.randrange(0, _MERSENNE))
    for _ in range(NUM_PERM)
)
del _rng

#: Preparation phases in canonical order (derived from workloads.schemas).
_PHASES: Tuple[str, ...] = tuple(sorted(GROUPS, key=GROUPS.__getitem__))

#: Operation markers assigning a lemmatized statement to a phase.  The
#: first phase (in GROUPS order) with a matching marker wins.
_PHASE_MARKERS: Dict[str, Tuple[str, ...]] = {
    "impute": ("fillna(", "interpolate("),
    "clean": (
        "dropna(",
        "drop_duplicates(",
        ".replace(",
        ".drop(",
        ".rename(",
        ".astype(",
        ".strip(",
    ),
    "filter": (".query(",),
    "feature": (".apply(", ".map(", "cut(", "qcut(", ".assign(", ".rolling("),
    "encode": ("get_dummies(", "factorize(", "LabelEncoder"),
    "split": ("train_test_split(",),
}

_STRING_TOKEN = re.compile(r"'([^']+)'")
_COMPARATOR = re.compile(r"[<>]=?|[!=]=")


@dataclass(frozen=True)
class ScriptSignature:
    """The cheap retrieval summary of one script (or one query table)."""

    content_hash: str
    #: NUM_PERM minhash values; empty for table queries (no statements).
    minhash: Tuple[int, ...]
    #: 1-gram atom signatures appearing in the script.
    vocab: frozenset
    #: string constants touched (column names, CSV paths).
    schema: frozenset
    #: normalized phase histogram, in GROUPS order.
    groups: Tuple[float, ...]


def _statement_phase(line: str) -> str:
    """The preparation phase of one lemmatized statement ('' if none)."""
    for phase in _PHASES:
        if any(marker in line for marker in _PHASE_MARKERS.get(phase, ())):
            return phase
    # subscript masks (`df = df[df['Age'] < 18]`) are the filter idiom
    if "[" in line and _COMPARATOR.search(line):
        return "filter"
    if line.startswith(("y = ", "X = ")):
        return "split"
    return ""


def script_shingles(source: str, onegrams: Iterable[str]) -> Set[str]:
    """The shingle set a script's minhash summarizes.

    Three domains, kept disjoint by prefix: statement lines (``s1``),
    windows of :data:`SHINGLE_WINDOW` consecutive statements (``s3`` —
    the positional structure), and 1-gram atom signatures (``a1`` — so
    operation-level overlap registers even when no whole statement is
    shared).
    """
    lines = [line for line in source.splitlines() if line.strip()]
    shingles = {f"s1\x00{line}" for line in lines}
    if len(lines) >= SHINGLE_WINDOW:
        for start in range(len(lines) - SHINGLE_WINDOW + 1):
            shingles.add("s3\x00" + "\x00".join(lines[start:start + SHINGLE_WINDOW]))
    elif lines:
        shingles.add("s3\x00" + "\x00".join(lines))
    shingles.update(f"a1\x00{sig}" for sig in onegrams)
    return shingles


def minhash_signature(shingles: Set[str]) -> Tuple[int, ...]:
    """NUM_PERM-permutation minhash of a shingle set (empty set → ``()``)."""
    if not shingles:
        return ()
    hashed = [
        int.from_bytes(blake2b(s.encode(), digest_size=8).digest(), "big")
        for s in shingles
    ]
    return tuple(
        min((a * h + b) % _MERSENNE for h in hashed) for a, b in _PERMS
    )


def band_keys(minhash: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """The LSH bucket keys of one minhash: ``(band, row values...)``."""
    if not minhash:
        return []
    return [
        (band,) + tuple(minhash[band * LSH_ROWS:(band + 1) * LSH_ROWS])
        for band in range(LSH_BANDS)
    ]


def _phase_histogram(lines: Sequence[str]) -> Tuple[float, ...]:
    counts = {phase: 0 for phase in _PHASES}
    total = 0
    for line in lines:
        phase = _statement_phase(line)
        if phase:
            counts[phase] += 1
            total += 1
    if not total:
        return tuple(0.0 for _ in _PHASES)
    return tuple(counts[phase] / total for phase in _PHASES)


def signature_from_source(
    content_hash: str, source: str, onegrams: Iterable[str]
) -> ScriptSignature:
    """Compute the signature of one lemmatized script.

    Pure in ``(content_hash, source, onegrams)`` — recomputing from a
    persisted record yields a bit-identical signature.
    """
    onegram_list = list(onegrams)
    lines = [line for line in source.splitlines() if line.strip()]
    schema = frozenset(
        token for sig in onegram_list for token in _STRING_TOKEN.findall(sig)
    )
    return ScriptSignature(
        content_hash=content_hash,
        minhash=minhash_signature(script_shingles(source, onegram_list)),
        vocab=frozenset(onegram_list),
        schema=schema,
        groups=_phase_histogram(lines),
    )


def table_signature(columns: Iterable[str]) -> ScriptSignature:
    """A query signature for a bare table: schema tokens only.

    A table has no statements, so its minhash/vocab are empty and
    similarity reduces to schema overlap — "scripts that touch my
    columns".
    """
    return ScriptSignature(
        content_hash="",
        minhash=(),
        vocab=frozenset(),
        schema=frozenset(str(c) for c in columns),
        groups=tuple(0.0 for _ in _PHASES),
    )


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if not intersection:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def _agreement(a: Tuple[int, ...], b: Tuple[int, ...]) -> float:
    if not a or not b:
        return 0.0
    return sum(1 for x, y in zip(a, b) if x == y) / NUM_PERM


def bands_collide(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Whether two minhashes share at least one full LSH band.

    This is *exactly* the event that lands two scripts in a common band
    bucket of the :class:`~repro.corpus.retrieval.RetrievalIndex` — it
    is the retrievability predicate, and :func:`signature_similarity`
    gates on it so that positive similarity implies retrievability.
    """
    if not a or not b:
        return False
    return any(
        a[start:start + LSH_ROWS] == b[start:start + LSH_ROWS]
        for start in range(0, NUM_PERM, LSH_ROWS)
    )


def _cosine(a: Tuple[float, ...], b: Tuple[float, ...]) -> float:
    dot = sum(x * y for x, y in zip(a, b))
    if not dot:
        return 0.0
    return dot / (sqrt(sum(x * x for x in a)) * sqrt(sum(y * y for y in b)))


def signature_similarity(a: ScriptSignature, b: ScriptSignature) -> float:
    """Similarity in [0, 1]; the exact comparator LSH accelerates.

    Gated on the two retrievable events: a pair sharing neither a full
    LSH band (:func:`bands_collide`) nor a schema token scores exactly
    0.  The gate makes retrieval *exact by construction* — every
    positively-scored script lives in the query's band buckets or
    schema postings, so the candidate set the
    :class:`~repro.corpus.retrieval.RetrievalIndex` scores contains the
    complete positive-similarity set and its top-k equals the
    brute-force top-k (the invariant ``verify_retrieval`` audits).
    Vocabulary overlap and the phase histogram only *refine* ranking
    among reachable candidates.
    """
    s = _jaccard(a.schema, b.schema)
    if s == 0.0 and not bands_collide(a.minhash, b.minhash):
        return 0.0
    m = _agreement(a.minhash, b.minhash)
    v = _jaccard(a.vocab, b.vocab)
    g = _cosine(a.groups, b.groups)
    return 0.55 * m + 0.20 * v + 0.15 * s + 0.10 * g


def signature_to_dict(signature: ScriptSignature) -> dict:
    """JSON-serializable form (sets stored sorted for stable snapshots)."""
    return {
        "minhash": list(signature.minhash),
        "vocab": sorted(signature.vocab),
        "schema": sorted(signature.schema),
        "groups": list(signature.groups),
    }


def signature_from_dict(content_hash: str, payload: dict) -> ScriptSignature:
    return ScriptSignature(
        content_hash=content_hash,
        minhash=tuple(int(v) for v in payload["minhash"]),
        vocab=frozenset(payload["vocab"]),
        schema=frozenset(payload["schema"]),
        groups=tuple(float(v) for v in payload["groups"]),
    )
