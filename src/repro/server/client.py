"""Blocking client for the standardization server (CLI + tests).

The client speaks the line-delimited JSON protocol over a unix socket
or TCP.  Two usage styles:

* request/response — :meth:`ServerClient.request` sends one message and
  waits for its matching response;
* pipelined — :meth:`ServerClient.submit` many requests first, then
  :meth:`ServerClient.collect` the responses by id.  Pipelining is what
  lets the engine coalesce concurrent same-corpus jobs into shared
  dispatch waves, so it is the throughput mode.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from . import protocol

__all__ = ["ServerClient", "ServerError"]


class ServerError(Exception):
    """A non-retryable error response, raised by the convenience ops.

    ``kind`` and ``retryable`` mirror the protocol error object so
    callers can branch without re-parsing the message.
    """

    def __init__(self, kind: str, message: str, retryable: bool = False):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


class ServerClient:
    """One connection to a running standardization server."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = 300.0,
    ):
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        elif host is not None and port is not None:
            sock = socket.create_connection((host, port), timeout=timeout)
        else:
            raise ValueError("connect with socket_path or with host+port")
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._next_id = 0
        #: responses that arrived while waiting for a different id
        self._inbox: Dict[Any, Dict[str, Any]] = {}

    # ------------------------------------------------------------------ wire
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _allocate_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    # ------------------------------------------------------------- pipelining
    def submit(self, message: Dict[str, Any]) -> Any:
        """Send one request without waiting; returns its id."""
        message = dict(message)
        if "id" not in message:
            message["id"] = self._allocate_id()
        self._sock.sendall(protocol.encode(message))
        return message["id"]

    def collect(self, request_id: Any) -> Dict[str, Any]:
        """The response for *request_id* (reads until it arrives)."""
        while request_id not in self._inbox:
            response = self._read_response()
            self._inbox[response.get("id")] = response
        return self._inbox.pop(request_id)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and wait for its response."""
        return self.collect(self.submit(message))

    # ------------------------------------------------------------ convenience
    def _job(
        self,
        op: str,
        params: Dict[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": op, "params": params}
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("kind", "internal"),
                error.get("message", "server error"),
                bool(error.get("retryable")),
            )
        return response["result"]

    def standardize(self, **params) -> Dict[str, Any]:
        return self._job("standardize", params, params.pop("deadline_s", None))

    def score(self, **params) -> Dict[str, Any]:
        return self._job("score", params, params.pop("deadline_s", None))

    def explain(self, **params) -> Dict[str, Any]:
        return self._job("explain", params, params.pop("deadline_s", None))

    def detect_leakage(self, **params) -> Dict[str, Any]:
        return self._job("detect_leakage", params, params.pop("deadline_s", None))

    def ping(self) -> bool:
        response = self.request({"op": "ping"})
        return bool(response.get("ok"))

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        return response["result"]

    def shutdown(self) -> bool:
        """Ask the server to drain gracefully (acknowledged before it
        starts, so the response always arrives)."""
        response = self.request({"op": "shutdown"})
        return bool(response.get("ok"))

    def submit_jobs(self, messages: List[Dict[str, Any]]) -> List[Any]:
        """Pipeline a batch of requests; returns their ids in order."""
        return [self.submit(message) for message in messages]

    def collect_jobs(self, ids: List[Any]) -> List[Dict[str, Any]]:
        """The full response envelopes for *ids*, in the same order."""
        return [self.collect(request_id) for request_id in ids]
