"""repro.server — standardization-as-a-service.

Every fast path in this repo — prefix-resumable executors, prepared
intents, the content-addressed corpus/retrieval indexes, resident shard
workers — amortizes within one process.  A one-shot CLI run throws that
warm state away on exit; a long-lived daemon turns each per-process
cache into a cross-request throughput win.  This package is that
daemon:

* :mod:`repro.server.protocol` — the line-delimited JSON wire format
  (one request per line, one response per line, matched by ``id``);
* :mod:`repro.server.jobs` — the deterministic job runner shared by the
  warm server and the cold one-shot replay (the bit-identity anchor);
* :mod:`repro.server.queue` — bounded admission, per-request deadlines,
  oldest-first scheduling with per-corpus fairness;
* :mod:`repro.server.engine` — the asyncio request engine: warm
  per-corpus state with LRU admission, cross-request batch coalescing
  into shared dispatch waves, ``ServerStats``, graceful SIGTERM drain;
* :mod:`repro.server.client` — a blocking socket client for scripting,
  tests, and the ``repro client`` subcommand;
* :mod:`repro.server.oneshot` — the cold per-request process the warm
  path is benchmarked (and audited) against;
* :mod:`repro.server.verify` — the ``verify_server`` audit: replay a
  served response in a fresh process and require byte-identical JSON.
"""

from .client import ServerClient, ServerError
from .engine import (
    ServerConfig,
    ServerStats,
    ServerThread,
    StandardizationServer,
    WarmRegistry,
)
from .jobs import JobError, execute_job, normalize_job, system_key
from .protocol import decode, encode, error_response, ok_response
from .queue import Job, JobQueue, QueueFullError
from .verify import ServerMismatchError, audit_job

__all__ = [
    "Job",
    "JobError",
    "JobQueue",
    "QueueFullError",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerMismatchError",
    "ServerStats",
    "ServerThread",
    "StandardizationServer",
    "WarmRegistry",
    "audit_job",
    "decode",
    "encode",
    "error_response",
    "execute_job",
    "normalize_job",
    "ok_response",
    "system_key",
]
