"""Deterministic job execution shared by the warm server and cold replay.

A *job* is the canonical, self-contained description of one request:
``{"op": ..., "params": {...}}`` with the corpus inlined as script
texts, the intent normalized to an explicit descriptor, and the config
reduced to the explicitly-requested :class:`~repro.core.LSConfig`
overrides.  Canonicalization happens once at admission
(:func:`normalize_job`); after that the same job dict drives

* the warm path — :func:`execute_job` against a registry-held
  :class:`~repro.core.LucidScript` whose corpus index, prefix
  snapshots, and prepared intents survive across requests — and
* the cold path — the same function in a fresh
  :mod:`repro.server.oneshot` process with every cache empty.

Both produce the same result dict byte-for-byte, because every warm
structure in this repo is bit-identical to its cold rebuild by
construction; the ``verify_server`` audit holds the server to exactly
that claim per response.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from hashlib import sha1
from typing import Any, Dict, List, Optional

from ..core import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    StandardizationError,
    TableJaccardIntent,
)
from ..core.explain import explain_result
from ..lang import ScriptError
from .protocol import JOB_OPS, canonical

__all__ = [
    "JobError",
    "ResolvedJob",
    "build_system",
    "execute_job",
    "normalize_job",
    "resolve_job",
    "system_key",
]

#: LSConfig fields a request may override per job.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(LSConfig))


class JobError(Exception):
    """A job failed with a deterministic, client-visible verdict.

    ``kind`` maps onto the protocol error taxonomy (``bad_request``,
    ``standardization``); the message is part of the deterministic
    payload, so it must not embed timing, pids, or paths that differ
    between the warm server and a cold replay.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobError("bad_request", message)


def _normalize_intent(op: str, params: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The explicit intent descriptor for one job (None = no intent).

    Accepts either an explicit ``intent`` object or the CLI-style
    ``target`` / ``tau_m`` / ``tau_j`` shorthand, mirroring
    ``repro.cli._make_intent``: a target switches to the
    model-performance measure, otherwise table Jaccard applies.
    ``score`` never uses an intent (scoring has no constraints).
    """
    if op == "score":
        return None
    intent = params.get("intent")
    if intent is not None:
        _require(isinstance(intent, dict), "'intent' must be an object")
        kind = intent.get("kind")
        if kind in (None, "none"):
            return None
        if kind == "table_jaccard":
            tau = float(intent.get("tau", 0.9))
            return {"kind": "table_jaccard", "tau": tau}
        if kind == "model_performance":
            _require(
                isinstance(intent.get("target"), str),
                "model_performance intent requires a 'target' column",
            )
            return {
                "kind": "model_performance",
                "target": intent["target"],
                "tau": float(intent.get("tau", 1.0)),
            }
        raise JobError("bad_request", f"unknown intent kind {kind!r}")
    if params.get("target"):
        return {
            "kind": "model_performance",
            "target": params["target"],
            "tau": float(params.get("tau_m", 1.0)),
        }
    return {"kind": "table_jaccard", "tau": float(params.get("tau_j", 0.9))}


def _normalize_corpus(params: Dict[str, Any]) -> List[str]:
    """Resolve ``corpus`` (inline texts) or ``corpus_dir`` into script
    texts — *at admission time*, so the canonical job is self-contained
    and a later audit replay cannot diverge because a file changed."""
    corpus = params.get("corpus")
    corpus_dir = params.get("corpus_dir")
    if corpus is not None:
        _require(
            isinstance(corpus, list)
            and corpus
            and all(isinstance(s, str) for s in corpus),
            "'corpus' must be a non-empty list of script texts",
        )
        return list(corpus)
    _require(
        isinstance(corpus_dir, str) and bool(corpus_dir),
        "one of 'corpus' or 'corpus_dir' is required",
    )
    from ..cli import _read_corpus  # lazy: cli imports widely

    try:
        return _read_corpus(corpus_dir)
    except SystemExit as exc:  # _read_corpus's empty-directory verdict
        raise JobError("bad_request", str(exc)) from exc


def _normalize_config(params: Dict[str, Any]) -> Dict[str, Any]:
    overrides = params.get("config") or {}
    _require(isinstance(overrides, dict), "'config' must be an object")
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    _require(not unknown, f"unknown config fields: {', '.join(unknown)}")
    try:  # validate values eagerly so admission rejects, not the wave
        LSConfig(**overrides)
    except (TypeError, ValueError) as exc:
        raise JobError("bad_request", f"invalid config: {exc}") from exc
    return {name: overrides[name] for name in sorted(overrides)}


def normalize_job(raw: Dict[str, Any]) -> Dict[str, Any]:
    """Validate one raw request into the canonical self-contained job.

    Raises :class:`JobError` (kind ``bad_request``) on any malformed
    input; the returned dict is what the queue holds, the wave executes,
    and the audit replays.
    """
    _require(isinstance(raw, dict), "request must be a JSON object")
    op = raw.get("op")
    _require(op in JOB_OPS, f"op must be one of {', '.join(JOB_OPS)}")
    params = raw.get("params") or {}
    _require(isinstance(params, dict), "'params' must be an object")
    script = params.get("script")
    _require(
        isinstance(script, str) and bool(script.strip()),
        "'script' (the input script text) is required",
    )
    data_dir = params.get("data_dir")
    _require(
        data_dir is None or isinstance(data_dir, str),
        "'data_dir' must be a string path",
    )
    return {
        "op": op,
        "params": {
            "script": script,
            "corpus": _normalize_corpus(params),
            "data_dir": data_dir,
            "intent": _normalize_intent(op, params),
            "config": _normalize_config(params),
        },
    }


# --------------------------------------------------------------------------
# Resolution: canonical job -> (system key, constructor inputs)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedJob:
    """One job's constructor inputs plus its warm-state address."""

    job: Dict[str, Any]
    key: str  #: content address of (corpus, data_dir, intent, config)
    scripts: List[str]
    data_dir: Optional[str]
    config: LSConfig
    intent: Optional[object]

    @property
    def corpus_key(self) -> str:
        return self.key.split(":", 1)[0]


def _build_intent(descriptor: Optional[Dict[str, Any]]):
    if descriptor is None:
        return None
    if descriptor["kind"] == "table_jaccard":
        return TableJaccardIntent(tau=descriptor["tau"])
    return ModelPerformanceIntent(
        target=descriptor["target"], tau=descriptor["tau"]
    )


def resolve_job(job: Dict[str, Any]) -> ResolvedJob:
    """Resolve a canonical job into constructor inputs and its key.

    The key is ``<corpus content address>:<request-shape digest>`` —
    two jobs share warm state iff their corpus scripts (by content, in
    order), data directory, intent, and config overrides all match.
    The corpus half doubles as the queue's coalescing group: requests
    against the same corpus ride the same dispatch wave.
    """
    from ..corpus import corpus_key  # lazy: avoid import cycles at startup

    params = job["params"]
    scripts = params["corpus"]
    shape = sha1(
        canonical(
            {
                "data_dir": params["data_dir"],
                "intent": params["intent"],
                "config": params["config"],
            }
        ).encode()
    ).hexdigest()
    dialect = params["config"].get("dialect", "pandas")
    key = f"{corpus_key(scripts, dialect)}:{shape}"
    return ResolvedJob(
        job=job,
        key=key,
        scripts=scripts,
        data_dir=params["data_dir"],
        config=LSConfig(**params["config"]),
        intent=_build_intent(params["intent"]),
    )


def build_system(resolved: ResolvedJob) -> LucidScript:
    """A fresh :class:`LucidScript` for one resolved job (the offline
    phase runs here — through the process-wide warm corpus cache)."""
    try:
        return LucidScript(
            resolved.scripts,
            data_dir=resolved.data_dir,
            intent=resolved.intent,
            config=resolved.config,
        )
    except ScriptError as exc:
        raise JobError("bad_request", f"corpus failed to curate: {exc}") from exc


# --------------------------------------------------------------------------
# Execution: the one deterministic runner both paths share
# --------------------------------------------------------------------------


def _standardize_result(result) -> Dict[str, Any]:
    return {
        "changed": result.changed,
        "improvement": result.improvement,
        "intent_delta": result.intent_delta,
        "intent_satisfied": result.intent_satisfied,
        "output_script": result.output_script,
        "re_after": result.re_after,
        "re_before": result.re_before,
        "transformations": [t.describe() for t in result.transformations],
    }


def execute_job(
    job: Dict[str, Any], system: Optional[LucidScript] = None
) -> Dict[str, Any]:
    """Run one canonical job and return its deterministic result dict.

    *system* is the warm registry's pinned instance on the server path;
    None (the cold path) builds a fresh one.  Result dicts contain only
    values that are bit-identical between those two paths — no timings,
    no cache counters, no SearchStats.
    """
    if system is None:
        system = build_system(resolve_job(job))
    op = job["op"]
    script = job["params"]["script"]
    try:
        if op == "score":
            return {"score": system.score(script)}
        result = system.standardize(script)
    except StandardizationError as exc:
        raise JobError("standardization", str(exc)) from exc
    except ScriptError as exc:
        raise JobError("bad_request", f"input script failed to parse: {exc}") from exc
    if op == "standardize":
        return _standardize_result(result)
    if op == "explain":
        explanations = explain_result(result, system.vocabulary)
        return {
            "explanations": [e.render() for e in explanations],
            "improvement": result.improvement,
            "output_script": result.output_script,
        }
    # detect_leakage: flag removed (out-of-the-ordinary) statements with
    # their corpus prevalence, exactly like the CLI's detect-leakage
    flagged = [
        {
            "prevalence": system.vocabulary.statement_frequency(line),
            "statement": line,
        }
        for line in result.removed_statements()
    ]
    return {"flagged": flagged, "output_script": result.output_script}


def system_key(job: Dict[str, Any]) -> str:
    """The warm-state address of one canonical job (see resolve_job)."""
    return resolve_job(job).key
