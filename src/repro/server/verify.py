"""verify_server: replay warm responses cold and require byte-identity.

The server's whole value is serving from warm state — shared corpus
index, prefix snapshots, prepared intents, resident workers — so its
correctness claim must be checked against the one thing warmth could
corrupt: the response.  :func:`audit_job` replays a job in a **fresh
one-shot process** (empty caches, new interpreter) and compares the
deterministic slice of both responses (:func:`protocol.parity_payload`)
as canonical JSON text.  Any byte of difference raises
:class:`ServerMismatchError`; the engine converts that into an
``audit_mismatch`` error response instead of shipping the unverified
result, mirroring the repo's other ``verify_*`` audit modes.

Only deterministic responses are auditable: ``ok`` results and the
deterministic error verdicts (``standardization``, ``bad_request``).
Admission errors (queue_full / draining / deadline) describe the
server's momentary state, not the job, and deadline-clamped jobs are
excluded by the engine because a wall-clock budget can legitimately
fire on one side only.
"""

from __future__ import annotations

from typing import Any, Dict

from . import protocol
from .oneshot import run_oneshot_process

__all__ = ["ServerMismatchError", "audit_job", "auditable"]

#: Error kinds with deterministic payloads (replayable verdicts).
_DETERMINISTIC_ERROR_KINDS = frozenset({"standardization", "bad_request"})


class ServerMismatchError(AssertionError):
    """A warm server response diverged from its cold one-shot replay."""


def auditable(response: Dict[str, Any]) -> bool:
    """Whether *response* has a deterministic payload worth replaying."""
    if response.get("ok"):
        return True
    error = response.get("error") or {}
    return error.get("kind") in _DETERMINISTIC_ERROR_KINDS


def audit_job(job: Dict[str, Any], response: Dict[str, Any]) -> None:
    """Replay *job* cold and require byte-identical deterministic payloads.

    No-op for non-auditable responses.  Raises
    :class:`ServerMismatchError` on any divergence.
    """
    if not auditable(response):
        return
    request_id = response.get("id")
    cold = run_oneshot_process(job, request_id=request_id)
    warm_text = protocol.canonical(protocol.parity_payload(response))
    cold_text = protocol.canonical(protocol.parity_payload(cold))
    if warm_text != cold_text:
        raise ServerMismatchError(
            "verify_server: warm response diverged from cold replay for "
            f"request {request_id!r} (op {job.get('op')!r}):\n"
            f"  warm: {warm_text[:500]}\n"
            f"  cold: {cold_text[:500]}"
        )
