"""Bounded admission, deadlines, and per-corpus wave scheduling.

The queue is a plain (non-async) data structure driven exclusively by
the engine's event loop — single-threaded access by construction, so it
needs no lock.  It holds canonical jobs grouped by their *coalescing
key* (the corpus half of the job's system key): when the scheduler asks
for work it hands back one **wave** — up to ``max_wave`` jobs that all
target the same warm corpus state, in arrival order.

Scheduling policy — oldest-first with per-corpus fairness:

* the next wave is always the group whose **head job has waited
  longest** (strict FIFO across groups, so no corpus can be starved);
* a wave never exceeds ``max_wave`` jobs, so a corpus with a deep
  backlog yields the floor after each wave instead of monopolizing the
  executor.

Admission control:

* the queue is bounded (``limit``): when full, :meth:`JobQueue.admit`
  raises :class:`QueueFullError` and the engine answers with a
  *retryable* ``queue_full`` error instead of buffering unboundedly;
* each job may carry a deadline (its SLA, measured from admission).  A
  job whose deadline expires while still queued is handed back by
  :meth:`pop_expired` without ever running; a job dispatched with time
  remaining has the remainder threaded into the existing exec-budget
  machinery (``LSConfig.exec_timeout_s``) by the engine, so a
  pathological candidate script cannot blow the SLA from inside the
  search either.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Job", "JobQueue", "QueueFullError"]


class QueueFullError(Exception):
    """Admission refused: the bounded job queue is at capacity."""


@dataclass
class Job:
    """One admitted request, from admission to response."""

    request_id: Any
    job: Dict[str, Any]  #: canonical job dict (see jobs.normalize_job)
    group_key: str  #: coalescing key — jobs sharing it ride one wave
    system_key: str  #: full warm-state address (corpus + request shape)
    future: Any  #: asyncio.Future the connection handler awaits
    seq: int = 0  #: arrival order (assigned by the queue)
    enqueued_at: float = 0.0  #: monotonic admission timestamp
    deadline_s: Optional[float] = None  #: SLA measured from admission
    resolved: Any = None  #: jobs.ResolvedJob (constructor inputs, warm key)

    def remaining_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds of SLA left (None = no deadline)."""
        if self.deadline_s is None:
            return None
        now = time.monotonic() if now is None else now
        return self.deadline_s - (now - self.enqueued_at)

    @property
    def op(self) -> str:
        return self.job["op"]


class JobQueue:
    """The bounded, fairness-aware job queue (event-loop-only access)."""

    def __init__(self, limit: int = 64):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        #: group key -> FIFO of jobs; OrderedDict only for stable iteration
        self._groups: "OrderedDict[str, Deque[Job]]" = OrderedDict()
        self._depth = 0
        self._seq = 0
        self.peak_depth = 0

    # ---------------------------------------------------------------- admission
    def admit(self, job: Job) -> None:
        """Accept one job or raise :class:`QueueFullError`."""
        if self._depth >= self.limit:
            raise QueueFullError(
                f"job queue is at capacity ({self.limit} jobs); retry later"
            )
        self._seq += 1
        job.seq = self._seq
        job.enqueued_at = time.monotonic()
        self._groups.setdefault(job.group_key, deque()).append(job)
        self._depth += 1
        self.peak_depth = max(self.peak_depth, self._depth)

    @property
    def depth(self) -> int:
        return self._depth

    def __len__(self) -> int:
        return self._depth

    # --------------------------------------------------------------- scheduling
    def _drop(self, group_key: str, job: Job) -> None:
        group = self._groups[group_key]
        group.remove(job)
        if not group:
            del self._groups[group_key]
        self._depth -= 1

    def pop_expired(self, now: Optional[float] = None) -> List[Job]:
        """Jobs whose SLA expired while queued (removed, oldest first)."""
        now = time.monotonic() if now is None else now
        expired: List[Job] = []
        for group_key in list(self._groups):
            for job in list(self._groups[group_key]):
                remaining = job.remaining_s(now)
                if remaining is not None and remaining <= 0:
                    self._drop(group_key, job)
                    expired.append(job)
        expired.sort(key=lambda job: job.seq)
        return expired

    def take_wave(self, max_wave: int) -> List[Job]:
        """The next wave: up to *max_wave* jobs from the group whose
        head has waited longest, in arrival order.  Empty when idle."""
        if not self._groups or max_wave < 1:
            return []
        group_key = min(self._groups, key=lambda k: self._groups[k][0].seq)
        group = self._groups[group_key]
        wave: List[Job] = []
        while group and len(wave) < max_wave:
            wave.append(group.popleft())
            self._depth -= 1
        if not group:
            del self._groups[group_key]
        return wave

    def drain(self) -> List[Job]:
        """Remove and return every queued job (oldest first) — the
        graceful-shutdown path rejects these with a retryable error."""
        pending = [job for group in self._groups.values() for job in group]
        pending.sort(key=lambda job: job.seq)
        self._groups.clear()
        self._depth = 0
        return pending
