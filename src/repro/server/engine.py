"""The asyncio request engine: warm state, coalesced waves, graceful drain.

Execution model
---------------
The event loop owns all I/O and the queue; one dedicated worker thread
owns all job execution.  The scheduler pulls **waves** — batches of
queued jobs that target the same corpus (see
:class:`~repro.server.queue.JobQueue`) — and runs each wave to
completion on that thread before taking the next.  Three properties
fall out:

* **determinism** — jobs execute one at a time in admission order
  within their wave, against caches whose contents are bit-identical to
  a cold build by construction, so every response replays byte-for-byte
  in a fresh process (the ``verify_server`` audit);
* **coalescing** — all jobs of a wave share one warm
  :class:`~repro.core.LucidScript`: one corpus curation, one prepared
  intent, one prefix-snapshot pool, and (with ``parallel_workers > 1``)
  the same resident :class:`~repro.sandbox.shards.ShardEngine` whose
  worker caches stay hot across the whole wave's candidate dispatches;
* **isolation** — a slow search never wedges the loop; admission,
  control ops, and drain stay responsive while a wave runs.

Warm-state lifecycle
--------------------
:class:`WarmRegistry` pins one ``LucidScript`` per *system key* — the
content address of (corpus scripts in order, data_dir, intent, config
overrides) — under LRU admission.  A warm hit reuses the curated corpus
index, the incremental executor's prefix snapshots, and the prepared
intent cache built by earlier requests; eviction just drops the pin
(the process-wide corpus cache underneath keeps its own bounds).  Warm
state assumes the dataset files under ``data_dir`` are immutable for
the server's lifetime, matching the corpus-snapshot staleness contract.

Admission and SLA
-----------------
The queue is bounded (reject with retryable ``queue_full``); a request
``deadline_s`` is its SLA from admission: expired-while-queued jobs are
answered with a retryable ``deadline`` error without running, and a job
dispatched with time left has the remainder threaded into the existing
exec-budget machinery (``LSConfig.exec_timeout_s``) so no single
candidate script can burn more than what is left of the SLA.

Drain
-----
On SIGTERM/SIGINT (or the ``shutdown`` op): stop admitting (retryable
``draining`` errors), let the in-flight wave finish, reject everything
still queued, ``kill_worker_pool()``, close the listeners, remove the
socket file.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from .._lru import LRUCache
from ..core import LucidScript
from ..sandbox import kill_worker_pool
from . import jobs as jobs_mod
from . import protocol
from .queue import Job, JobQueue, QueueFullError
from .verify import ServerMismatchError, audit_job

__all__ = [
    "ServerConfig",
    "ServerStats",
    "ServerThread",
    "StandardizationServer",
    "WarmRegistry",
]


@dataclass
class ServerConfig:
    """Tunable knobs of one server instance (CLI: ``repro serve``)."""

    socket_path: Optional[str] = None  #: unix socket to listen on
    host: Optional[str] = None  #: optional TCP host (with ``port``)
    port: int = 0  #: TCP port (0 = ephemeral, see ``tcp_address``)
    queue_limit: int = 64  #: bounded admission: max queued jobs
    warm_limit: int = 8  #: warm systems pinned (LRU admission)
    wave_limit: int = 8  #: max jobs coalesced into one dispatch wave
    audit: bool = False  #: verify_server: replay every response cold
    default_deadline_s: Optional[float] = None  #: SLA when requests set none
    stats_window: int = 512  #: latency samples retained for p50/p95
    install_signal_handlers: bool = True  #: SIGTERM/SIGINT -> drain

    def __post_init__(self):
        if self.socket_path is None and self.host is None:
            raise ValueError("server needs a unix socket path and/or a TCP host")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.warm_limit < 1:
            raise ValueError(f"warm_limit must be >= 1, got {self.warm_limit}")
        if self.wave_limit < 1:
            raise ValueError(f"wave_limit must be >= 1, got {self.wave_limit}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive when set")


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class ServerStats:
    """Cross-request serving counters (the ``stats`` control op).

    Mutated from both the event loop (admission counters) and the wave
    thread (job counters), so every update goes through one lock.
    """

    def __init__(self, window: int = 512):
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self._latencies: Deque[Tuple[str, float]] = deque(maxlen=window)
        self.jobs = Counter()  #: completed jobs per op
        self.errors = Counter()  #: error responses per error kind
        self.admitted = 0
        self.queue_rejections = 0
        self.drain_rejections = 0
        self.deadline_misses = 0
        self.waves = 0
        self.coalesced_waves = 0  #: waves that served > 1 job
        self.coalesced_jobs = 0  #: jobs that shared their wave
        self.warm_hits = 0
        self.warm_misses = 0
        self.audits = 0
        self.audit_failures = 0

    def record_admission(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_rejection(self, kind: str) -> None:
        with self._lock:
            if kind == "queue_full":
                self.queue_rejections += 1
            elif kind == "draining":
                self.drain_rejections += 1
            self.errors[kind] += 1

    def record_wave(self, size: int) -> None:
        with self._lock:
            self.waves += 1
            if size > 1:
                self.coalesced_waves += 1
                self.coalesced_jobs += size

    def record_job(
        self,
        op: str,
        latency_s: float,
        error_kind: Optional[str],
        warm_hit: Optional[bool],
    ) -> None:
        with self._lock:
            self.jobs[op] += 1
            self._latencies.append((op, latency_s))
            if error_kind is not None:
                self.errors[error_kind] += 1
                if error_kind == "deadline":
                    self.deadline_misses += 1
            if warm_hit is True:
                self.warm_hits += 1
            elif warm_hit is False:
                self.warm_misses += 1

    def record_audit(self, ok: bool) -> None:
        with self._lock:
            self.audits += 1
            if not ok:
                self.audit_failures += 1

    def snapshot(self, queue_depth: int = 0, queue_peak: int = 0) -> Dict[str, Any]:
        with self._lock:
            latencies = [seconds for _, seconds in self._latencies]
            return {
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "jobs": dict(sorted(self.jobs.items())),
                "jobs_total": sum(self.jobs.values()),
                "errors": dict(sorted(self.errors.items())),
                "admitted": self.admitted,
                "queue_depth": queue_depth,
                "queue_peak_depth": queue_peak,
                "queue_rejections": self.queue_rejections,
                "drain_rejections": self.drain_rejections,
                "deadline_misses": self.deadline_misses,
                "waves": self.waves,
                "coalesced_waves": self.coalesced_waves,
                "coalesced_jobs": self.coalesced_jobs,
                "warm_hits": self.warm_hits,
                "warm_misses": self.warm_misses,
                "audits": self.audits,
                "audit_failures": self.audit_failures,
                "latency_p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
                "latency_p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
            }


class WarmRegistry:
    """Per-system-key warm :class:`LucidScript` instances, LRU-admitted.

    The key is the content address of everything that determines
    results (corpus in order, data_dir, intent, config), so a warm hit
    is bit-identical to a fresh build — it just skips the offline phase
    and arrives with prefix snapshots and prepared intents already hot.
    Thread-safe: acquired from the wave thread while the event loop may
    be admitting (and therefore content-addressing) new corpora.
    """

    def __init__(self, limit: int = 8):
        self._systems = LRUCache(limit, thread_safe=True)

    def acquire(self, resolved: "jobs_mod.ResolvedJob") -> Tuple[LucidScript, bool]:
        """The pinned system for *resolved* plus whether it was warm."""
        system = self._systems.get(resolved.key)
        if system is not None:
            return system, True
        system = jobs_mod.build_system(resolved)
        self._systems[resolved.key] = system
        return system, False

    def __len__(self) -> int:
        return len(self._systems)


class StandardizationServer:
    """The long-lived standardization daemon (one per process)."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.stats = ServerStats(window=config.stats_window)
        self.registry = WarmRegistry(config.warm_limit)
        self.queue = JobQueue(config.queue_limit)
        self.tcp_address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._scheduler_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._closed: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        # one dedicated executor thread: jobs always run on the same
        # thread, serially — the determinism anchor of the whole engine
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-wave"
        )

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closed = asyncio.Event()
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
            self._servers.append(
                await asyncio.start_unix_server(
                    self._on_connection, path=self.config.socket_path
                )
            )
        if self.config.host is not None:
            server = await asyncio.start_server(
                self._on_connection, host=self.config.host, port=self.config.port
            )
            self._servers.append(server)
            bound = server.sockets[0].getsockname()
            self.tcp_address = (bound[0], bound[1])
        if self.config.install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError, ValueError
                ):
                    self._loop.add_signal_handler(signum, self.request_drain)
        self._scheduler_task = asyncio.create_task(self._scheduler())

    def request_drain(self) -> None:
        """Idempotent drain trigger (signal handlers, the shutdown op)."""
        if self._drain_task is None:
            self._drain_task = self._loop.create_task(self.drain())

    async def drain(self) -> None:
        """Graceful shutdown: finish the in-flight wave, reject the rest."""
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        for job in self.queue.drain():
            self.stats.record_rejection("draining")
            self._complete(
                job,
                protocol.error_response(
                    job.request_id,
                    "draining",
                    "server is draining; retry later or elsewhere",
                ),
            )
        self._wake.set()
        if self._scheduler_task is not None:
            await self._scheduler_task
        self._executor.shutdown(wait=True)
        kill_worker_pool()  # resident shards must never outlive the daemon
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self.config.socket_path:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # ----------------------------------------------------------- connections
    async def _write(self, writer, lock: asyncio.Lock, message: Dict) -> None:
        with contextlib.suppress(Exception):  # client may be gone — fine
            async with lock:
                writer.write(protocol.encode(message))
                await writer.drain()

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                except ValueError as exc:
                    await self._write(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None, "bad_request", f"malformed request: {exc}"
                        ),
                    )
                    continue
                # each request gets its own task so one connection can
                # pipeline many jobs — that concurrency is what the
                # queue coalesces into shared waves
                request = asyncio.create_task(
                    self._serve_message(message, writer, write_lock)
                )
                pending.add(request)
                request.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve_message(self, message: Dict, writer, write_lock) -> None:
        request_id = message.get("id")
        op = message.get("op")
        if op == "ping":
            response = protocol.ok_response(request_id, {"pong": True})
        elif op == "stats":
            response = protocol.ok_response(
                request_id,
                self.stats.snapshot(self.queue.depth, self.queue.peak_depth),
            )
        elif op == "shutdown":
            response = protocol.ok_response(request_id, {"draining": True})
            await self._write(writer, write_lock, response)
            self.request_drain()
            return
        elif op in protocol.JOB_OPS:
            response = await self._enqueue_job(message)
        else:
            response = protocol.error_response(
                request_id, "bad_request", f"unknown op {op!r}"
            )
        await self._write(writer, write_lock, response)

    # -------------------------------------------------------------- admission
    async def _enqueue_job(self, message: Dict) -> Dict:
        request_id = message.get("id")
        if self._draining:
            self.stats.record_rejection("draining")
            return protocol.error_response(
                request_id, "draining", "server is draining; retry later"
            )
        deadline_s = message.get("deadline_s", self.config.default_deadline_s)
        if deadline_s is not None and (
            not isinstance(deadline_s, (int, float)) or deadline_s <= 0
        ):
            return protocol.error_response(
                request_id, "bad_request", "deadline_s must be a positive number"
            )
        try:
            job_dict = jobs_mod.normalize_job(message)
            resolved = jobs_mod.resolve_job(job_dict)
        except jobs_mod.JobError as exc:
            self.stats.record_rejection(exc.kind)
            return protocol.error_response(request_id, exc.kind, str(exc))
        except Exception as exc:  # noqa: BLE001 - malformed beyond taxonomy
            return protocol.error_response(
                request_id, "bad_request", f"{type(exc).__name__}: {exc}"
            )
        job = Job(
            request_id=request_id,
            job=job_dict,
            group_key=resolved.corpus_key,
            system_key=resolved.key,
            future=self._loop.create_future(),
            deadline_s=float(deadline_s) if deadline_s is not None else None,
            resolved=resolved,
        )
        try:
            self.queue.admit(job)
        except QueueFullError as exc:
            self.stats.record_rejection("queue_full")
            return protocol.error_response(request_id, "queue_full", str(exc))
        self.stats.record_admission()
        self._wake.set()
        return await job.future

    # -------------------------------------------------------------- scheduling
    def _complete(self, job: Job, response: Dict) -> None:
        if not job.future.done():
            job.future.set_result(response)

    async def _scheduler(self) -> None:
        while True:
            for job in self.queue.pop_expired():
                self.stats.record_job(job.op, 0.0, "deadline", None)
                self._complete(
                    job,
                    protocol.error_response(
                        job.request_id,
                        "deadline",
                        f"deadline of {job.deadline_s:g}s expired in queue",
                    ),
                )
            wave = self.queue.take_wave(self.config.wave_limit)
            if not wave:
                if self._draining:
                    return
                self._wake.clear()
                if self.queue.depth == 0:
                    await self._wake.wait()
                continue
            self.stats.record_wave(len(wave))
            await self._loop.run_in_executor(
                self._executor, self._run_wave, wave, self._loop
            )

    # ---------------------------------------------------- wave execution (thread)
    def _run_wave(self, wave: List[Job], loop) -> None:
        for job in wave:
            started = time.monotonic()
            response, warm_hit = self._run_job(job)
            error_kind = (
                None if response.get("ok") else response["error"]["kind"]
            )
            self.stats.record_job(
                job.op, time.monotonic() - started, error_kind, warm_hit
            )
            loop.call_soon_threadsafe(self._complete, job, response)

    def _run_job(self, job: Job) -> Tuple[Dict, Optional[bool]]:
        remaining = job.remaining_s()
        if remaining is not None and remaining <= 0:
            return (
                protocol.error_response(
                    job.request_id,
                    "deadline",
                    f"deadline of {job.deadline_s:g}s expired before execution",
                ),
                None,
            )
        resolved = job.resolved
        warm_hit: Optional[bool] = None
        clamped = False
        try:
            system, warm_hit = self.registry.acquire(resolved)
            job_dict = job.job
            budget = resolved.config.exec_timeout_s
            restore = system.config.exec_timeout_s
            if remaining is not None and (budget is None or remaining < budget):
                # SLA -> exec budget: what is left of the deadline bounds
                # every sandboxed script run inside this job's search
                clamped = True
                job_dict = {
                    "op": job.job["op"],
                    "params": {
                        **job.job["params"],
                        "config": {
                            **job.job["params"]["config"],
                            "exec_timeout_s": remaining,
                        },
                    },
                }
                system.config.exec_timeout_s = remaining
            try:
                result = jobs_mod.execute_job(job_dict, system=system)
                response = protocol.ok_response(
                    job.request_id, result, {"warm": warm_hit}
                )
            finally:
                system.config.exec_timeout_s = restore
        except jobs_mod.JobError as exc:
            response = protocol.error_response(
                job.request_id, exc.kind, str(exc), {"warm": warm_hit}
            )
        except Exception as exc:  # noqa: BLE001 - engine fault, keep serving
            return (
                protocol.error_response(
                    job.request_id, "internal", f"{type(exc).__name__}: {exc}"
                ),
                warm_hit,
            )
        if self.config.audit and not clamped:
            # verify_server: replay this response in a fresh one-shot
            # process and require byte-identical deterministic payloads.
            # Deadline-clamped jobs are skipped: a wall-clock budget can
            # legitimately fire on one side only.
            try:
                audit_job(job_dict, response)
                self.stats.record_audit(True)
            except ServerMismatchError as exc:
                self.stats.record_audit(False)
                response = protocol.error_response(
                    job.request_id, "audit_mismatch", str(exc)
                )
            except Exception as exc:  # noqa: BLE001 - replay infra failed
                self.stats.record_audit(False)
                response = protocol.error_response(
                    job.request_id,
                    "internal",
                    f"audit replay failed: {type(exc).__name__}: {exc}",
                )
        return response, warm_hit


class ServerThread:
    """A server on a dedicated thread + event loop (tests, benchmarks).

    Usage::

        with ServerThread(ServerConfig(socket_path=...)) as handle:
            client = ServerClient(socket_path=...)
            ...

    ``stop()`` triggers the same graceful drain as SIGTERM and joins the
    thread; exiting the context manager does the same.
    """

    def __init__(self, config: ServerConfig):
        config.install_signal_handlers = False  # not the main thread
        self.config = config
        self.server: Optional[StandardizationServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.loop = loop
        server = StandardizationServer(self.config)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surface via start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self.server = server
        self._ready.set()
        try:
            loop.run_until_complete(server.wait_closed())
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within its timeout")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self.server is not None and self.loop is not None:
            with contextlib.suppress(Exception):
                self.loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not drain within its timeout")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
