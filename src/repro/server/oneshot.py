"""Cold one-shot job runner: the audit's ground truth and the bench's
cold baseline.

Run as a module, it reads one canonical job (JSON) from stdin, executes
it in this fresh process with every cache empty, and writes the
response envelope (canonical JSON) to stdout::

    python -m repro.server.oneshot < job.json > response.json

This is by construction the cold path: a new interpreter, a new corpus
cache, a new worker pool — exactly what a CLI invocation pays per
request.  ``verify_server`` replays every audited server response
through here and requires byte-identical deterministic payloads.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any, Dict, Optional

from ..sandbox import kill_worker_pool
from . import jobs as jobs_mod
from . import protocol

__all__ = ["main", "run_oneshot", "run_oneshot_process"]


def run_oneshot(job: Dict[str, Any], request_id: Any = None) -> Dict[str, Any]:
    """Execute one canonical job in this process, as a response envelope.

    Does **not** guarantee cold caches — use :func:`run_oneshot_process`
    for that.  Useful in-process when the caller has already cleared the
    corpus cache (the parity tests do exactly this).
    """
    try:
        result = jobs_mod.execute_job(job)
        return protocol.ok_response(request_id, result)
    except jobs_mod.JobError as exc:
        return protocol.error_response(request_id, exc.kind, str(exc))


def run_oneshot_process(
    job: Dict[str, Any],
    request_id: Any = None,
    timeout: Optional[float] = 600.0,
) -> Dict[str, Any]:
    """Execute one canonical job in a **fresh** python process.

    This is the audit's cold replay and the benchmark's per-request
    cold baseline: interpreter start, imports, corpus curation, worker
    pool — nothing amortized.
    """
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    payload = json.dumps({"id": request_id, "job": job})
    completed = subprocess.run(
        [sys.executable, "-m", "repro.server.oneshot"],
        input=payload.encode("utf-8"),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        timeout=timeout,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            "one-shot replay process failed "
            f"(exit {completed.returncode}): "
            f"{completed.stderr.decode('utf-8', 'replace').strip()[-2000:]}"
        )
    return json.loads(completed.stdout.decode("utf-8"))


def main() -> int:
    raw = sys.stdin.read()
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"oneshot: stdin is not JSON: {exc}", file=sys.stderr)
        return 2
    if isinstance(envelope, dict) and "job" in envelope:
        request_id, job = envelope.get("id"), envelope["job"]
    else:  # a bare canonical job is also accepted
        request_id, job = None, envelope
    try:
        response = run_oneshot(job, request_id)
    finally:
        kill_worker_pool()
    sys.stdout.write(protocol.canonical(response) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
