"""Line-delimited JSON wire protocol for the standardization server.

One request per line, one response per line.  Requests and responses
are matched by ``id`` (any JSON scalar the client chooses), so a client
may pipeline many requests over one connection and collect responses
out of order — which is exactly what lets the engine coalesce
concurrent jobs into shared waves.

Request shape::

    {"id": 7, "op": "standardize", "params": {...}, "deadline_s": 30.0}

``op`` is one of the job ops (``standardize`` / ``score`` / ``explain``
/ ``detect_leakage``) or a control op (``ping`` / ``stats`` /
``shutdown``).  Response shape::

    {"id": 7, "ok": true,  "result": {...}, "meta": {...}}
    {"id": 7, "ok": false, "error": {"kind": ..., "message": ..., "retryable": ...}}

``result`` (and ``error`` minus ``retryable``) is the *deterministic*
payload: the ``verify_server`` audit requires it byte-identical between
the warm engine and a fresh one-shot process.  ``meta`` carries
non-deterministic serving detail (warm hit, latency) and is excluded
from every parity comparison.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "JOB_OPS",
    "CONTROL_OPS",
    "RETRYABLE_KINDS",
    "canonical",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "parity_payload",
]

#: Ops that run a standardization job through the queue.
JOB_OPS = ("standardize", "score", "explain", "detect_leakage")

#: Ops the engine answers inline, without queueing.
CONTROL_OPS = ("ping", "stats", "shutdown")

#: Error kinds a client should retry (possibly against another server
#: or after a backoff); everything else is a permanent verdict for this
#: request.
RETRYABLE_KINDS = frozenset({"queue_full", "draining", "deadline"})


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line: canonical (sorted-key, compact) JSON + newline."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def canonical(payload: Any) -> str:
    """The canonical JSON text of a payload — the unit of byte-identity
    the ``verify_server`` audit and the parity tests compare."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def ok_response(
    request_id: Any,
    result: Any,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if meta:
        response["meta"] = meta
    return response


def error_response(
    request_id: Any,
    kind: str,
    message: str,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {
            "kind": kind,
            "message": message,
            "retryable": kind in RETRYABLE_KINDS,
        },
    }
    if meta:
        response["meta"] = meta
    return response


def parity_payload(response: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic slice of a response: what must replay
    byte-identically in a fresh one-shot process.

    ``meta`` (serving detail) and ``error.retryable`` (a property of the
    *server's* momentary state, not of the job) are stripped; ``id`` is
    kept so a swapped response can never pass the audit.
    """
    payload: Dict[str, Any] = {"id": response.get("id"), "ok": response.get("ok")}
    if response.get("ok"):
        payload["result"] = response.get("result")
    else:
        error = dict(response.get("error") or {})
        error.pop("retryable", None)
        payload["error"] = error
    return payload
