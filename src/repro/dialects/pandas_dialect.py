"""The default dialect: the historical pandas surface, extracted verbatim.

Everything here mirrors what ``sandbox/runner.py`` hardcoded before the
dialect layer existed — same substrate module, same allowed imports,
same ``read_csv`` interception, same ``df``-first output capture — so
the extraction is bit-identical by construction.  The ``verify_dialect``
audit replays a standardization fixture recorded with the pre-refactor
pipeline to prove it stays that way.
"""

from __future__ import annotations

from .. import minipandas
from .base import ApiDialect

__all__ = ["PandasDialect"]


class PandasDialect(ApiDialect):
    """``import pandas`` scripts over CSV inputs, minipandas substrate."""

    name = "pandas"
    module_name = "pandas"
    loader_names = frozenset({"read_csv"})
    canonical_base = "df"
    output_variable = "df"
    extra_modules = ("numpy", "math", "re", "random")

    def api_module(self):
        return minipandas
