"""Pluggable API dialects: which call surface a corpus standardizes.

A dialect bundles everything API-specific — recognized call surface,
sandbox shim, intent contract — behind :class:`ApiDialect` (see
``base.py`` for the protocol).  The rest of the system carries only the
dialect *name* (through ``LSConfig``, corpus records and snapshots,
shard task payloads, server jobs) and resolves it here.

Registered out of the box:

* ``pandas`` — the historical default, bit-identical to the
  pre-dialect pipeline (audited by ``verify_dialect``);
* ``tablereport`` — the generality proof: an EDA-style
  design-in/report-out surface with its own stub API module.
"""

from __future__ import annotations

from typing import Dict, List

from .base import ApiDialect, ModuleProxy, TableLoader, UnknownDialectError
from .pandas_dialect import PandasDialect
from .tablereport import TablereportDialect

__all__ = [
    "ApiDialect",
    "ModuleProxy",
    "PandasDialect",
    "TableLoader",
    "TablereportDialect",
    "UnknownDialectError",
    "dialect_names",
    "get_dialect",
    "register_dialect",
    "resolve_dialect",
]

_REGISTRY: Dict[str, ApiDialect] = {}


def register_dialect(dialect: ApiDialect) -> ApiDialect:
    """Add *dialect* to the process-wide registry (idempotent by name)."""
    _REGISTRY[dialect.name] = dialect
    return dialect


def get_dialect(name: str) -> ApiDialect:
    """Resolve a dialect name; unknown names list what is registered."""
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownDialectError(
            f"unknown dialect {name!r}; registered dialects: {registered}"
        ) from None


def dialect_names() -> List[str]:
    """Sorted names of every registered dialect."""
    return sorted(_REGISTRY)


def resolve_dialect(dialect=None) -> ApiDialect:
    """Normalize a dialect argument: name, instance, or None (pandas)."""
    if dialect is None:
        return _REGISTRY["pandas"]
    if isinstance(dialect, str):
        return get_dialect(dialect)
    return dialect


register_dialect(PandasDialect())
register_dialect(TablereportDialect())
