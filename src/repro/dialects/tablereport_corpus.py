"""Deterministic generators for the ``tablereport`` script corpus.

Everything here is driven by the same pure-Python LCG the verify
fixtures use, so the bundled corpus under ``examples/
tablereport_corpus/`` and the ``verify_dialect`` tablereport case are
reproducible byte-for-byte on any platform — regenerating with the same
seed yields the same files.

The generated scripts share one canonical pipeline (load → impute caps
→ drop unplaced → dedupe → timing report) under genuine stylistic
variance: variable naming, import aliasing, op ordering, and optional
extra fix-up passes.  That is exactly the "many scripts, one artifact,
one checkable output" shape the standardizer consumes.
"""

from __future__ import annotations

import os
from typing import List, Tuple

__all__ = [
    "design_csv",
    "fixture_design_csv",
    "fixture_scripts",
    "generate_corpus",
    "write_corpus",
]

_LAYERS = ["m1", "m2", "m3", "m4"]


def _lcg(seed: int):
    state = seed & 0x7FFFFFFF
    while True:
        state = (state * 1103515245 + 12345) % (1 << 31)
        yield state


def design_csv(seed: int = 41, rows: int = 120) -> str:
    """A placed-design table: some caps missing, some cells unplaced,
    some exact duplicate rows (re-run artifacts) for dedupe to find."""
    rng = _lcg(seed)
    lines = ["cell,layer,x,y,cap,slack,fanout,placed"]
    previous = None
    for i in range(rows):
        if previous is not None and next(rng) % 10 == 0:
            lines.append(previous)
            continue
        layer = _LAYERS[next(rng) % 4]
        x = next(rng) % 500
        y = next(rng) % 500
        cap = "" if next(rng) % 8 == 0 else str(round((next(rng) % 500) / 100.0, 2))
        slack = str(round((next(rng) % 400) / 100.0 - 2.0, 2))
        fanout = 1 + next(rng) % 16
        placed = 0 if next(rng) % 7 == 0 else 1
        previous = f"u{i},{layer},{x},{y},{cap},{slack},{fanout},{placed}"
        lines.append(previous)
    return "\n".join(lines) + "\n"


def fixture_design_csv() -> str:
    """The design table pinned by the ``verify_dialect`` fixture."""
    return design_csv(seed=41, rows=120)


def _script(var: str, alias: str, ops: List[str], report_var: str = "report") -> str:
    lines = [
        f"import tablereport as {alias}" if alias != "tablereport" else "import tablereport",
        f"{var} = {alias}.load_design('design.csv')",
    ]
    lines.extend(f"{var} = {var}.{op}" for op in ops)
    lines.append(f"{report_var} = {var}.timing_report()")
    return "\n".join(lines)


_CANONICAL_OPS = ["fill_missing_caps()", "drop_unplaced()", "dedupe_cells()"]


def fixture_scripts() -> Tuple[List[str], str]:
    """The small corpus + messy input pinned by the verify fixture.

    The input's ``prune_slack(-9.0)`` pass is a no-op on this design
    (every slack is above -9), so deleting it leaves the output
    untouched — the standardizer should strip it.
    """
    corpus = [
        _script("design", "tr", list(_CANONICAL_OPS)),
        _script("d", "tr", list(_CANONICAL_OPS)),
        _script("chip", "tr", list(_CANONICAL_OPS)),
        _script(
            "design",
            "tr",
            ["fill_missing_caps()", "dedupe_cells()", "drop_unplaced()"],
        ),
        _script(
            "blk",
            "tr",
            _CANONICAL_OPS + ["drop_high_fanout(12)"],
        ),
        _script("layout", "tablereport", list(_CANONICAL_OPS)),
    ]
    input_script = "\n".join(
        [
            "import tablereport as tr",
            "mychip = tr.load_design('design.csv')",
            "mychip = mychip.fill_missing_caps()",
            "mychip = mychip.prune_slack(-9.0)",
            "mychip = mychip.drop_unplaced()",
            "mychip = mychip.dedupe_cells()",
            "report = mychip.timing_report()",
        ]
    )
    return corpus, input_script


def generate_corpus(seed: int = 20, n: int = 30) -> List[str]:
    """~n stylistically varied scripts over the canonical pipeline."""
    rng = _lcg(seed)
    variables = ["design", "d", "chip", "blk", "layout", "top", "die"]
    report_vars = ["report", "report", "report", "rpt", "timing"]
    extras = [
        None,
        None,
        None,
        "prune_slack(0.0)",
        "prune_slack(0.25)",
        "keep_layer('m1')",
        "keep_layer('m2')",
        "drop_high_fanout(8)",
        "drop_high_fanout(12)",
    ]
    scripts = []
    for _ in range(n):
        var = variables[next(rng) % len(variables)]
        alias = "tablereport" if next(rng) % 5 == 0 else "tr"
        ops = list(_CANONICAL_OPS)
        if next(rng) % 4 == 0:  # swap the two cleanup passes
            ops[1], ops[2] = ops[2], ops[1]
        extra = extras[next(rng) % len(extras)]
        if extra is not None:
            ops.insert(1 + next(rng) % (len(ops) - 1), extra)
        report_var = report_vars[next(rng) % len(report_vars)]
        scripts.append(_script(var, alias, ops, report_var))
    return scripts


def write_corpus(directory: str, seed: int = 20, n: int = 30) -> List[str]:
    """Write ``design.csv`` plus the generated scripts; returns paths."""
    os.makedirs(directory, exist_ok=True)
    written = []
    csv_path = os.path.join(directory, "design.csv")
    with open(csv_path, "w") as handle:
        handle.write(design_csv())
    written.append(csv_path)
    for i, script in enumerate(generate_corpus(seed=seed, n=n)):
        path = os.path.join(directory, f"prep_{i:02d}.py")
        with open(path, "w") as handle:
            handle.write(script + "\n")
        written.append(path)
    return written
