"""``tablereport`` — a stub EDA-flavored API proving dialect generality.

Modeled on the OpenROAD script-corpus shape (ROADMAP open item 1): one
API object (a placed-cell :class:`Design`) loaded from an artifact,
mutated through a small chainable surface, and summarized into a
checkable report table.  Like ``minipandas`` stands in for pandas, this
module stands in for the real EDA tool: small enough to ship inside the
repo, real enough that a corpus of scripts against it has genuine
stylistic variance to standardize.

The report is a :class:`~repro.minipandas.DataFrame`, so the whole
intent stack (fingerprints, Jaccard comparison, prepared intents) works
on tablereport outputs unchanged.
"""

from __future__ import annotations

import copy

from .. import minipandas
from ..minipandas import DataFrame

__all__ = ["Design", "load_design"]

#: columns a design table is expected to carry
DESIGN_COLUMNS = ("cell", "layer", "x", "y", "cap", "slack", "fanout", "placed")


class Design:
    """A placed design: rows are cells, columns are physical attributes.

    Every operation returns a new :class:`Design` (chainable, no
    in-place mutation), mirroring how report-driven EDA scripts thread
    one object through a fixed-up pipeline before reporting.
    """

    def __init__(self, table: DataFrame):
        self._table = table

    # -------------------------------------------------------------- fix-up ops
    def fill_missing_caps(self) -> "Design":
        """Impute missing capacitance (and any other numeric gaps) with
        the column mean."""
        return Design(self._table.fillna(self._table.mean()))

    def drop_unplaced(self) -> "Design":
        """Keep only cells the placer actually placed."""
        return Design(self._table[self._table["placed"] == 1])

    def dedupe_cells(self) -> "Design":
        """Drop exact duplicate cell rows (re-run artifacts)."""
        return Design(self._table.drop_duplicates())

    def keep_layer(self, layer: str) -> "Design":
        """Restrict the design to one routing layer."""
        return Design(self._table[self._table["layer"] == layer])

    def prune_slack(self, limit: float) -> "Design":
        """Drop cells whose timing slack is below *limit*."""
        return Design(self._table[self._table["slack"] >= limit])

    def drop_high_fanout(self, threshold: int) -> "Design":
        """Drop nets fanning out beyond *threshold* (to be buffered
        separately)."""
        return Design(self._table[self._table["fanout"] <= threshold])

    # ------------------------------------------------------------------ report
    def timing_report(self) -> DataFrame:
        """The checkable output: cells ordered worst-slack-first."""
        return self._table.sort_values("slack").reset_index(drop=True)

    # --------------------------------------------------------------- plumbing
    def __len__(self) -> int:
        return len(self._table)

    def __deepcopy__(self, memo) -> "Design":
        # incremental-executor snapshots deep-copy unknown namespace
        # values; the wrapped table must come along
        return Design(copy.deepcopy(self._table, memo))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Design cells={len(self._table)}>"


def load_design(path: str, **kwargs) -> Design:
    """Load a design table from a CSV artifact.

    Inside the sandbox this entry point is intercepted by the dialect's
    loader (data-dir resolution + shared parse cache); this direct
    implementation serves generators and tests.
    """
    return Design(minipandas.read_csv(path, **kwargs))
