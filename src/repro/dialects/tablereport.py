"""The second registered dialect: ``tablereport`` scripts.

This is the generality proof for the dialect layer — a different root
module, a different loader entry point, a different canonical variable,
a wrapped (non-DataFrame) working object, and a distinct output
convention (``report``), all plugged in through the same
:class:`~repro.dialects.base.ApiDialect` surface the pandas default
uses.  Note what it does *not* need: no changes to atoms, DAG parsing,
entropy scoring, beam search, corpus indexing, or the server.
"""

from __future__ import annotations

from typing import Optional

from . import tablereport_api
from .base import ApiDialect, TableLoader

__all__ = ["TablereportDialect"]


class TablereportDialect(ApiDialect):
    """``import tablereport`` scripts over design CSVs, stub-API substrate."""

    name = "tablereport"
    module_name = "tablereport"
    loader_names = frozenset({"load_design"})
    canonical_base = "design"
    output_variable = "report"
    # deliberately narrower than pandas: no numpy on this surface, so
    # the module-table leakage fix is observable per-dialect
    extra_modules = ("math", "re", "random")

    def api_module(self):
        return tablereport_api

    def make_loader(self, data_dir: Optional[str], sample_rows: Optional[int]):
        # loaded tables are wrapped into the dialect's working object
        return TableLoader(data_dir, sample_rows, wrap=tablereport_api.Design)
