"""``verify_dialect`` — audit that the dialect layer changed nothing.

Replays each dialect's recorded fixture case through the live pipeline
and compares every field byte-for-byte (floats via exact ``repr``)
against the record on disk.  The pandas record was captured *before*
the dialect refactor, so a pass proves the extracted
:class:`PandasDialect` reproduces the pre-refactor pipeline exactly;
the tablereport record pins the second dialect against regressions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .cases import fixture_path, run_case

__all__ = ["DialectMismatchError", "verify_dialect"]


class DialectMismatchError(AssertionError):
    """A dialect's live behavior diverged from its recorded fixture."""


def _compare(name: str, recorded: Dict, live: Dict) -> None:
    for key in sorted(set(recorded) | set(live)):
        if recorded.get(key) != live.get(key):
            raise DialectMismatchError(
                f"verify_dialect[{name}]: field {key!r} diverged from the "
                f"recorded fixture\n  recorded: {recorded.get(key)!r}\n"
                f"  live:     {live.get(key)!r}"
            )


def verify_dialect(names: Optional[List[str]] = None) -> Dict[str, Dict]:
    """Replay recorded fixtures; raise on any byte-level divergence.

    Returns the live records (keyed by dialect) on success so callers
    can display what was checked.
    """
    if names is None:
        from . import dialect_names

        names = [n for n in dialect_names() if os.path.exists(fixture_path(n))]
    results: Dict[str, Dict] = {}
    for name in names:
        path = fixture_path(name)
        if not os.path.exists(path):
            raise DialectMismatchError(
                f"verify_dialect[{name}]: no recorded fixture at {path}"
            )
        with open(path) as handle:
            recorded = json.load(handle)
        live = run_case(name)
        _compare(name, recorded, live)
        results[name] = live
    return results
