"""The :class:`ApiDialect` protocol — everything API-specific in one place.

The pipeline (atoms → lemmatization → DAG → entropy search) is
API-agnostic; what makes the reproduction "pandas-shaped" is a handful
of conventions that used to be hardcoded across three layers:

* **call surface** — which root modules a script may import and which
  entry-point functions load the input artifact (``read_csv``), driving
  lemmatization's canonical renaming and the parser's protected
  statements;
* **sandbox shim** — the module table scripts execute against, the
  loader resolver that maps script paths onto the run's data directory,
  and the output-capture convention (which variable is "the" output);
* **intent contract** — how a captured output is fingerprinted and
  compared between the original script and a candidate.

An :class:`ApiDialect` owns all three.  :class:`~repro.dialects
.pandas_dialect.PandasDialect` extracts the historical behavior verbatim
(bit-identical by construction — the ``verify_dialect`` audit replays a
pre-refactor recorded fixture to prove it), and any new dialect plugs in
by subclassing and registering (see :mod:`repro.dialects.tablereport`
for a complete worked second dialect).
"""

from __future__ import annotations

import ast
import os
from typing import Any, Callable, Dict, Optional

from .. import minipandas
from .._lru import LRUCache
from ..minipandas import DataFrame

__all__ = [
    "ApiDialect",
    "ModuleProxy",
    "TableLoader",
    "UnknownDialectError",
    "load_table",
]


class UnknownDialectError(ValueError):
    """An unregistered dialect name was requested."""


#: Parsed-CSV cache shared by every dialect's loader: beam search
#: re-executes scripts against the same file dozens of times per search,
#: and parsing dominates for large D_IN.  True LRU (hits refresh
#: recency), keyed by (path, mtime, size, sample_rows): the full parse
#: is cached under sample_rows=None and each sampled view is cached
#: under its own row cap, so repeated sampled reads of a large table
#: don't re-draw the sample every call.
_CSV_CACHE = LRUCache(capacity=16)


def load_table(path: str, sample_rows: Optional[int], **kwargs) -> DataFrame:
    """Parsed (and optionally sampled) CSV; the caller must copy before
    handing the frame to script code — cached objects are shared."""
    if kwargs:
        frame = minipandas.read_csv(path, **kwargs)  # non-default reads bypass
        if sample_rows is not None and len(frame) > sample_rows:
            frame = frame.sample(n=sample_rows, random_state=0)
        return frame
    stat = os.stat(path)
    identity = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
    if sample_rows is not None:
        sampled = _CSV_CACHE.get(identity + (sample_rows,))
        if sampled is not None:
            return sampled
    full = _CSV_CACHE.get(identity + (None,))
    if full is None:
        full = minipandas.read_csv(path)
        _CSV_CACHE[identity + (None,)] = full
    if sample_rows is not None and len(full) > sample_rows:
        sampled = full.sample(n=sample_rows, random_state=0)
        _CSV_CACHE[identity + (sample_rows,)] = sampled
        return sampled
    return full


class TableLoader:
    """A dialect's data loader, mapping script paths onto the run's data
    directory (the generalized ``read_csv`` resolver).

    ``wrap``, when set, converts the loaded frame into the dialect's own
    input object (e.g. a tablereport ``Design``) after the defensive
    copy — scripts mutate what they load, and cached tables are shared.
    """

    def __init__(
        self,
        data_dir: Optional[str],
        sample_rows: Optional[int],
        wrap: Optional[Callable[[DataFrame], Any]] = None,
    ):
        self.data_dir = data_dir
        self.sample_rows = sample_rows
        self.wrap = wrap

    def __call__(self, path: str, **kwargs):
        resolved = self._resolve(path)
        frame = load_table(resolved, self.sample_rows, **kwargs)
        # scripts mutate their frame; never hand out the cached object
        frame = frame.copy()
        return self.wrap(frame) if self.wrap is not None else frame

    def _resolve(self, path: str) -> str:
        if self.data_dir is None:
            return path
        if os.path.isabs(path) and os.path.exists(path):
            return path
        candidate = os.path.join(self.data_dir, os.path.basename(path))
        if os.path.exists(candidate):
            return candidate
        direct = os.path.join(self.data_dir, path)
        if os.path.exists(direct):
            return direct
        return path  # let the loader raise the natural FileNotFoundError


class ModuleProxy:
    """Proxy module exposing a substrate module with patched entry points.

    Instances are shared sandbox substrate, never script-mutable state —
    the incremental executor's snapshotter relies on that and shares
    them across snapshots without copying.
    """

    def __init__(self, module, overrides: Dict[str, Any]):
        self._module = module
        self._overrides = overrides

    def __getattr__(self, name: str):
        override = self._overrides.get(name)
        if override is not None:
            return override
        return getattr(self._module, name)


def _last_assigned_variable(source: str) -> Optional[str]:
    """Name of the last top-level assignment target (output convention)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    last = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                last = target.id
    return last


class ApiDialect:
    """One standardizable API surface: call surface + sandbox shim + intent.

    Subclasses override the class attributes (and, when the defaults do
    not fit, the methods).  Dialects are stateless and shared
    process-wide through the registry in :mod:`repro.dialects`; every
    cross-process / persistence boundary carries only :attr:`name` and
    resolves it back through :func:`repro.dialects.get_dialect`.
    """

    #: registry identifier; also what LSConfig/snapshots/shard payloads carry
    name: str = "dialect"
    #: root module scripts import to reach the API (``import pandas``)
    module_name: str = "module"
    #: entry-point functions that load the input artifact; these calls
    #: are protected statements (never deleted) and drive lemmatization's
    #: canonical renaming
    loader_names: frozenset = frozenset()
    #: canonical variable stem lemmatization renames loader results to
    #: (``df``, ``df2``, ... for pandas)
    canonical_base: str = "obj"
    #: the conventional output variable checked first by output capture
    output_variable: str = "out"
    #: additional stdlib/substrate modules scripts may import
    extra_modules: tuple = ("math", "re", "random")

    # ------------------------------------------------------------ sandbox shim
    def api_module(self):
        """The substrate module the proxy exposes (minipandas pattern)."""
        raise NotImplementedError

    def make_loader(self, data_dir: Optional[str], sample_rows: Optional[int]):
        """The resolver bound to this run's data directory."""
        return TableLoader(data_dir, sample_rows)

    def module_table(
        self, data_dir: Optional[str], sample_rows: Optional[int]
    ) -> Dict[str, Any]:
        """Modules scripts may import, and what they resolve to."""
        loader = self.make_loader(data_dir, sample_rows)
        overrides = {name: loader for name in self.loader_names}
        table: Dict[str, Any] = {
            self.module_name: ModuleProxy(self.api_module(), overrides)
        }
        for extra in self.extra_modules:
            table[extra] = __import__(extra)
        return table

    def select_output(
        self, namespace: Dict[str, Any], source: str
    ) -> Optional[DataFrame]:
        """Pick the script's output table: the conventional variable
        first, else the frame bound to the last assigned variable, else
        any frame in the namespace."""
        preferred = namespace.get(self.output_variable)
        if isinstance(preferred, DataFrame):
            return preferred
        last = _last_assigned_variable(source)
        if last and isinstance(namespace.get(last), DataFrame):
            return namespace[last]
        frames = [v for v in namespace.values() if isinstance(v, DataFrame)]
        return frames[-1] if frames else None

    # --------------------------------------------------------- intent contract
    def fingerprint_output(self, output) -> str:
        """Content address of a captured output, for intent short-circuits
        and worker-side caches.  The default covers any dialect whose
        output is a table (both shipped dialects)."""
        from ..core.intent import table_fingerprint

        return table_fingerprint(output)

    # ----------------------------------------------------------------- display
    def describe(self) -> str:
        loaders = ", ".join(sorted(self.loader_names))
        return (
            f"{self.name}: import {self.module_name}, load via {loaders}, "
            f"canonical {self.canonical_base!r}, output {self.output_variable!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ApiDialect {self.name}>"
