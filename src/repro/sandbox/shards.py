"""Persistent sharded worker engine for parallel constraint checks.

The previous parallel path lost to serial execution (``BENCH_sandbox.json``
recorded 0.64x at two workers): every task shipped its whole script and
re-ran it cold in a stateless pool worker, so the per-worker caches built
for the serial path — prefix-snapshot LRUs, prepared-intent state, the
original-output table — were re-derived per task instead of amortized per
worker.  This module replaces the stateless pool with *shards*: long-lived
worker processes that each own a stable slice of the candidate waves for
the whole search and keep **sticky resident state** between tasks:

* a resident :class:`~repro.sandbox.incremental.IncrementalExecutor` per
  ``(data_dir, sample_rows, budgets)`` setting, so candidates resume from
  prefix snapshots made by *earlier waves* on the same shard;
* a content-addressed **source store** (sha1 → script text), so tasks ship
  ``(base_sha, line-splice)`` deltas instead of whole scripts — payloads
  are O(delta), and the parent keeps a per-shard mirror of the store so it
  knows exactly which hashes each worker already holds;
* the worker-resident original-output and prepared-intent caches from
  :mod:`repro.core.standardizer`, which now survive for the worker's whole
  life instead of one pool generation.

Shard affinity — ``hash(candidate prefix fingerprint) → shard id``, with
deterministic overflow rebalancing (counted as *migrations*) — keeps
candidates that share a resumable prefix on the shard whose snapshot LRU
already holds it.  Results are gathered by task index, so verdict order is
deterministic and bit-identical to the serial walk for any worker count;
``LSConfig.verify_parallel`` audits exactly that claim.

Fault tolerance mirrors the old pool contract: a worker that stops
answering within the parent budget has its current (oldest unanswered)
task charged as hung, is SIGKILLed and respawned with a cleared mirror,
and its remaining tasks are re-dispatched — until the respawn budget runs
out, at which point unanswered tasks fall back to the caller's serial
loop.  ``kill_worker_pool`` (registered via ``atexit``) hard-kills every
shard so persistent workers can never outlive the parent; workers are
additionally daemonic as a second line of defence.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from difflib import SequenceMatcher
from importlib import import_module
from multiprocessing.connection import wait as _wait_readers
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .._lru import LRUCache

__all__ = [
    "ShardTask",
    "ShardEngine",
    "ParallelMismatchError",
    "get_shard_engine",
    "kill_shard_engine",
    "prefix_affinity",
    "sha1_text",
    "resident_executor",
    "resolve_source",
]

#: Default capacity of each worker's sha1 → source store (and the parent's
#: per-shard mirror of it); ``LSConfig.worker_source_cache_limit`` overrides.
SOURCE_CACHE_LIMIT = 256

#: Resident incremental executors kept per worker (settings rarely change
#: mid-run; two covers a search plus one reconfiguration without churn).
EXECUTOR_CACHE_LIMIT = 2

#: Tasks kept in-flight per shard.  Bounds how much the parent writes into
#: a shard's pipe before hearing back, so a hung worker can never block the
#: parent inside ``put`` (SimpleQueue writes block once the pipe is full).
DISPATCH_WINDOW = 4

#: How long one event-loop sweep blocks waiting for any shard to answer.
_POLL_S = 0.05

#: Infrastructure retries per task (source-store miss, unpicklable reply)
#: before the task is handed back to the caller's serial fallback.
_TASK_RETRY_LIMIT = 2


class ParallelMismatchError(RuntimeError):
    """Raised by ``LSConfig.verify_parallel`` when the sharded engine's
    verdicts (or the speculative winner derived from them) diverge from
    the serial walk — an engine bug, never a legitimate runtime condition,
    matching the ``verify_*`` audit contract of the other fast paths."""


def sha1_text(text: str) -> str:
    """Content address of one script source."""
    return hashlib.sha1(text.encode()).hexdigest()


def prefix_affinity(source: str, base: str) -> str:
    """Affinity key: sha1 of the longest shared leading-line run with *base*.

    Candidates produced by one beam wave are splices of a common parent, so
    this fingerprints exactly the prefix a worker's snapshot LRU could
    resume from; hashing it routes candidates with the same resumable
    prefix to the same shard across rounds.
    """
    source_lines = source.split("\n")
    base_lines = base.split("\n")
    depth = 0
    for mine, theirs in zip(source_lines, base_lines):
        if mine != theirs:
            break
        depth += 1
    return hashlib.sha1("\n".join(source_lines[:depth]).encode()).hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """One unit of work for the engine.

    ``sources`` lists the scripts the task needs resident, in dependency
    order, as ``(sha, text, base_sha, base_text)`` — the engine decides
    per shard whether each becomes a no-cost ``ref``, an O(delta) line
    splice against ``base_sha``, or a one-time full shipment.  ``payload``
    refers to the scripts by their sha only and must be picklable.
    """

    kind: str
    payload: Dict[str, Any]
    sources: Tuple[Tuple[str, str, Optional[str], Optional[str]], ...]
    affinity: Optional[str] = None


# --------------------------------------------------------------------------
# Content-addressed source shipping (parent encodes, worker applies)
# --------------------------------------------------------------------------


def _line_ops(base_lines: List[str], lines: List[str]):
    """Line-level splice turning *base_lines* into *lines* (O(delta) size)."""
    matcher = SequenceMatcher(None, base_lines, lines, autojunk=False)
    return [
        (i1, i2, lines[j1:j2])
        for tag, i1, i2, j1, j2 in matcher.get_opcodes()
        if tag != "equal"
    ]


def _apply_line_ops(base_lines: List[str], ops) -> List[str]:
    out: List[str] = []
    cursor = 0
    for i1, i2, replacement in ops:
        out.extend(base_lines[cursor:i1])
        out.extend(replacement)
        cursor = i2
    out.extend(base_lines[cursor:])
    return out


def _encode_sources(mirror: LRUCache, sources, capacity: int):
    """Shipping instructions for one task against one shard's mirror.

    The mirror replays exactly the store operations the worker will
    perform for these instructions (same capacity, same touch/insert
    order), so parent and worker evict identically and a ``ref`` can
    never point at an evicted entry.
    """
    if capacity != mirror.capacity:
        mirror.resize(capacity)
    instructions = []
    shipped = 0
    for sha, text, base_sha, base_text in sources:
        if mirror.get(sha) is not None:
            instructions.append(("ref", sha))
            continue
        if base_sha is not None and mirror.get(base_sha) is not None:
            ops = _line_ops(base_text.split("\n"), text.split("\n"))
            mirror[sha] = True
            instructions.append(("delta", sha, base_sha, ops))
            shipped += sum(
                len(line) + 1 for _, _, replacement in ops for line in replacement
            )
        else:
            mirror[sha] = True
            instructions.append(("full", sha, text))
            shipped += len(text)
    return instructions, shipped


class _SourceMiss(Exception):
    """A ref/delta pointed at a sha the worker's store no longer holds
    (mirror drift — should not happen; recovered by re-shipping full)."""

    def __init__(self, sha: str):
        super().__init__(sha)
        self.sha = sha


def _admit_source(store: LRUCache, instruction) -> None:
    tag = instruction[0]
    if tag == "ref":
        if store.get(instruction[1]) is None:
            raise _SourceMiss(instruction[1])
    elif tag == "delta":
        _, sha, base_sha, ops = instruction
        base = store.get(base_sha)
        if base is None:
            raise _SourceMiss(base_sha)
        store[sha] = "\n".join(_apply_line_ops(base.split("\n"), ops))
    else:  # "full"
        _, sha, text = instruction
        store[sha] = text


def resolve_source(resident: Dict[str, Any], sha: str) -> str:
    """A task function's view into the worker's source store.

    Reads via ``peek`` so task-time lookups never touch LRU recency —
    recency is driven purely by the admission instructions, which the
    parent mirrors; any extra touches here would desynchronize eviction.
    """
    text = resident["sources"].peek(sha)
    if text is None:
        raise _SourceMiss(sha)
    return text


def resident_executor(
    resident: Dict[str, Any],
    data_dir: Optional[str],
    sample_rows: Optional[int],
    exec_timeout_s: Optional[float] = None,
    statement_timeout_s: Optional[float] = None,
    snapshot_budget: int = 64,
    dialect: Optional[str] = None,
):
    """This worker's sticky incremental executor for one sandbox setting.

    The executor (and its prefix-snapshot LRU) lives as long as the worker
    process, so waves dispatched rounds apart still resume from snapshots
    made by their shard-mates — the cache amortization the stateless pool
    threw away per task.  The dialect is part of the setting: snapshots
    made against one API surface never serve another.
    """
    from .incremental import IncrementalExecutor

    key = (
        data_dir,
        sample_rows,
        exec_timeout_s,
        statement_timeout_s,
        snapshot_budget,
        dialect,
    )
    executors = resident["executors"]
    executor = executors.get(key)
    if executor is None:
        executor = IncrementalExecutor(
            data_dir=data_dir,
            sample_rows=sample_rows,
            snapshot_budget=snapshot_budget,
            exec_timeout_s=exec_timeout_s,
            statement_timeout_s=statement_timeout_s,
            dialect=dialect,
        )
        executors[key] = executor
        while len(executors) > EXECUTOR_CACHE_LIMIT:
            executors.pop(next(iter(executors)))
    return executor


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

#: Task kinds resolve lazily by import path so the engine stays free of
#: circular imports (the verify task lives beside the intent machinery it
#: uses) and works under both fork and spawn start methods.
_TASK_KINDS = {
    "exec_check": "repro.sandbox.shards:_exec_check_task",
    "verify": "repro.core.standardizer:_shard_verify_task",
}
_RESOLVED_KINDS: Dict[str, Any] = {}


def _task_fn(kind: str):
    fn = _RESOLVED_KINDS.get(kind)
    if fn is None:
        module_path, name = _TASK_KINDS[kind].split(":")
        fn = getattr(import_module(module_path), name)
        _RESOLVED_KINDS[kind] = fn
    return fn


def _exec_check_task(payload, resident) -> Tuple[bool, bool]:
    """CheckIfExecutes() against this shard's resident executor."""
    executor = resident_executor(
        resident,
        payload["data_dir"],
        payload["sample_rows"],
        payload.get("exec_timeout_s"),
        payload.get("statement_timeout_s"),
        payload.get("snapshot_budget", 64),
        payload.get("dialect"),
    )
    result = executor.run_script(resolve_source(resident, payload["source_sha"]))
    return (bool(result.ok and result.output is not None), result.timed_out)


def _shard_main(worker_id: int, inq, outq) -> None:
    """One shard's task loop (runs in the worker process)."""
    resident: Dict[str, Any] = {
        "worker_id": worker_id,
        "sources": LRUCache(SOURCE_CACHE_LIMIT),
        "executors": {},
    }
    while True:
        message = inq.get()
        if message is None:
            break
        task_id, kind, capacity, instructions, payload = message
        try:
            store = resident["sources"]
            if capacity != store.capacity:
                store.resize(capacity)
            for instruction in instructions:
                _admit_source(store, instruction)
            outcome = ("ok", _task_fn(kind)(payload, resident))
        except _SourceMiss as miss:
            outcome = ("miss", miss.sha)
        except BaseException as exc:  # noqa: BLE001 - report, never die
            outcome = ("error", f"{type(exc).__name__}: {exc}")
        try:
            outq.put((task_id, outcome))
        except BaseException:  # noqa: BLE001 - unpicklable outcome
            outq.put((task_id, ("error", "unpicklable task outcome")))


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


@dataclass
class _Shard:
    """Parent-side handle on one worker process."""

    process: Any
    inq: Any
    outq: Any
    mirror: LRUCache
    inflight: List[int] = field(default_factory=list)  # dispatched, unanswered
    backlog: List[int] = field(default_factory=list)  # assigned, not yet sent
    last_activity: float = 0.0
    abandoned: bool = False  # respawn budget spent; caller handles its tasks


class ShardEngine:
    """The persistent pool of sharded workers (one per process, reused
    across batches, searches, and standardize() calls)."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.workers = workers
        self.source_cache_limit = SOURCE_CACHE_LIMIT
        self._shards: List[_Shard] = [self._spawn(i) for i in range(workers)]

    # --------------------------------------------------------------- lifecycle
    def _spawn(self, worker_id: int) -> _Shard:
        inq = self._ctx.SimpleQueue()
        outq = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_shard_main,
            args=(worker_id, inq, outq),
            daemon=True,  # backstop: never outlive the parent
            name=f"repro-shard-{worker_id}",
        )
        process.start()
        return _Shard(
            process=process,
            inq=inq,
            outq=outq,
            mirror=LRUCache(self.source_cache_limit),
        )

    def alive(self) -> bool:
        return bool(self._shards) and all(
            shard.process.is_alive() for shard in self._shards
        )

    def worker_pids(self) -> List[int]:
        return [shard.process.pid for shard in self._shards]

    @staticmethod
    def _kill_shard(shard: _Shard) -> None:
        process = shard.process
        try:
            if process.is_alive():
                process.kill()
            process.join(timeout=1.0)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        for queue in (shard.inq, shard.outq):
            try:
                queue.close()
            except Exception:  # noqa: BLE001
                pass

    def kill(self) -> None:
        """SIGKILL every shard (hung workers ignore graceful shutdown)."""
        for shard in self._shards:
            self._kill_shard(shard)
        self._shards = []

    def _respawn(self, shard_id: int) -> _Shard:
        self._kill_shard(self._shards[shard_id])
        fresh = self._spawn(shard_id)
        self._shards[shard_id] = fresh
        return fresh

    # ---------------------------------------------------------------- dispatch
    def _assign(self, tasks: Sequence[ShardTask], report) -> List[List[int]]:
        """Deterministic task → shard map: affinity first, then rebalance.

        A task lands on ``hash(affinity) % workers`` while that shard is
        under the fair-share cap (a *shard hit*); overflow — and tasks
        with no affinity — go to the least-loaded shard (lowest id on
        ties), counted as a *migration* when affinity was overridden.
        """
        width = len(self._shards)
        cap = -(-len(tasks) // width)  # ceil
        counts = [0] * width
        assigned: List[List[int]] = [[] for _ in range(width)]
        deferred: List[int] = []
        for index, task in enumerate(tasks):
            if task.affinity is not None:
                preferred = int(task.affinity[:8], 16) % width
                if counts[preferred] < cap:
                    assigned[preferred].append(index)
                    counts[preferred] += 1
                    if report is not None:
                        report.shard_hits += 1
                    continue
            deferred.append(index)
        for index in deferred:
            target = min(range(width), key=lambda w: (counts[w], w))
            assigned[target].append(index)
            counts[target] += 1
            if report is not None and tasks[index].affinity is not None:
                report.shard_migrations += 1
        return assigned

    def _send(self, shard: _Shard, task_id: int, task: ShardTask, report) -> None:
        instructions, shipped = _encode_sources(
            shard.mirror, task.sources, self.source_cache_limit
        )
        if report is not None:
            report.bytes_shipped += shipped
        if not shard.inflight:
            shard.last_activity = time.monotonic()
        shard.inq.put((task_id, task.kind, self.source_cache_limit, instructions,
                       task.payload))
        shard.inflight.append(task_id)

    def _fill_window(self, shard: _Shard, tasks: Sequence[ShardTask], report) -> None:
        while shard.backlog and len(shard.inflight) < DISPATCH_WINDOW:
            task_id = shard.backlog.pop(0)
            self._send(shard, task_id, tasks[task_id], report)

    def _drain(self, shard: _Shard):
        """All results currently readable on *shard*'s outq (non-blocking)."""
        received = []
        reader = getattr(shard.outq, "_reader", None)
        while shard.inflight:
            try:
                if reader is not None and not reader.poll(0):
                    break
                received.append(shard.outq.get())
            except Exception:  # noqa: BLE001 - broken queue: handled as death
                break
        return received

    # -------------------------------------------------------------- run_batch
    def run_batch(
        self,
        tasks: Sequence[ShardTask],
        parent_budget_s: Optional[float] = None,
        respawn_limit: int = 0,
        report=None,
    ):
        """Execute *tasks*, gathering outcomes in task order.

        Returns ``(outcomes, respawns_used)`` where each outcome is
        ``("ok", value)``, ``("hung",)`` (charged to a worker the parent
        had to kill), or ``None`` (unanswered — respawn budget exhausted
        or unrecoverable task fault; the caller's serial fallback covers
        these).  Order is by task index regardless of worker count or
        completion timing — the determinism half of the engine contract.
        """
        tasks = list(tasks)
        if not tasks:
            return [], 0
        outcomes: List[Optional[Tuple]] = [None] * len(tasks)
        answered = [False] * len(tasks)
        retries: Dict[int, int] = {}
        respawns = 0

        assignment = self._assign(tasks, report)
        for shard_id, task_ids in enumerate(assignment):
            shard = self._shards[shard_id]
            shard.backlog = list(task_ids)
            shard.inflight = []
            shard.abandoned = False
            self._fill_window(shard, tasks, report)

        def _absorb(shard: _Shard, received) -> None:
            nonlocal respawns
            for task_id, outcome in received:
                if task_id in shard.inflight:
                    shard.inflight.remove(task_id)
                shard.last_activity = time.monotonic()
                tag = outcome[0]
                if tag == "ok":
                    outcomes[task_id] = outcome
                    answered[task_id] = True
                elif tag in ("miss", "error"):
                    retries[task_id] = retries.get(task_id, 0) + 1
                    if retries[task_id] > _TASK_RETRY_LIMIT:
                        outcomes[task_id] = ("failed", outcome[1])
                        answered[task_id] = True
                    else:
                        # mirror drift or transport fault: re-ship from
                        # scratch so refs cannot dangle again
                        shard.mirror.clear()
                        shard.backlog.insert(0, task_id)

        while any(
            (shard.inflight or shard.backlog) and not shard.abandoned
            for shard in self._shards
        ):
            progress = False
            for shard_id, shard in enumerate(self._shards):
                if shard.abandoned or not (shard.inflight or shard.backlog):
                    continue
                received = self._drain(shard)
                if received:
                    progress = True
                    _absorb(shard, received)
                    self._fill_window(shard, tasks, report)
                    continue
                now = time.monotonic()
                died = shard.inflight and not shard.process.is_alive()
                hung = (
                    parent_budget_s is not None
                    and shard.inflight
                    and now - shard.last_activity > parent_budget_s
                )
                if not (died or hung):
                    self._fill_window(shard, tasks, report)
                    continue
                progress = True
                # last-chance drain: the result may have landed while we
                # were deciding the worker was gone
                late = self._drain(shard)
                if late:
                    _absorb(shard, late)
                    self._fill_window(shard, tasks, report)
                    continue
                leftover = list(shard.inflight) + list(shard.backlog)
                if hung and leftover:
                    # FIFO workers: the oldest unanswered task is the one
                    # actually running — charge it, spare the rest
                    charged = leftover.pop(0)
                    outcomes[charged] = ("hung",)
                    answered[charged] = True
                respawns += 1
                if report is not None:
                    report.respawns += 1
                if respawns > respawn_limit:
                    # budget spent: hand this shard's remainder back to
                    # the caller; kill the hole so the singleton rebuilds
                    self._kill_shard(shard)
                    shard.inflight = []
                    shard.backlog = []
                    shard.abandoned = True
                    continue
                fresh = self._respawn(shard_id)
                fresh.backlog = leftover
                self._fill_window(fresh, tasks, report)
            if not progress:
                readers = [
                    getattr(shard.outq, "_reader", None)
                    for shard in self._shards
                    if shard.inflight and not shard.abandoned
                ]
                readers = [reader for reader in readers if reader is not None]
                if readers:
                    try:
                        _wait_readers(readers, timeout=_POLL_S)
                    except Exception:  # noqa: BLE001 - racing a dying worker
                        time.sleep(_POLL_S)
                else:
                    time.sleep(_POLL_S)
        return outcomes, respawns


# --------------------------------------------------------------------------
# Process-wide singleton
# --------------------------------------------------------------------------

_ENGINE: Optional[ShardEngine] = None


def get_shard_engine(workers: int) -> ShardEngine:
    """The process-wide engine, (re)built on demand.

    A different worker count, or any dead shard left by an exhausted
    respawn budget, rebuilds the engine from scratch — matching the old
    pool's "next get respawns a fresh pool" contract.
    """
    global _ENGINE
    if _ENGINE is not None and (_ENGINE.workers != workers or not _ENGINE.alive()):
        kill_shard_engine()
    if _ENGINE is None:
        _ENGINE = ShardEngine(workers)
    return _ENGINE


def kill_shard_engine() -> None:
    """Hard-kill the engine and every shard (idempotent)."""
    global _ENGINE
    if _ENGINE is not None:
        _ENGINE.kill()
        _ENGINE = None
