"""Script execution sandbox.

Runs API-call scripts exactly as a notebook would, against the surface
their :class:`~repro.dialects.ApiDialect` declares: the dialect supplies
the module table (for the default pandas dialect, ``import pandas as
pd`` resolves to :mod:`repro.minipandas` — pandas is unavailable
offline), the loader that resolves data paths against a per-run data
directory with optional row sampling (Section 5.2 (5), used to keep
constraint checks fast on large D_IN), and the output-capture
convention.

The sandbox is the oracle behind LucidScript's *execution constraint*: a
candidate script is valid iff :func:`run_script` reports success.  Two
higher-throughput entry points sit on top of the single-script path:
:func:`check_executes_batch` fans a wave of candidate checks out over the
persistent shard engine (the substrate modules are pure Python, so
threads would be GIL-bound; see :mod:`repro.sandbox.shards`), and
:class:`repro.sandbox.incremental.IncrementalExecutor` resumes candidates
from snapshots of shared statement prefixes.
"""

from __future__ import annotations

import atexit
import builtins
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..dialects import resolve_dialect
from ..dialects import base as _dialect_base
from ..dialects.base import TableLoader, _last_assigned_variable
from ..minipandas import DataFrame

__all__ = [
    "ExecutionResult",
    "SandboxError",
    "SandboxImportError",
    "ExecTimeout",
    "BatchReport",
    "run_script",
    "check_executes",
    "check_executes_batch",
]


class SandboxError(Exception):
    """The sandbox itself was misused (not a script failure)."""


class SandboxImportError(ImportError):
    """A script imported a module outside its dialect's declared surface.

    Classified (never a raw ``KeyError`` leaking out of the module
    table) and self-describing: carries the offending module name and
    the dialect whose surface rejected it.
    """

    def __init__(self, module: str, dialect_name: str, allowed):
        self.module = module
        self.dialect = dialect_name
        surface = ", ".join(sorted(allowed))
        super().__init__(
            f"module {module!r} is not available inside the script sandbox: "
            f"the {dialect_name!r} dialect's surface allows only [{surface}]"
        )


class ExecTimeout(BaseException):
    """A sandboxed script exceeded its wall-clock execution budget.

    Derives from :class:`BaseException` so a script-level ``except
    Exception`` handler cannot swallow the interrupt; the sandbox itself
    converts it into a failed :class:`ExecutionResult` like any other
    script error, which is exactly how ``CheckIfExecutes`` wants a
    pathological candidate (an unbounded loop, a quadratic ``apply``) to
    surface: as a skippable failure, never as a hung search.
    """


class _Watchdog:
    """Thread-based wall-clock budget for in-process script execution.

    A daemon timer thread sets a flag at the deadline; a trace hook
    installed on the executing thread checks the flag on every ``line``
    event and raises :class:`ExecTimeout` inside the script frame, which
    interrupts pure-Python hangs such as ``while True: pass``.  The hook
    only exists while a budget is armed, so the budget-less default path
    executes exactly as before (bit-identical, zero overhead).

    Disarm protocol — the caller must restore the prior trace function
    with ``sys.settrace(watchdog.prior)`` *inline in its own frame* (a C
    call, invisible to the tracer) before calling any Python function;
    otherwise a late-firing flag could raise inside cleanup code::

        watchdog = _Watchdog.arm(timeout_s)
        try:
            exec(code, namespace)
        except BaseException:
            if watchdog is not None:
                sys.settrace(watchdog.prior)   # before any Python call
            ...
        finally:
            if watchdog is not None:
                sys.settrace(watchdog.prior)
                watchdog.cancel()

    Known limitations: the tracer fires at Python line boundaries, so a
    single long-running C call cannot be interrupted in-process, and a
    script that catches ``BaseException`` inside an outer loop survives
    the one-shot raise (CPython unsets a trace function that raises).
    The process-pool path's kill-and-respawn covers both cases.
    """

    __slots__ = ("timeout_s", "prior", "_flag", "_timer")

    def __init__(self, timeout_s, prior, flag, timer):
        self.timeout_s = timeout_s
        self.prior = prior
        self._flag = flag
        self._timer = timer

    @classmethod
    def arm(cls, timeout_s: Optional[float]) -> Optional["_Watchdog"]:
        if not timeout_s or timeout_s <= 0:
            return None
        flag = threading.Event()
        timer = threading.Timer(timeout_s, flag.set)
        timer.daemon = True

        def _interrupt(frame, event, arg):
            if event == "line" and flag.is_set():
                raise ExecTimeout(
                    f"script exceeded its {timeout_s:g}s execution budget"
                )
            return _interrupt

        watchdog = cls(timeout_s, sys.gettrace(), flag, timer)
        timer.start()
        sys.settrace(_interrupt)
        return watchdog

    @property
    def expired(self) -> bool:
        return self._flag.is_set()

    def cancel(self) -> None:
        self._timer.cancel()


@dataclass
class ExecutionResult:
    """Outcome of one sandboxed script run."""

    ok: bool
    output: Optional[DataFrame] = None
    error: Optional[BaseException] = None
    error_line: Optional[int] = None
    namespace: Dict[str, Any] = field(default_factory=dict)

    @property
    def error_type(self) -> Optional[str]:
        return type(self.error).__name__ if self.error is not None else None

    @property
    def timed_out(self) -> bool:
        """Did the script blow its wall-clock budget (vs. a real error)?"""
        return isinstance(self.error, ExecTimeout)


#: The dialect layer owns the shared parsed-CSV cache and loader now;
#: these aliases bind the *same* objects (cache identity matters — tests
#: and long-lived executors clear/inspect it through this module).
_CSV_CACHE = _dialect_base._CSV_CACHE
_load_table = _dialect_base.load_table

#: Historical name for the dialect loader (pandas read_csv resolution).
_ReadCsvResolver = TableLoader

#: Historical name for the output-convention helper.
_last_dataframe_variable = _last_assigned_variable


def _select_output(
    namespace: Dict[str, Any], source: str, dialect=None
) -> Optional[DataFrame]:
    """Pick the script's output table per the dialect's convention
    (for pandas: 'df' first, else the last assigned frame, else any)."""
    return resolve_dialect(dialect).select_output(namespace, source)


def _make_guarded_open(data_dir: Optional[str]):
    """A read-only ``open`` restricted to the run's data directory.

    Candidate scripts come out of a search over corpus-derived code; they
    should never be able to write files or read outside their dataset.
    Paths are fully resolved (symlinks and ``..`` collapsed) before the
    prefix check so escapes like ``dir/../../etc/passwd`` cannot slip by.
    """
    real_open = open

    def guarded_open(file, mode="r", *args, **kwargs):
        if any(flag in mode for flag in ("w", "a", "x", "+")):
            raise PermissionError("the script sandbox is read-only")
        path = os.path.realpath(os.path.abspath(os.fspath(file)))
        if data_dir is not None:
            root = os.path.realpath(os.path.abspath(data_dir))
            if not path.startswith(root + os.sep) and path != root:
                raise PermissionError(
                    f"the script sandbox can only read from {root!r}"
                )
        return real_open(path, mode, *args, **kwargs)

    return guarded_open


def build_sandbox_namespace(
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = None,
    extra_globals: Optional[Dict[str, Any]] = None,
    dialect=None,
) -> Dict[str, Any]:
    """A fresh script namespace with guarded builtins wired in.

    Shared by :func:`run_script` and the incremental executor so both
    execute candidates under identical import/open/loader policies.  The
    module table comes from *dialect* (name or instance; default pandas).
    """
    resolved = resolve_dialect(dialect)
    module_table = resolved.module_table(data_dir, sample_rows)

    def guarded_import(name, globals=None, locals=None, fromlist=(), level=0):
        root = name.split(".")[0]
        try:
            return module_table[root]
        except KeyError:
            raise SandboxImportError(name, resolved.name, module_table) from None

    sandbox_builtins = dict(vars(builtins))
    sandbox_builtins["__import__"] = guarded_import
    sandbox_builtins["open"] = _make_guarded_open(data_dir)
    namespace: Dict[str, Any] = {
        "__builtins__": sandbox_builtins,
        "__name__": "__sandbox__",
    }
    if extra_globals:
        namespace.update(extra_globals)
    return namespace


def script_error_line(exc: BaseException) -> Optional[int]:
    """Deepest ``<script>`` frame in the exception's traceback."""
    tb = exc.__traceback__
    line = None
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == "<script>":
            line = tb.tb_lineno
        tb = tb.tb_next
    return line


def run_script(
    source: str,
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = None,
    extra_globals: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
    dialect=None,
) -> ExecutionResult:
    """Execute *source* in the sandbox and capture its output table.

    Parameters
    ----------
    source:
        Script text (straight-line API-call code).
    data_dir:
        Directory containing the run's data files; loader paths are
        resolved against it by basename.
    sample_rows:
        When set, every loaded table is down-sampled to at most this many
        rows (deterministically) — the paper's sampling optimization.
    extra_globals:
        Additional names injected into the script namespace.
    timeout_s:
        Wall-clock budget for the whole script; on expiry the run fails
        with :class:`ExecTimeout` (``result.timed_out``).  None (the
        default) executes unwatched, exactly as before.
    dialect:
        The API surface to execute against — a registered name or an
        :class:`~repro.dialects.ApiDialect`; None means pandas.
    """
    resolved_dialect = resolve_dialect(dialect)
    namespace = build_sandbox_namespace(
        data_dir, sample_rows, extra_globals, dialect=resolved_dialect
    )

    try:
        code = compile(source, "<script>", "exec")
    except SyntaxError as exc:
        return ExecutionResult(ok=False, error=exc, error_line=exc.lineno)

    watchdog = _Watchdog.arm(timeout_s)
    try:
        exec(code, namespace)
    except BaseException as exc:  # noqa: BLE001 - any script failure is data
        if watchdog is not None:
            sys.settrace(watchdog.prior)  # see _Watchdog's disarm protocol
        return ExecutionResult(ok=False, error=exc, error_line=script_error_line(exc))
    finally:
        if watchdog is not None:
            sys.settrace(watchdog.prior)
            watchdog.cancel()

    namespace.pop("__builtins__", None)
    return ExecutionResult(
        ok=True,
        output=resolved_dialect.select_output(namespace, source),
        namespace=namespace,
    )


def check_executes(
    source: str,
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = 200,
    timeout_s: Optional[float] = None,
    dialect=None,
) -> bool:
    """The paper's CheckIfExecutes(): does the script run without error?

    Uses aggressive row sampling by default — execution validity rarely
    depends on data volume, and this check runs inside the beam-search
    inner loop.  A timed-out script simply fails the check.
    """
    result = run_script(
        source,
        data_dir=data_dir,
        sample_rows=sample_rows,
        timeout_s=timeout_s,
        dialect=dialect,
    )
    return result.ok and result.output is not None


# --------------------------------------------------------------------------
# Parallel batched checks (persistent sharded worker engine)
# --------------------------------------------------------------------------

#: Extra wall-clock grace the parent grants a worker beyond the script's own
#: budget before declaring it hung: workers normally self-interrupt via the
#: in-process watchdog, so the parent only fires when a worker is stuck in a
#: C call or a watchdog-defeating loop.
_HUNG_WORKER_GRACE_S = 1.0


@dataclass
class BatchReport:
    """Fault and shipping accounting for one :func:`check_executes_batch`
    (or sharded verification) call.

    Callers (the beam search) fold these into ``SearchStats`` so a run's
    breakdown shows how often budgets fired, the engine self-healed, and
    how well shard affinity and delta shipping worked.
    """

    timeouts: int = 0  #: scripts that blew their budget (worker- or parent-side)
    respawns: int = 0  #: shard kill-and-respawn cycles (hung or broken workers)
    degraded: int = 0  #: batches that fell back to the serial loop
    shard_hits: int = 0  #: tasks placed on their affinity-preferred shard
    shard_migrations: int = 0  #: affinity overridden by load balancing
    bytes_shipped: int = 0  #: source payload bytes actually sent to workers


def _check_executes_task(args):
    """Top-level (picklable) serial-equivalent of the sharded exec check.

    Returns ``(verdict, timed_out)`` so the parent can account worker-side
    budget expiries separately from ordinary script failures.
    """
    source, data_dir, sample_rows, timeout_s = args[:4]
    dialect = args[4] if len(args) > 4 else None
    result = run_script(
        source,
        data_dir=data_dir,
        sample_rows=sample_rows,
        timeout_s=timeout_s,
        dialect=dialect,
    )
    return bool(result.ok and result.output is not None), result.timed_out


def get_worker_pool(workers: int):
    """The persistent shard engine for batched checks (created on demand).

    Workers fork from the parent, so they inherit the parsed-CSV cache as
    of engine creation; each shard then grows its own resident state — an
    incremental executor with prefix snapshots and a content-addressed
    source store — that survives across waves (see
    :mod:`repro.sandbox.shards`).  The name is historical: this used to
    hand out a stateless ``ProcessPoolExecutor``.
    """
    from . import shards

    return shards.get_shard_engine(workers)


def kill_worker_pool() -> None:
    """Hard-kill the shard engine (hung workers ignore graceful shutdown).

    A worker spinning in ``while True`` stays alive through any graceful
    shutdown; SIGKILL-ing the shard processes is the only reliable way to
    reclaim the slot.  The next :func:`get_worker_pool` call respawns a
    fresh engine.  Registered with ``atexit`` so persistent workers can
    never outlive the parent interpreter.
    """
    from . import shards

    shards.kill_shard_engine()


atexit.register(kill_worker_pool)


def _serial_checks(
    sources: Sequence[str],
    data_dir: Optional[str],
    sample_rows: Optional[int],
    timeout_s: Optional[float],
    report: Optional[BatchReport],
    dialect=None,
) -> List[bool]:
    verdicts = []
    for source in sources:
        result = run_script(
            source,
            data_dir=data_dir,
            sample_rows=sample_rows,
            timeout_s=timeout_s,
            dialect=dialect,
        )
        if report is not None and result.timed_out:
            report.timeouts += 1
        verdicts.append(bool(result.ok and result.output is not None))
    return verdicts


def check_executes_batch(
    sources: Sequence[str],
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = 200,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    respawn_limit: int = 1,
    report: Optional[BatchReport] = None,
    statement_timeout_s: Optional[float] = None,
    snapshot_budget: int = 64,
    shard_affinity: bool = True,
    source_cache_limit: Optional[int] = None,
    affinity_base: Optional[str] = None,
    dialect=None,
) -> List[bool]:
    """CheckIfExecutes() over a wave of candidate scripts.

    With ``workers <= 1`` this is exactly a serial loop over
    :func:`run_script` (deterministic, no processes involved).  With more
    workers the checks fan out over the persistent shard engine
    (:mod:`repro.sandbox.shards`): each candidate is content-addressed and
    shipped as an O(delta) line splice against *affinity_base* (the wave's
    common ancestor — defaults to the first source), lands on the shard
    whose resident executor most likely holds its prefix snapshot (when
    *shard_affinity* is on), and executes on that shard's long-lived
    :class:`~repro.sandbox.incremental.IncrementalExecutor` configured with
    *statement_timeout_s* / *snapshot_budget*.  Verdicts come back in
    input order, bit-identical to the serial loop for any worker count.

    Fault tolerance (hang handling opt-in via *timeout_s*):

    * each worker runs its script under the in-process watchdog, so an
      unbounded pure-Python loop fails its own check without touching
      the engine;
    * a shard that does not answer within ``2·timeout_s`` plus a grace
      period (stuck in a C call, or defeating the watchdog) is declared
      hung: its running script is marked failed, the shard is hard-killed
      and respawned with its remaining tasks re-dispatched — one bad
      candidate never poisons the wave;
    * engine-level failures (broken worker, unpicklable payload) retry
      while respawn budget remains;
    * once *respawn_limit* respawns are spent, the batch degrades to the
      always-correct serial loop (still budget-guarded) for whatever is
      left unanswered.

    *report*, when provided, accumulates timeout/respawn/degradation
    counts plus shard-affinity and bytes-shipped accounting.
    """
    sources = list(sources)
    dialect_name = resolve_dialect(dialect).name
    if workers <= 1 or len(sources) < 2:
        return _serial_checks(
            sources, data_dir, sample_rows, timeout_s, report, dialect=dialect_name
        )

    from . import shards

    base = affinity_base if affinity_base is not None else sources[0]
    base_sha = shards.sha1_text(base)
    tasks = []
    for source in sources:
        sha = shards.sha1_text(source)
        if sha == base_sha:
            ship = ((sha, source, None, None),)
        else:
            ship = ((base_sha, base, None, None), (sha, source, base_sha, base))
        tasks.append(
            shards.ShardTask(
                kind="exec_check",
                payload={
                    "source_sha": sha,
                    "data_dir": data_dir,
                    "sample_rows": sample_rows,
                    "exec_timeout_s": timeout_s,
                    "statement_timeout_s": statement_timeout_s,
                    "snapshot_budget": snapshot_budget,
                    "dialect": dialect_name,
                },
                sources=ship,
                affinity=(
                    shards.prefix_affinity(source, base) if shard_affinity else None
                ),
            )
        )

    # the parent waits out the worker's own budget (plus slack for queueing
    # behind other tasks on the same shard) before calling it hung
    parent_budget = (
        timeout_s * 2 + _HUNG_WORKER_GRACE_S if timeout_s is not None else None
    )
    outcomes: List[Optional[tuple]] = [None] * len(sources)
    try:
        engine = get_worker_pool(workers)
    except Exception:  # noqa: BLE001 - broken engine at spawn time
        kill_worker_pool()
        if report is not None:
            report.respawns += 1
    else:
        if source_cache_limit is not None:
            engine.source_cache_limit = source_cache_limit
        try:
            outcomes, _ = engine.run_batch(
                tasks,
                parent_budget_s=parent_budget,
                respawn_limit=respawn_limit,
                report=report,
            )
        except Exception:  # noqa: BLE001 - engine failure mid-batch
            kill_worker_pool()
            if report is not None:
                report.respawns += 1
            outcomes = [None] * len(sources)

    results: List[Optional[bool]] = [None] * len(sources)
    pending: List[int] = []
    for i, outcome in enumerate(outcomes):
        if outcome is None or outcome[0] == "failed":
            pending.append(i)
        elif outcome[0] == "ok":
            verdict, worker_timed_out = outcome[1]
            results[i] = bool(verdict)
            if worker_timed_out and report is not None:
                report.timeouts += 1
        else:  # ("hung",): the parent killed the shard running this script
            results[i] = False
            if report is not None:
                report.timeouts += 1
    if pending:
        if report is not None:
            report.degraded += 1
        remainder = _serial_checks(
            [sources[i] for i in pending],
            data_dir,
            sample_rows,
            timeout_s,
            report,
            dialect=dialect_name,
        )
        for i, verdict in zip(pending, remainder):
            results[i] = verdict
    return [bool(v) for v in results]
