"""Script execution sandbox.

Runs data-preparation scripts exactly as a Kaggle notebook would, with two
substitutions: ``import pandas as pd`` resolves to :mod:`repro.minipandas`
(pandas is unavailable offline), and ``read_csv`` paths are resolved against
a per-run data directory with optional row sampling (Section 5.2 (5), used
to keep constraint checks fast on large D_IN).

The sandbox is the oracle behind LucidScript's *execution constraint*: a
candidate script is valid iff :func:`run_script` reports success.  Two
higher-throughput entry points sit on top of the single-script path:
:func:`check_executes_batch` fans a wave of candidate checks out over a
persistent process pool (minipandas is pure Python, so threads would be
GIL-bound), and :class:`repro.sandbox.incremental.IncrementalExecutor`
resumes candidates from snapshots of shared statement prefixes.
"""

from __future__ import annotations

import ast
import atexit
import builtins
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .. import minipandas
from .._lru import LRUCache
from ..minipandas import DataFrame

__all__ = [
    "ExecutionResult",
    "SandboxError",
    "run_script",
    "check_executes",
    "check_executes_batch",
]

#: Modules scripts may import, and what they resolve to.
_ALLOWED_MODULES = {
    "pandas": minipandas,
    "numpy": np,
    "math": __import__("math"),
    "re": __import__("re"),
    "random": __import__("random"),
}


class SandboxError(Exception):
    """The sandbox itself was misused (not a script failure)."""


@dataclass
class ExecutionResult:
    """Outcome of one sandboxed script run."""

    ok: bool
    output: Optional[DataFrame] = None
    error: Optional[BaseException] = None
    error_line: Optional[int] = None
    namespace: Dict[str, Any] = field(default_factory=dict)

    @property
    def error_type(self) -> Optional[str]:
        return type(self.error).__name__ if self.error is not None else None


#: Parsed-CSV cache: beam search re-executes scripts against the same file
#: dozens of times per search, and parsing dominates for large D_IN.  True
#: LRU (hits refresh recency), keyed by (path, mtime, size, sample_rows):
#: the full parse is cached under sample_rows=None and each sampled view is
#: cached under its own row cap, so repeated sampled reads of a large table
#: don't re-draw the sample every call.
_CSV_CACHE = LRUCache(capacity=16)


def _load_table(path: str, sample_rows: Optional[int], **kwargs) -> DataFrame:
    """Parsed (and optionally sampled) CSV; the caller must copy before
    handing the frame to script code — cached objects are shared."""
    if kwargs:
        frame = minipandas.read_csv(path, **kwargs)  # non-default reads bypass
        if sample_rows is not None and len(frame) > sample_rows:
            frame = frame.sample(n=sample_rows, random_state=0)
        return frame
    stat = os.stat(path)
    identity = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
    if sample_rows is not None:
        sampled = _CSV_CACHE.get(identity + (sample_rows,))
        if sampled is not None:
            return sampled
    full = _CSV_CACHE.get(identity + (None,))
    if full is None:
        full = minipandas.read_csv(path)
        _CSV_CACHE[identity + (None,)] = full
    if sample_rows is not None and len(full) > sample_rows:
        sampled = full.sample(n=sample_rows, random_state=0)
        _CSV_CACHE[identity + (sample_rows,)] = sampled
        return sampled
    return full


class _ReadCsvResolver:
    """A read_csv that maps script paths onto the run's data directory."""

    def __init__(self, data_dir: Optional[str], sample_rows: Optional[int]):
        self.data_dir = data_dir
        self.sample_rows = sample_rows

    def __call__(self, path: str, **kwargs) -> DataFrame:
        resolved = self._resolve(path)
        frame = _load_table(resolved, self.sample_rows, **kwargs)
        # scripts mutate their frame; never hand out the cached object
        return frame.copy()

    def _resolve(self, path: str) -> str:
        if self.data_dir is None:
            return path
        if os.path.isabs(path) and os.path.exists(path):
            return path
        candidate = os.path.join(self.data_dir, os.path.basename(path))
        if os.path.exists(candidate):
            return candidate
        direct = os.path.join(self.data_dir, path)
        if os.path.exists(direct):
            return direct
        return path  # let read_csv raise the natural FileNotFoundError


class _SandboxPandas:
    """Proxy module exposing minipandas with a patched read_csv."""

    def __init__(self, resolver: _ReadCsvResolver):
        self._resolver = resolver

    def __getattr__(self, name: str):
        if name == "read_csv":
            return self._resolver
        return getattr(minipandas, name)


def _last_dataframe_variable(source: str) -> Optional[str]:
    """Name of the last top-level assignment target (output convention)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    last = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                last = target.id
    return last


def _select_output(namespace: Dict[str, Any], source: str) -> Optional[DataFrame]:
    """Pick the script's output table: 'df' by convention, else the frame
    bound to the last assigned DataFrame variable, else any DataFrame."""
    if isinstance(namespace.get("df"), DataFrame):
        return namespace["df"]
    last = _last_dataframe_variable(source)
    if last and isinstance(namespace.get(last), DataFrame):
        return namespace[last]
    frames = [v for v in namespace.values() if isinstance(v, DataFrame)]
    return frames[-1] if frames else None


def _make_guarded_open(data_dir: Optional[str]):
    """A read-only ``open`` restricted to the run's data directory.

    Candidate scripts come out of a search over corpus-derived code; they
    should never be able to write files or read outside their dataset.
    Paths are fully resolved (symlinks and ``..`` collapsed) before the
    prefix check so escapes like ``dir/../../etc/passwd`` cannot slip by.
    """
    real_open = open

    def guarded_open(file, mode="r", *args, **kwargs):
        if any(flag in mode for flag in ("w", "a", "x", "+")):
            raise PermissionError("the script sandbox is read-only")
        path = os.path.realpath(os.path.abspath(os.fspath(file)))
        if data_dir is not None:
            root = os.path.realpath(os.path.abspath(data_dir))
            if not path.startswith(root + os.sep) and path != root:
                raise PermissionError(
                    f"the script sandbox can only read from {root!r}"
                )
        return real_open(path, mode, *args, **kwargs)

    return guarded_open


def build_sandbox_namespace(
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = None,
    extra_globals: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A fresh script namespace with guarded builtins wired in.

    Shared by :func:`run_script` and the incremental executor so both
    execute candidates under identical import/open/read_csv policies.
    """
    resolver = _ReadCsvResolver(data_dir, sample_rows)
    sandbox_pd = _SandboxPandas(resolver)
    module_table = dict(_ALLOWED_MODULES)
    module_table["pandas"] = sandbox_pd

    def guarded_import(name, globals=None, locals=None, fromlist=(), level=0):
        root = name.split(".")[0]
        if root in module_table:
            return module_table[root]
        raise ImportError(f"module {name!r} is not available inside the script sandbox")

    sandbox_builtins = dict(vars(builtins))
    sandbox_builtins["__import__"] = guarded_import
    sandbox_builtins["open"] = _make_guarded_open(data_dir)
    namespace: Dict[str, Any] = {
        "__builtins__": sandbox_builtins,
        "__name__": "__sandbox__",
    }
    if extra_globals:
        namespace.update(extra_globals)
    return namespace


def script_error_line(exc: BaseException) -> Optional[int]:
    """Deepest ``<script>`` frame in the exception's traceback."""
    tb = exc.__traceback__
    line = None
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == "<script>":
            line = tb.tb_lineno
        tb = tb.tb_next
    return line


def run_script(
    source: str,
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = None,
    extra_globals: Optional[Dict[str, Any]] = None,
) -> ExecutionResult:
    """Execute *source* in the sandbox and capture its output table.

    Parameters
    ----------
    source:
        Script text (straight-line pandas code).
    data_dir:
        Directory containing the run's CSV files; ``read_csv`` paths are
        resolved against it by basename.
    sample_rows:
        When set, every loaded table is down-sampled to at most this many
        rows (deterministically) — the paper's sampling optimization.
    extra_globals:
        Additional names injected into the script namespace.
    """
    namespace = build_sandbox_namespace(data_dir, sample_rows, extra_globals)

    try:
        code = compile(source, "<script>", "exec")
    except SyntaxError as exc:
        return ExecutionResult(ok=False, error=exc, error_line=exc.lineno)

    try:
        exec(code, namespace)
    except BaseException as exc:  # noqa: BLE001 - any script failure is data
        return ExecutionResult(ok=False, error=exc, error_line=script_error_line(exc))

    namespace.pop("__builtins__", None)
    return ExecutionResult(
        ok=True, output=_select_output(namespace, source), namespace=namespace
    )


def check_executes(
    source: str,
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = 200,
) -> bool:
    """The paper's CheckIfExecutes(): does the script run without error?

    Uses aggressive row sampling by default — execution validity rarely
    depends on data volume, and this check runs inside the beam-search
    inner loop.
    """
    result = run_script(source, data_dir=data_dir, sample_rows=sample_rows)
    return result.ok and result.output is not None


# --------------------------------------------------------------------------
# Parallel batched checks
# --------------------------------------------------------------------------

#: Lazily-created persistent worker pool, shared by every batch call in the
#: process (spawning a pool per beam-search wave would dwarf the win).
_POOL = None
_POOL_WORKERS = 0


def _check_executes_task(args) -> bool:
    """Top-level (picklable) worker for :func:`check_executes_batch`."""
    source, data_dir, sample_rows = args
    return check_executes(source, data_dir=data_dir, sample_rows=sample_rows)


def get_worker_pool(workers: int):
    """The process pool for batched constraint checks (created on demand).

    Workers fork from the parent, so they inherit the parsed-CSV cache as
    of pool creation; each worker then maintains its own cache copy.
    """
    global _POOL, _POOL_WORKERS
    from concurrent.futures import ProcessPoolExecutor

    if _POOL is not None and _POOL_WORKERS != workers:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def _shutdown_pool() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None


atexit.register(_shutdown_pool)


def check_executes_batch(
    sources: Sequence[str],
    data_dir: Optional[str] = None,
    sample_rows: Optional[int] = 200,
    workers: int = 1,
) -> List[bool]:
    """CheckIfExecutes() over a wave of candidate scripts.

    With ``workers <= 1`` this is exactly a serial loop over
    :func:`check_executes` (deterministic, no processes involved).  With
    more workers the checks fan out over a persistent process pool;
    results come back in input order, so callers that admit candidates in
    rank order stay deterministic regardless of worker count.  Any pool
    failure (broken worker, unpicklable payload) degrades to the serial
    loop rather than failing the search.
    """
    sources = list(sources)
    if workers <= 1 or len(sources) < 2:
        return [
            check_executes(s, data_dir=data_dir, sample_rows=sample_rows)
            for s in sources
        ]
    tasks = [(s, data_dir, sample_rows) for s in sources]
    try:
        pool = get_worker_pool(workers)
        return list(pool.map(_check_executes_task, tasks))
    except Exception:  # noqa: BLE001 - degrade to the always-correct path
        _shutdown_pool()
        return [
            check_executes(s, data_dir=data_dir, sample_rows=sample_rows)
            for s in sources
        ]
