"""Deterministic fault injection for sandbox fault-tolerance tests.

The execution-budget layer (watchdog timeouts, pool kill-and-respawn,
degraded waves) only matters when candidate scripts misbehave, and real
misbehaving candidates are awkward to conjure on demand.  This module
builds them deterministically: a small taxonomy of fault statements, a
rewriter that splices one into any script at a chosen top-level
statement position, and an :class:`IncrementalExecutor` wrapper that
injects the fault into every script matching a predicate — which is how
the tests plant a ``while True: pass`` inside one specific beam-search
candidate without touching the search itself.

Every fault is pure Python and reproducible: no sleeping, no randomness,
no dependence on machine speed for *whether* the fault fires (only for
how fast the watchdog notices it).
"""

from __future__ import annotations

import ast
from typing import Callable, Optional, Union

from .incremental import IncrementalExecutor

__all__ = ["FAULT_KINDS", "fault_snippet", "spin_snippet", "inject_fault",
           "FaultInjectingExecutor"]

#: The failure taxonomy the budget layer is tested against.
#:
#: ``hang``
#:     An unbounded pure-Python loop — the canonical pathology the
#:     watchdog's trace hook interrupts (`while True: pass`).
#: ``stubborn_hang``
#:     A hang that swallows the watchdog's one-shot ``ExecTimeout``
#:     (CPython unsets a trace function once it raises) and keeps
#:     spinning.  In-process budgets cannot stop it; only the process
#:     pool's kill-and-respawn path can.  Used to test exactly that.
#: ``crash``
#:     An ordinary script error, for checking that real faults are not
#:     misclassified as timeouts.
#: ``oom``
#:     Allocation churn — an unbounded loop that keeps allocating and
#:     recycling buffers (capped at ~8 MiB resident so the *test*
#:     process is never at risk), shaped like a runaway feature builder.
_FAULT_SNIPPETS = {
    "hang": "while True:\n    pass",
    "stubborn_hang": (
        "while True:\n"
        "    try:\n"
        "        while True:\n"
        "            pass\n"
        "    except BaseException:\n"
        "        pass"
    ),
    "crash": "raise RuntimeError('injected fault: crash')",
    "oom": (
        "_fault_hog = []\n"
        "while True:\n"
        "    _fault_hog.append(bytearray(4096))\n"
        "    if len(_fault_hog) >= 2048:\n"
        "        _fault_hog = []"
    ),
}

FAULT_KINDS = tuple(sorted(_FAULT_SNIPPETS))


def fault_snippet(kind: str) -> str:
    """The source text of one fault from the taxonomy above."""
    if kind not in _FAULT_SNIPPETS:
        raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
    return _FAULT_SNIPPETS[kind]


def spin_snippet(iterations: int) -> str:
    """A busy loop that *does* terminate after *iterations* steps.

    The slow-but-finite case: under a generous budget it must pass, so
    tests can show the watchdog only kills scripts that actually exceed
    their budget.
    """
    return f"for _fault_spin in range({int(iterations)}):\n    pass"


def inject_fault(source: str, kind: str, position: int = 0) -> str:
    """Splice the *kind* fault before top-level statement *position*.

    *position* indexes the script's top-level statements and is clamped
    to the script's length (so ``position=10**9`` appends the fault at
    the end — after every real statement has run).  The rest of the
    script is preserved verbatim, which keeps shared-prefix snapshots
    meaningful when the faulted script runs through the incremental
    executor.
    """
    snippet = fault_snippet(kind)
    tree = ast.parse(source)
    if not tree.body:
        return snippet
    position = max(0, min(position, len(tree.body)))
    lines = source.splitlines()
    if position == len(tree.body):
        insert_at = len(lines)
    else:
        insert_at = tree.body[position].lineno - 1  # lineno is 1-based
    return "\n".join(lines[:insert_at] + snippet.splitlines() + lines[insert_at:])


class FaultInjectingExecutor(IncrementalExecutor):
    """An :class:`IncrementalExecutor` that sabotages matching scripts.

    Every script whose source matches *match* (a substring, or a
    predicate over the source) is rewritten with :func:`inject_fault`
    before execution; everything else runs untouched.  Handing one of
    these to :class:`repro.core.BeamSearch` plants a pathological
    candidate inside a real search — the fault-tolerance tests' way of
    proving a hang is skipped while the search completes.
    """

    def __init__(
        self,
        *args,
        match: Union[str, Callable[[str], bool]],
        kind: str = "hang",
        position: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        fault_snippet(kind)  # validate eagerly
        self._match = match
        self._kind = kind
        self._position = position
        self.injected_sources: list = []

    def _matches(self, source: str) -> bool:
        if callable(self._match):
            return bool(self._match(source))
        return self._match in source

    def run_script(self, source, extra_globals=None):
        if self._matches(source):
            self.injected_sources.append(source)
            source = inject_fault(source, self._kind, self._position)
        return super().run_script(source, extra_globals=extra_globals)
