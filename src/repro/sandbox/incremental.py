"""Incremental, prefix-resumable sandbox execution.

The beam search checks hundreds of candidate scripts per standardization
run, and by construction the candidates share long statement prefixes: the
search's frontier is monotone, so edits move left-to-right and every
extension wave differs from its parent in a suffix only.  The classic
sandbox re-executes each candidate from line 1; this module executes
statement-by-statement, snapshotting the namespace after each statement,
so a new candidate resumes from the longest cached prefix and only pays
for its suffix.

Correctness model
-----------------
Snapshots are only sound when re-running the prefix cold would reproduce
the snapshot.  Three guards keep that true:

* scripts whose text uses randomness (``import random``, ``np.random``)
  bypass the executor entirely and run cold, as do runs with
  ``extra_globals`` (injected objects cannot be keyed or safely copied);
* namespace values are copied structurally with aliasing preserved
  (one memo per freeze/thaw, shared with :func:`copy.deepcopy` for
  uncommon types); frames and Series are captured with their
  copy-on-write ``copy()``, so snapshots and the live namespace share
  column payloads until a script writes a cell (tallied in
  ``IncrementalStats.payload_cells_shared``); values that cannot be
  safely copied — e.g. functions
  defined by the script, whose ``__globals__`` binds the live namespace —
  mark the prefix unsnapshottable, and execution simply continues without
  caching deeper prefixes;
* every snapshot stores a structural fingerprint of the namespace
  (variable names, types, frame shapes).  A thaw that fails to reproduce
  its fingerprint — the "snapshot-restore mismatch" escape hatch — drops
  the snapshot and falls back to a full :func:`repro.sandbox.run_script`;
* the snapshot store is pinned to the on-disk state of ``data_dir``
  (per-CSV mtime/size): if a table file changes between runs, every
  cached prefix is discarded before the next probe.

An optional ``verify=True`` mode cross-checks every incremental result
against a cold run (used by tests and the perf benchmark's self-audit).
"""

from __future__ import annotations

import ast
import copy
import os
import re as _re
import sys
import time
import types
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .._lru import LRUCache
from ..dialects import resolve_dialect
from ..dialects.base import ModuleProxy
from ..minipandas import DataFrame
from ..minipandas.series import Series
from .runner import (
    ExecTimeout,
    ExecutionResult,
    _Watchdog,
    build_sandbox_namespace,
    run_script,
    script_error_line,
)

__all__ = ["IncrementalExecutor", "IncrementalStats"]

#: Matches genuine randomness use (``import random``, ``random.random()``,
#: ``np.random.seed``) but not the deterministic ``random_state=`` kwarg,
#: because ``_`` is a word character and blocks the ``\b`` boundary.
_RANDOM_PATTERN = _re.compile(r"\brandom\b")

#: Types safe to share between snapshots without copying.
_IMMUTABLE_TYPES = (
    type(None), bool, int, float, complex, str, bytes, frozenset, range,
    np.generic, np.dtype,
)


class _Unsnapshottable(Exception):
    """A namespace value cannot be safely copied into a snapshot."""


def _snapshot_value(
    value: Any, memo: Dict[int, Any], stats: Optional["IncrementalStats"] = None
) -> Any:
    """Structural copy of one namespace value, preserving aliasing.

    *memo* maps ``id(original) -> copy`` (the same scheme
    :func:`copy.deepcopy` uses, and is shared with it), so two names bound
    to one frame stay bound to one copy after restore.

    Frames and Series are copied with their own copy-on-write ``copy()``:
    the snapshot and the live namespace reference the *same* column
    payload lists (O(columns) per frame, no cell duplication) and a later
    in-place write on either side materializes a private list first.
    ``stats`` tallies how many cells each snapshot shared that a deep
    copy would have duplicated.
    """
    if isinstance(value, _IMMUTABLE_TYPES):
        return value
    prior = memo.get(id(value))
    if prior is not None:
        return prior
    if isinstance(value, (types.ModuleType, ModuleProxy, type)):
        return value  # shared sandbox substrate, never script-mutable state
    if isinstance(value, DataFrame):
        clone = value.copy()
        if stats is not None:
            stats.frames_snapshotted += 1
            stats.payload_cells_shared += len(value) * len(value.columns)
    elif isinstance(value, Series):
        clone = value.copy()
        if stats is not None:
            stats.payload_cells_shared += len(value)
    elif isinstance(value, np.ndarray):
        clone = value.copy()
    elif isinstance(value, list):
        clone = []
        memo[id(value)] = clone
        clone.extend(_snapshot_value(v, memo, stats) for v in value)
        return clone
    elif isinstance(value, dict):
        clone = {}
        memo[id(value)] = clone
        for k, v in value.items():
            clone[k] = _snapshot_value(v, memo, stats)
        return clone
    elif isinstance(value, set):
        clone = {_snapshot_value(v, memo, stats) for v in value}
    elif isinstance(value, tuple):
        return tuple(_snapshot_value(v, memo, stats) for v in value)
    elif callable(value):
        # a function def'd by the script closes over the live namespace;
        # sharing or copying it would either leak or sever that binding
        raise _Unsnapshottable(type(value).__name__)
    else:
        try:
            clone = copy.deepcopy(value, memo)
        except Exception as exc:  # noqa: BLE001 - any failure means "don't cache"
            raise _Unsnapshottable(f"{type(value).__name__}: {exc}") from exc
    memo[id(value)] = clone
    return clone


def _fingerprint(namespace: Dict[str, Any]) -> Tuple:
    """Cheap structural signature used to detect restore mismatches."""
    signature = []
    for name in sorted(namespace):
        if name in ("__builtins__", "__name__"):
            continue
        value = namespace[name]
        if isinstance(value, DataFrame):
            signature.append((name, "frame", tuple(value.columns), len(value)))
        elif isinstance(value, Series):
            signature.append((name, "series", value.name, len(value)))
        else:
            signature.append((name, type(value).__name__))
    return tuple(signature)


@dataclass
class IncrementalStats:
    """Counters reported into ``SearchStats`` and the perf benchmark."""

    runs: int = 0
    cold_runs: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    resumed_statements: int = 0
    executed_statements: int = 0
    fallbacks: int = 0
    timeouts: int = 0
    #: DataFrames captured into (or thawed out of) snapshots via the
    #: copy-on-write structural copy.
    frames_snapshotted: int = 0
    #: Cells those copies shared by reference — each one a cell a deep
    #: copy would have duplicated into the snapshot store.
    payload_cells_shared: int = 0

    @property
    def hit_rate(self) -> float:
        probes = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / probes if probes else 0.0

    @property
    def mean_resume_depth(self) -> float:
        return self.resumed_statements / self.prefix_hits if self.prefix_hits else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": float(self.runs),
            "cold_runs": float(self.cold_runs),
            "prefix_hits": float(self.prefix_hits),
            "prefix_misses": float(self.prefix_misses),
            "hit_rate": self.hit_rate,
            "mean_resume_depth": self.mean_resume_depth,
            "resumed_statements": float(self.resumed_statements),
            "executed_statements": float(self.executed_statements),
            "fallbacks": float(self.fallbacks),
            "timeouts": float(self.timeouts),
            "frames_snapshotted": float(self.frames_snapshotted),
            "payload_cells_shared": float(self.payload_cells_shared),
        }


class IncrementalExecutor:
    """Prefix-resumable :func:`run_script` for one (data_dir, sample_rows).

    Parameters
    ----------
    data_dir, sample_rows:
        Fixed per executor — they define the semantics of ``read_csv``
        inside scripts, so snapshots are only valid within one setting.
        Callers needing another setting build another executor.
    snapshot_budget:
        LRU capacity of the prefix-snapshot store.  0 disables resumption
        (every run is a cold :func:`run_script`).
    verify:
        Cross-check each incremental result against a cold run and fall
        back on mismatch.  Defeats the speedup; for audits and tests.
    exec_timeout_s:
        Wall-clock budget for one whole script; on expiry the run fails
        with :class:`ExecTimeout` (counted in ``stats.timeouts``).  None
        (the default) executes unwatched.
    statement_timeout_s:
        Wall-clock budget for each individual statement — tighter than
        the script budget when one statement is the pathology (an
        unbounded loop, a quadratic ``apply``).  None disables it.
    dialect:
        The API surface scripts execute against (name or
        :class:`~repro.dialects.ApiDialect`); fixed per executor like
        ``data_dir`` — snapshots from one surface are meaningless on
        another.  None means pandas.
    """

    def __init__(
        self,
        data_dir: Optional[str] = None,
        sample_rows: Optional[int] = None,
        snapshot_budget: int = 64,
        verify: bool = False,
        exec_timeout_s: Optional[float] = None,
        statement_timeout_s: Optional[float] = None,
        dialect=None,
    ):
        self.data_dir = data_dir
        self.sample_rows = sample_rows
        self.verify = verify
        self.exec_timeout_s = exec_timeout_s
        self.statement_timeout_s = statement_timeout_s
        self.dialect = resolve_dialect(dialect)
        self._snapshots = LRUCache(snapshot_budget)
        self._code_cache = LRUCache(512)
        self._base_builtins = build_sandbox_namespace(
            data_dir, sample_rows, dialect=self.dialect
        )["__builtins__"]
        self._data_state = self._data_dir_state()
        self.stats = IncrementalStats()

    # ------------------------------------------------------------------ public
    def run_script(
        self, source: str, extra_globals: Optional[Dict[str, Any]] = None
    ) -> ExecutionResult:
        """Drop-in for :func:`repro.sandbox.run_script` on this setting."""
        self.stats.runs += 1
        if (
            extra_globals
            or self._snapshots.capacity == 0
            or _RANDOM_PATTERN.search(source)
        ):
            return self._cold(source, extra_globals)
        state = self._data_dir_state()
        if state != self._data_state:
            # a data file changed under us: every cached prefix is stale
            self._snapshots.clear()
            self._data_state = state
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return ExecutionResult(ok=False, error=exc, error_line=exc.lineno)
        segments = [ast.get_source_segment(source, node) for node in tree.body]
        if not segments or any(s is None for s in segments):
            return self._cold(source, extra_globals)
        prefix = tuple(segments)

        namespace, resumed = self._resume(prefix)
        if namespace is None and resumed < 0:
            # fingerprint mismatch on thaw: the escape hatch
            return self._cold(source, extra_globals, fallback=True)
        if namespace is None:
            namespace = self._fresh_namespace()
            self.stats.prefix_misses += 1
        else:
            self.stats.prefix_hits += 1
            self.stats.resumed_statements += resumed

        result = self._execute_suffix(source, tree, prefix, namespace, resumed)
        if self.verify and not self._matches_cold(source, result):
            self._snapshots.clear()
            return self._cold(source, extra_globals, fallback=True)
        return result

    def check_executes(self, source: str) -> bool:
        """CheckIfExecutes() over the incremental path."""
        result = self.run_script(source)
        return result.ok and result.output is not None

    def clear(self) -> None:
        self._snapshots.clear()

    def snapshot_count(self) -> int:
        return len(self._snapshots)

    # ---------------------------------------------------------------- internal
    def _cold(
        self,
        source: str,
        extra_globals: Optional[Dict[str, Any]] = None,
        fallback: bool = False,
    ) -> ExecutionResult:
        self.stats.cold_runs += 1
        if fallback:
            self.stats.fallbacks += 1
        result = run_script(
            source,
            data_dir=self.data_dir,
            sample_rows=self.sample_rows,
            extra_globals=extra_globals,
            timeout_s=self.exec_timeout_s,
            dialect=self.dialect,
        )
        if result.timed_out:
            self.stats.timeouts += 1
        return result

    def _data_dir_state(self) -> Tuple:
        """Identity of every table file a script could read: snapshots made
        against one state are invalid once any file changes on disk."""
        if not self.data_dir:
            return ()
        entries = []
        try:
            for root, _dirs, files in os.walk(self.data_dir):
                for name in files:
                    if not name.endswith(".csv"):
                        continue
                    stat = os.stat(os.path.join(root, name))
                    entries.append((root, name, stat.st_mtime_ns, stat.st_size))
        except OSError:
            return ()
        return tuple(sorted(entries))

    def _fresh_namespace(self) -> Dict[str, Any]:
        return {
            "__builtins__": dict(self._base_builtins),
            "__name__": "__sandbox__",
        }

    def _resume(self, prefix: Tuple[str, ...]):
        """Thaw the longest cached prefix; ``(None, 0)`` means cold start,
        ``(None, -1)`` means a snapshot failed its fingerprint check."""
        for depth in range(len(prefix), 0, -1):
            entry = self._snapshots.peek(prefix[:depth])
            if entry is None:
                continue
            self._snapshots.get(prefix[:depth])  # refresh LRU recency
            frozen, fingerprint = entry
            try:
                namespace = self._thaw(frozen)
            except Exception:  # noqa: BLE001 - corrupt snapshot: drop + cold
                self._drop(prefix[:depth])
                return None, -1
            if _fingerprint(namespace) != fingerprint:
                self._drop(prefix[:depth])
                return None, -1
            return namespace, depth
        return None, 0

    def _drop(self, key: Tuple[str, ...]) -> None:
        self._snapshots.pop(key, None)

    def _thaw(self, frozen: Dict[str, Any]) -> Dict[str, Any]:
        namespace = self._fresh_namespace()
        memo: Dict[int, Any] = {}
        for name, value in frozen.items():
            namespace[name] = _snapshot_value(value, memo, self.stats)
        return namespace

    def _freeze(self, namespace: Dict[str, Any]):
        frozen: Dict[str, Any] = {}
        memo: Dict[int, Any] = {}
        for name, value in namespace.items():
            if name in ("__builtins__", "__name__"):
                continue
            frozen[name] = _snapshot_value(value, memo, self.stats)
        return frozen, _fingerprint(namespace)

    def _compiled(self, segment: str, node: ast.stmt):
        """Per-statement code object, keeping the original line numbers so
        ``error_line`` matches a cold run's traceback exactly."""
        key = (segment, node.lineno, node.col_offset)
        code = self._code_cache.peek(key)
        if code is None:
            code = compile(
                ast.Module(body=[node], type_ignores=[]), "<script>", "exec"
            )
            self._code_cache[key] = code
        return code

    def _execute_suffix(
        self,
        source: str,
        tree: ast.Module,
        prefix: Tuple[str, ...],
        namespace: Dict[str, Any],
        resumed: int,
    ) -> ExecutionResult:
        snapshottable = True
        deadline = (
            time.monotonic() + self.exec_timeout_s if self.exec_timeout_s else None
        )
        for position in range(resumed, len(tree.body)):
            code = self._compiled(prefix[position], tree.body[position])
            # per-statement budget, clipped to whatever script budget remains
            budget = self.statement_timeout_s
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.timeouts += 1
                    exhausted = ExecTimeout(
                        f"script exceeded its {self.exec_timeout_s:g}s execution budget"
                    )
                    return ExecutionResult(
                        ok=False,
                        error=exhausted,
                        error_line=tree.body[position].lineno,
                    )
                budget = min(budget, remaining) if budget else remaining
            watchdog = _Watchdog.arm(budget)
            try:
                exec(code, namespace)
            except BaseException as exc:  # noqa: BLE001 - script failures are data
                if watchdog is not None:
                    sys.settrace(watchdog.prior)  # see _Watchdog's disarm protocol
                if isinstance(exc, ExecTimeout):
                    self.stats.timeouts += 1
                return ExecutionResult(
                    ok=False, error=exc, error_line=script_error_line(exc)
                )
            finally:
                if watchdog is not None:
                    sys.settrace(watchdog.prior)
                    watchdog.cancel()
            self.stats.executed_statements += 1
            if snapshottable:
                try:
                    self._snapshots[prefix[: position + 1]] = self._freeze(namespace)
                except _Unsnapshottable:
                    # keep executing; deeper prefixes just won't be cached
                    snapshottable = False
        namespace.pop("__builtins__", None)
        return ExecutionResult(
            ok=True,
            output=self.dialect.select_output(namespace, source),
            namespace=namespace,
        )

    def _matches_cold(self, source: str, result: ExecutionResult) -> bool:
        cold = run_script(
            source,
            data_dir=self.data_dir,
            sample_rows=self.sample_rows,
            timeout_s=self.exec_timeout_s,
            dialect=self.dialect,
        )
        if cold.ok != result.ok:
            return False
        if not cold.ok:
            return type(cold.error) is type(result.error) and (
                cold.error_line == result.error_line
            )
        if (cold.output is None) != (result.output is None):
            return False
        if cold.output is None:
            return True
        return (
            cold.output.columns == result.output.columns
            and cold.output.index.tolist() == result.output.index.tolist()
            and cold.output.to_dict() == result.output.to_dict()
        )
