"""repro.sandbox — executes API-call scripts against their dialect's shim.

The execution-constraint oracle: candidate scripts are compiled and run
against the module table their :class:`~repro.dialects.ApiDialect`
declares (for the default pandas dialect, ``pandas`` maps to
:mod:`repro.minipandas`) with loader paths resolved against a per-run
data directory.  Three entry points, fastest-first for the beam search
hot path:

* :class:`IncrementalExecutor` — statement-level execution with prefix
  snapshots, so candidates sharing a prefix only pay for their suffix;
* :func:`check_executes_batch` — a wave of checks over a process pool;
* :func:`run_script` / :func:`check_executes` — the cold, single-script
  oracle everything above reduces to.

Every entry point takes an optional wall-clock budget (``timeout_s`` /
``exec_timeout_s``): a script that exceeds it fails with
:class:`ExecTimeout` instead of hanging the search, and the batched path
hard-kills and respawns hung shard workers (see :mod:`repro.sandbox.faults`
for the failure taxonomy the budgets are tested against).  Budgets are
off by default — the unbudgeted path is bit-identical to earlier builds.

The batched path runs on the persistent sharded worker engine
(:mod:`repro.sandbox.shards`): long-lived workers with sticky resident
state (incremental executors, content-addressed source stores) and
deterministic, order-preserving result gathering.
"""

from .incremental import IncrementalExecutor, IncrementalStats
from .runner import (
    BatchReport,
    ExecTimeout,
    ExecutionResult,
    SandboxError,
    SandboxImportError,
    check_executes,
    check_executes_batch,
    kill_worker_pool,
    run_script,
)
from .shards import ParallelMismatchError, ShardEngine, ShardTask

__all__ = [
    "BatchReport",
    "ExecTimeout",
    "ExecutionResult",
    "SandboxError",
    "SandboxImportError",
    "check_executes",
    "check_executes_batch",
    "kill_worker_pool",
    "run_script",
    "IncrementalExecutor",
    "IncrementalStats",
    "ParallelMismatchError",
    "ShardEngine",
    "ShardTask",
]
