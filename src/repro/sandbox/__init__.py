"""repro.sandbox — executes data-preparation scripts against minipandas.

The execution-constraint oracle: candidate scripts are compiled and run with
``pandas`` mapped to :mod:`repro.minipandas` and CSV paths resolved against
a per-run data directory.  Three entry points, fastest-first for the beam
search hot path:

* :class:`IncrementalExecutor` — statement-level execution with prefix
  snapshots, so candidates sharing a prefix only pay for their suffix;
* :func:`check_executes_batch` — a wave of checks over a process pool;
* :func:`run_script` / :func:`check_executes` — the cold, single-script
  oracle everything above reduces to.
"""

from .incremental import IncrementalExecutor, IncrementalStats
from .runner import (
    ExecutionResult,
    SandboxError,
    check_executes,
    check_executes_batch,
    run_script,
)

__all__ = [
    "ExecutionResult",
    "SandboxError",
    "check_executes",
    "check_executes_batch",
    "run_script",
    "IncrementalExecutor",
    "IncrementalStats",
]
