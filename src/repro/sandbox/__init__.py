"""repro.sandbox — executes data-preparation scripts against minipandas.

The execution-constraint oracle: candidate scripts are compiled and run with
``pandas`` mapped to :mod:`repro.minipandas` and CSV paths resolved against
a per-run data directory.
"""

from .runner import ExecutionResult, SandboxError, check_executes, run_script

__all__ = ["ExecutionResult", "SandboxError", "check_executes", "run_script"]
