"""Command-line interface for the LucidScript reproduction.

Subcommands::

    python -m repro standardize --script prep.py --corpus-dir peers/ --data-dir data/
    python -m repro score       --script prep.py --corpus-dir peers/
    python -m repro explain     --script prep.py --corpus-dir peers/ --data-dir data/
    python -m repro build-workload medical --out /tmp/workloads
    python -m repro detect-leakage --script prep.py --corpus-dir peers/ \
        --data-dir data/ --target Outcome
    python -m repro index build  --corpus-dir peers/ --out peers.index.json
    python -m repro index update --index peers.index.json
    python -m repro index stats  --index peers.index.json
    python -m repro index retrieve --corpus-dir pool/ --script prep.py -k 20

``standardize``/``score``/``explain``/``detect-leakage`` also accept
``--index peers.index.json`` instead of (or alongside) ``--corpus-dir``:
the persisted offline phase is loaded in O(snapshot) and, when a corpus
directory is also given, refreshed by reparsing only changed files.

``--retrieve-k N`` switches ``standardize``/``score``/``explain``/
``detect-leakage`` to the retrieve-then-compute path: the corpus
argument is treated as a *pool*, and the working corpus becomes the
pool's N most similar scripts to the input (LSH top-k over minhash +
schema signatures; ``--verify-retrieval`` audits each query against
brute force).  ``index retrieve`` exposes the same search directly,
printing the ranked hits.

Standardization-as-a-service::

    python -m repro serve  --socket /tmp/repro.sock [--audit]
    python -m repro client score --socket /tmp/repro.sock \
        --script prep.py --corpus-dir peers/

``serve`` runs the long-lived request engine (warm per-corpus state,
cross-request batch coalescing, graceful SIGTERM drain); ``client``
sends one job (or ``ping``/``stats``/``shutdown``) and prints the
response JSON.  See :mod:`repro.server`.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional, Sequence, Union

from .core import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    StandardizationError,
    TableJaccardIntent,
)
from .core.explain import explain_result
from .corpus import (
    CorpusIndex,
    RetrievalIndex,
    load_index,
    load_retrieval_index,
    save_index,
    save_retrieval_index,
    shared_store,
)
from .lang import CorpusVocabulary
from .workloads import build_competition, competition_names

__all__ = ["main", "build_parser"]


def _read_corpus(corpus_dir: str) -> List[str]:
    """Load a corpus: .py scripts plus flattened .ipynb notebooks.

    Byte-identical duplicates are skipped with a warning — feeding the
    same script twice would double-count its edges in Q(x) and skew
    every standardness score toward the duplicated steps.  A notebook
    that fails to flatten is reported (with its path) and skipped, so
    one corrupt download cannot abort the whole corpus load.
    """
    from .lang import script_from_notebook

    # sorted by file name, not directory iteration order: corpus order is
    # semantic (it drives Counter tie order and the corpus cache key), so
    # the same directory must load identically on every filesystem —
    # matching MembershipIndex._scan's ordering exactly
    py_paths = sorted(
        glob.glob(os.path.join(corpus_dir, "*.py")), key=os.path.basename
    )
    nb_paths = sorted(
        glob.glob(os.path.join(corpus_dir, "*.ipynb")), key=os.path.basename
    )
    loaded: List[tuple] = []
    for path in py_paths:
        with open(path, "r") as handle:
            loaded.append((path, handle.read()))
    for path in nb_paths:
        try:
            loaded.append((path, script_from_notebook(path)))
        except (ValueError, json.JSONDecodeError, OSError) as exc:
            print(
                f"warning: skipping notebook {path}: {exc}",
                file=sys.stderr,
            )
    scripts: List[str] = []
    first_seen = {}
    for path, text in loaded:
        original = first_seen.get(text)
        if original is not None:
            print(
                f"warning: skipping {path}: byte-identical to {original} "
                "(duplicates would double-count in Q(x))",
                file=sys.stderr,
            )
            continue
        first_seen[text] = path
        scripts.append(text)
    if not scripts:
        raise SystemExit(f"no .py or .ipynb scripts found in {corpus_dir!r}")
    return scripts


def _corpus_input(args) -> Union[List[str], CorpusIndex]:
    """Resolve --index/--corpus-dir into what LucidScript should curate.

    With ``--index``, the persisted offline phase is loaded without
    reparsing; a ``--corpus-dir`` given alongside refreshes it in
    memory first (only changed files are reparsed; the snapshot on disk
    is not rewritten — use ``index update`` for that).
    """
    index_path = getattr(args, "index", None)
    if index_path:
        index = load_index(index_path)
        if args.corpus_dir:
            index.refresh(args.corpus_dir)
        if not index.n_scripts:
            raise SystemExit(f"corpus index {index_path!r} is empty")
        return index
    if not args.corpus_dir:
        raise SystemExit("one of --corpus-dir or --index is required")
    return _read_corpus(args.corpus_dir)


def _apply_retrieval(corpus, args, config: LSConfig):
    """Swap the curated corpus for a retrieval pool when --retrieve-k is set.

    The resolved corpus (raw scripts or a loaded index) becomes the pool
    of a :class:`RetrievalIndex` over the shared store; LucidScript then
    defers curation and assembles each query's working corpus by top-k
    similarity.
    """
    k = getattr(args, "retrieve_k", None)
    if k is None:
        return corpus
    config.retrieval_k = k
    config.verify_retrieval = bool(getattr(args, "verify_retrieval", False))
    pool = RetrievalIndex(store=shared_store(config.dialect))
    if isinstance(corpus, CorpusIndex):
        for content_hash in corpus.content_hashes():
            pool.add_record(corpus._records[content_hash])
    else:
        for source in corpus:
            pool.add_script(source)
    if not pool.n_scripts:
        raise SystemExit("retrieval pool is empty")
    return pool


def _read_script(path: str) -> str:
    with open(path, "r") as handle:
        return handle.read()


def _make_intent(args):
    if args.target:
        return ModelPerformanceIntent(target=args.target, tau=args.tau_m)
    return TableJaccardIntent(tau=args.tau_j)


def _make_config(args) -> LSConfig:
    return LSConfig(
        seq=args.seq,
        beam_size=args.beam_size,
        diversity=not args.no_diversity,
        early_check=not args.late_check,
        sample_rows=args.sample_rows,
        dialect=args.dialect,
    )


def _dialect_arg(name: str) -> str:
    """argparse type for --dialect: unknown names fail listing options."""
    from .dialects import UnknownDialectError, get_dialect

    try:
        get_dialect(name)
    except UnknownDialectError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return name


def _add_dialect(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dialect",
        default="pandas",
        type=_dialect_arg,
        metavar="NAME",
        help="API dialect of the scripts (default: pandas; "
        "see 'dialect list' for registered dialects)",
    )


def _add_common(parser: argparse.ArgumentParser, with_search: bool = True) -> None:
    parser.add_argument("--script", required=True, help="user script path")
    parser.add_argument("--corpus-dir", help="directory of peer .py scripts")
    _add_dialect(parser)
    parser.add_argument(
        "--index",
        help="persisted corpus index (from 'index build'); loads the offline "
        "phase without reparsing, refreshed against --corpus-dir when given",
    )
    parser.add_argument(
        "--retrieve-k",
        type=int,
        default=None,
        metavar="N",
        help="treat the corpus as a pool and curate the N scripts most "
        "similar to the input via LSH top-k retrieval",
    )
    parser.add_argument(
        "--verify-retrieval",
        action="store_true",
        help="audit every top-k retrieval against brute-force signature "
        "similarity (debug mode, O(pool) per query)",
    )
    if with_search:
        parser.add_argument("--data-dir", help="directory holding the dataset CSVs")
        parser.add_argument("--tau-j", type=float, default=0.9,
                            help="table-Jaccard threshold (default 0.9)")
        parser.add_argument("--tau-m", type=float, default=1.0,
                            help="model-performance threshold %% (used with --target)")
        parser.add_argument("--target", help="target column (switches to the tau_M intent)")
        parser.add_argument("--seq", type=int, default=16, help="max transformations")
        parser.add_argument("--beam-size", type=int, default=3, help="beam size K")
        parser.add_argument("--no-diversity", action="store_true",
                            help="disable Algorithm 3 diversity clustering")
        parser.add_argument("--late-check", action="store_true",
                            help="verify executability only at the end")
        parser.add_argument("--sample-rows", type=int, default=500,
                            help="row sample for constraint checks (0 = no sampling)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LucidScript: bottom-up script standardization"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_std = sub.add_parser("standardize", help="standardize a script against a corpus")
    _add_common(p_std)
    p_std.add_argument("--output", help="write the standardized script here")

    p_score = sub.add_parser("score", help="RE standardness score of a script")
    _add_common(p_score, with_search=False)

    p_explain = sub.add_parser("explain", help="standardize and explain each change")
    _add_common(p_explain)

    p_build = sub.add_parser("build-workload", help="materialize a synthetic competition")
    p_build.add_argument("name", choices=competition_names())
    p_build.add_argument("--out", required=True, help="output root directory")
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--n-scripts", type=int, default=None)

    p_leak = sub.add_parser("detect-leakage", help="flag target-leakage-like steps")
    _add_common(p_leak)

    p_curate = sub.add_parser(
        "curate", help="run the offline phase and persist the search space"
    )
    p_curate.add_argument("--corpus-dir", required=True,
                          help="directory of peer .py scripts")
    p_curate.add_argument("--out", required=True,
                          help="path for the vocabulary JSON")

    p_index = sub.add_parser(
        "index", help="build / update / inspect a persistent corpus index"
    )
    index_sub = p_index.add_subparsers(dest="index_command", required=True)
    p_ibuild = index_sub.add_parser(
        "build", help="index a corpus directory from scratch and persist it"
    )
    p_ibuild.add_argument("--corpus-dir", required=True,
                          help="directory of peer .py/.ipynb scripts")
    p_ibuild.add_argument("--out", required=True,
                          help="path for the index snapshot JSON")
    _add_dialect(p_ibuild)
    p_iupdate = index_sub.add_parser(
        "update", help="stat-scan the corpus directory, reparse only changes"
    )
    p_iupdate.add_argument("--index", required=True, help="index snapshot to update")
    p_iupdate.add_argument("--corpus-dir",
                           help="override the recorded corpus directory")
    p_iupdate.add_argument("--audit", action="store_true",
                           help="verify bit-identity against a from-scratch rebuild")
    p_istats = index_sub.add_parser(
        "stats", help="corpus statistics and cache provenance of an index"
    )
    p_istats.add_argument("--index", required=True, help="index snapshot to inspect")
    p_istats.add_argument("--audit", action="store_true",
                          help="verify bit-identity against a from-scratch rebuild")
    p_iretr = index_sub.add_parser(
        "retrieve", help="top-k most similar pool scripts for a query script"
    )
    p_iretr.add_argument("--corpus-dir",
                         help="directory of pool .py/.ipynb scripts")
    p_iretr.add_argument("--index",
                         help="persisted retrieval-pool snapshot "
                         "(from a previous 'index retrieve --out')")
    p_iretr.add_argument("--script", required=True, help="query script path")
    p_iretr.add_argument("-k", "--k", type=int, default=20, dest="k",
                         help="number of hits to retrieve (default 20)")
    p_iretr.add_argument("--verify", action="store_true",
                         help="audit the LSH result against brute-force "
                         "signature similarity")
    p_iretr.add_argument("--out",
                         help="persist the retrieval pool snapshot here for "
                         "reuse (loads in O(snapshot), no reparsing)")
    _add_dialect(p_iretr)

    p_dialect = sub.add_parser(
        "dialect", help="list registered API dialects / run the dialect audit"
    )
    dialect_sub = p_dialect.add_subparsers(dest="dialect_command", required=True)
    dialect_sub.add_parser("list", help="registered dialects and their surfaces")
    p_dverify = dialect_sub.add_parser(
        "verify",
        help="verify_dialect audit: replay each dialect's recorded fixture "
        "case and require a byte-for-byte match",
    )
    p_dverify.add_argument("--dialect", dest="dialects", action="append",
                           type=_dialect_arg, metavar="NAME",
                           help="audit only this dialect (repeatable; default: "
                           "every dialect with a recorded fixture)")

    p_serve = sub.add_parser(
        "serve", help="run the long-lived standardization server"
    )
    p_serve.add_argument("--socket", help="unix socket path to listen on")
    p_serve.add_argument("--host", help="TCP host to listen on (with --port)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral, printed at startup)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="bounded admission: max queued jobs (default 64)")
    p_serve.add_argument("--warm-limit", type=int, default=8,
                         help="warm systems pinned under LRU admission (default 8)")
    p_serve.add_argument("--wave-limit", type=int, default=8,
                         help="max jobs coalesced into one dispatch wave (default 8)")
    p_serve.add_argument("--deadline-s", type=float, default=None,
                         help="default per-request SLA in seconds (requests "
                         "may override)")
    p_serve.add_argument("--audit", action="store_true",
                         help="verify_server: replay every response in a fresh "
                         "one-shot process and require byte-identical JSON")

    p_client = sub.add_parser(
        "client", help="send one request to a running standardization server"
    )
    p_client.add_argument(
        "op",
        choices=["standardize", "score", "explain", "detect-leakage",
                 "ping", "stats", "shutdown"],
        help="job or control operation",
    )
    p_client.add_argument("--socket", help="server unix socket path")
    p_client.add_argument("--host", help="server TCP host (with --port)")
    p_client.add_argument("--port", type=int, help="server TCP port")
    p_client.add_argument("--script", help="user script path (job ops)")
    p_client.add_argument("--corpus-dir",
                          help="directory of peer scripts (read locally and "
                          "inlined, so TCP servers need no shared filesystem)")
    p_client.add_argument("--data-dir",
                          help="dataset directory *on the server's* filesystem")
    p_client.add_argument("--target",
                          help="target column (switches to the tau_M intent)")
    p_client.add_argument("--tau-j", type=float, default=0.9,
                          help="table-Jaccard threshold (default 0.9)")
    p_client.add_argument("--tau-m", type=float, default=1.0,
                          help="model-performance threshold %% (with --target)")
    p_client.add_argument("--seq", type=int, default=None,
                          help="max transformations (server default otherwise)")
    p_client.add_argument("--beam-size", type=int, default=None,
                          help="beam size K (server default otherwise)")
    p_client.add_argument("--sample-rows", type=int, default=None,
                          help="row sample for constraint checks")
    p_client.add_argument("--deadline-s", type=float, default=None,
                          help="per-request SLA in seconds")
    p_client.add_argument("--timeout", type=float, default=300.0,
                          help="client-side socket timeout (default 300s)")

    return parser


def _resolve_sample_rows(args) -> Optional[int]:
    return None if args.sample_rows == 0 else args.sample_rows


def cmd_standardize(args) -> int:
    corpus = _corpus_input(args)
    config = _make_config(args)
    config.sample_rows = _resolve_sample_rows(args)
    corpus = _apply_retrieval(corpus, args, config)
    system = LucidScript(
        corpus, data_dir=args.data_dir, intent=_make_intent(args), config=config
    )
    try:
        result = system.standardize(_read_script(args.script))
    except StandardizationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.output_script)
    print(f"\n# {result.summary().replace(chr(10), chr(10) + '# ')}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.output_script + "\n")
    return 0


def cmd_score(args) -> int:
    corpus = _corpus_input(args)
    config = LSConfig(dialect=args.dialect)
    corpus = _apply_retrieval(corpus, args, config)
    system = LucidScript(corpus, config=config)
    score = system.score(_read_script(args.script))
    print(f"{score:.4f}")
    return 0


def cmd_explain(args) -> int:
    corpus = _corpus_input(args)
    config = _make_config(args)
    config.sample_rows = _resolve_sample_rows(args)
    corpus = _apply_retrieval(corpus, args, config)
    system = LucidScript(
        corpus, data_dir=args.data_dir, intent=_make_intent(args), config=config
    )
    try:
        result = system.standardize(_read_script(args.script))
    except StandardizationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    explanations = explain_result(result, system.vocabulary)
    if not explanations:
        print("script is already standard; no changes recommended")
        return 0
    for explanation in explanations:
        print(explanation.render())
    print(f"\noverall: {result.improvement:.1f}% RE improvement")
    return 0


def cmd_build_workload(args) -> int:
    corpus = build_competition(
        args.name, args.out, seed=args.seed, n_scripts=args.n_scripts
    )
    scripts_dir = os.path.join(corpus.data_dir, "scripts")
    os.makedirs(scripts_dir, exist_ok=True)
    for position, script in enumerate(corpus.scripts):
        with open(os.path.join(scripts_dir, f"script_{position:03d}.py"), "w") as handle:
            handle.write(script + "\n")
    print(f"data:    {os.path.join(corpus.data_dir, corpus.data_file)}")
    print(f"scripts: {scripts_dir} ({len(corpus.scripts)} files)")
    print(f"target:  {corpus.target} ({corpus.task})")
    return 0


def cmd_detect_leakage(args) -> int:
    corpus = _corpus_input(args)
    config = _make_config(args)
    config.sample_rows = _resolve_sample_rows(args)
    corpus = _apply_retrieval(corpus, args, config)
    system = LucidScript(
        corpus, data_dir=args.data_dir, intent=_make_intent(args), config=config
    )
    try:
        result = system.standardize(_read_script(args.script))
    except StandardizationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    removed = result.removed_statements()
    if not removed:
        print("no out-of-the-ordinary steps flagged")
        return 0
    print("steps flagged as out-of-the-ordinary (removed by standardization):")
    for line in removed:
        prevalence = system.vocabulary.statement_frequency(line)
        print(f"  {line}    [in {prevalence * 100:.0f}% of corpus scripts]")
    return 0


def cmd_curate(args) -> int:
    from .lang import save_vocabulary

    corpus = _read_corpus(args.corpus_dir)
    vocabulary = CorpusVocabulary.from_scripts(corpus)
    save_vocabulary(vocabulary, args.out)
    stats = vocabulary.stats()
    print(f"curated {stats.n_scripts} scripts -> {args.out}")
    print(
        f"vocabulary: {stats.uniq_onegrams} 1-grams, {stats.uniq_ngrams} n-grams, "
        f"{stats.uniq_edges} edges"
    )
    return 0


def _print_index_summary(index: CorpusIndex) -> None:
    stats = index.stats()
    print(f"dialect: {index.dialect}")
    print(
        f"scripts: {stats.n_scripts} ({index.n_unique_scripts} unique by content)"
    )
    print(
        f"vocabulary: {stats.uniq_onegrams} 1-grams, {stats.uniq_ngrams} n-grams, "
        f"{stats.uniq_edges} edges"
    )
    if index.corpus_dir:
        print(f"corpus dir: {index.corpus_dir}")


def cmd_index_retrieve(args) -> int:
    if args.index:
        pool = load_retrieval_index(args.index)
        if args.corpus_dir:
            pool.refresh(args.corpus_dir)
    elif args.corpus_dir:
        pool = RetrievalIndex(dialect=args.dialect)
        pool.refresh(args.corpus_dir)
    else:
        raise SystemExit("one of --corpus-dir or --index is required")
    if not pool.n_scripts:
        raise SystemExit("retrieval pool is empty")
    hits = pool.top_k(_read_script(args.script), args.k, verify=args.verify)
    stats = pool.stats()
    print(
        f"pool [{stats['dialect']}]: {stats['n_unique_scripts']} unique scripts, "
        f"{stats['n_band_buckets']} band buckets, "
        f"{stats['n_schema_tokens']} schema tokens"
        + (" [audited]" if args.verify else "")
    )
    for rank, hit in enumerate(hits, start=1):
        first_line = hit.record.source.splitlines()[0] if hit.record.source else ""
        print(f"{rank:3d}  {hit.score:.4f}  {hit.content_hash[:12]}  {first_line}")
    if args.out:
        save_retrieval_index(pool, args.out)
        print(f"pool snapshot -> {args.out}")
    return 0


def cmd_index(args) -> int:
    if args.index_command == "retrieve":
        return cmd_index_retrieve(args)
    if args.index_command == "build":
        index = CorpusIndex(dialect=args.dialect)
        report = index.refresh(args.corpus_dir)
        if not index.n_scripts:
            raise SystemExit(
                f"no indexable scripts found in {args.corpus_dir!r} "
                f"({report.failed} failed)"
            )
        save_index(index, args.out)
        print(f"indexed {index.n_scripts} scripts -> {args.out}")
        _print_index_summary(index)
        return 0

    index = load_index(args.index)
    if args.index_command == "update":
        try:
            report = index.refresh(args.corpus_dir or index.corpus_dir)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.audit:
            index.verify()
        save_index(index, args.index)
        summary = ", ".join(f"{k}={v}" for k, v in report.as_dict().items())
        print(f"updated {args.index}: {summary}")
        for name in report.failed_paths:
            print(f"warning: failed to index {name}", file=sys.stderr)
        _print_index_summary(index)
        return 0

    # stats
    if args.audit:
        index.verify()
        print("audit: incremental index is bit-identical to a cold rebuild")
    _print_index_summary(index)
    for key, value in index.stats().as_dict().items():
        print(f"  {key}: {value}")
    return 0


def cmd_dialect(args) -> int:
    from .dialects import dialect_names, get_dialect

    if args.dialect_command == "list":
        for name in dialect_names():
            print(get_dialect(name).describe())
        return 0

    # verify
    from .dialects.verify import DialectMismatchError, verify_dialect

    try:
        records = verify_dialect(args.dialects)
    except DialectMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name in sorted(records):
        print(f"{name}: fixture replay is byte-identical")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .server import ServerConfig, StandardizationServer

    try:
        config = ServerConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            warm_limit=args.warm_limit,
            wave_limit=args.wave_limit,
            audit=args.audit,
            default_deadline_s=args.deadline_s,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc

    async def _run() -> None:
        server = StandardizationServer(config)
        await server.start()
        listening = []
        if config.socket_path:
            listening.append(f"unix:{config.socket_path}")
        if server.tcp_address:
            listening.append("tcp:%s:%d" % server.tcp_address)
        print(
            f"repro server listening on {', '.join(listening)}"
            + (" [audit]" if config.audit else ""),
            file=sys.stderr,
        )
        await server.wait_closed()

    asyncio.run(_run())
    print("repro server drained", file=sys.stderr)
    return 0


def cmd_client(args) -> int:
    from .server import ServerClient
    from .server.protocol import canonical

    if args.socket is None and (args.host is None or args.port is None):
        raise SystemExit("error: connect with --socket or with --host/--port")
    op = args.op.replace("-", "_")
    if op in ("ping", "stats", "shutdown"):
        message = {"op": op}
    else:
        if not args.script:
            raise SystemExit(f"error: {args.op} requires --script")
        if not args.corpus_dir:
            raise SystemExit(f"error: {args.op} requires --corpus-dir")
        params = {
            "script": _read_script(args.script),
            "corpus": _read_corpus(args.corpus_dir),
            "data_dir": args.data_dir,
            "target": args.target,
            "tau_m": args.tau_m,
            "tau_j": args.tau_j,
            "config": {
                name: value
                for name, value in (
                    ("seq", args.seq),
                    ("beam_size", args.beam_size),
                    ("sample_rows", args.sample_rows),
                )
                if value is not None
            },
        }
        message = {"op": op, "params": params}
        if args.deadline_s is not None:
            message["deadline_s"] = args.deadline_s
    with ServerClient(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
    ) as client:
        response = client.request(message)
    print(canonical(response))
    return 0 if response.get("ok") else 1


_COMMANDS = {
    "curate": cmd_curate,
    "dialect": cmd_dialect,
    "index": cmd_index,
    "standardize": cmd_standardize,
    "score": cmd_score,
    "explain": cmd_explain,
    "build-workload": cmd_build_workload,
    "detect-leakage": cmd_detect_leakage,
    "serve": cmd_serve,
    "client": cmd_client,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
