"""LucidScript reproduction — bottom-up standardization of data-preparation
scripts ("Toward Standardized Data Preparation: A Bottom-Up Approach",
EDBT 2025).

Quickstart::

    from repro import LucidScript, TableJaccardIntent, LSConfig
    system = LucidScript(corpus_scripts, data_dir="data/",
                         intent=TableJaccardIntent(tau=0.9))
    result = system.standardize(user_script)
    print(result.output_script, result.improvement)

Subpackages
-----------
``repro.core``
    The paper's contribution: RE scoring, intent measures, beam search.
``repro.lang``
    Script representations: lemmatization, atoms, DAGs, vocabularies.
``repro.minipandas``
    A from-scratch pandas-compatible DataFrame (offline substrate).
``repro.ml``
    A from-scratch model substrate for the Δ_M intent measure.
``repro.sandbox``
    Script execution with pandas→minipandas injection.
``repro.baselines``
    Sourcery / GPT-3.5 / GPT-4 / Auto-Suggest / Auto-Tables stand-ins.
``repro.workloads``
    Synthetic versions of the six evaluation competitions.
``repro.harness``
    Leave-one-out experiment drivers and report rendering.
"""

from .core import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    StandardizationError,
    StandardizationResult,
    TableJaccardIntent,
    detect_target_leakage,
    recommend_parameters,
)
from .workloads import ScriptCorpus, build_competition, competition_names

__version__ = "1.0.0"

__all__ = [
    "LSConfig",
    "LucidScript",
    "ModelPerformanceIntent",
    "ScriptCorpus",
    "StandardizationError",
    "StandardizationResult",
    "TableJaccardIntent",
    "__version__",
    "build_competition",
    "competition_names",
    "detect_target_leakage",
    "recommend_parameters",
]
