"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "render_table",
    "render_histogram",
    "render_series",
    "step_prevalence_matrix",
]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: Sequence[float],
    title: str = "",
    width: int = 40,
) -> str:
    """ASCII histogram of a % improvement distribution (Figure 4 style)."""
    counts, edges = np.histogram(list(values), bins=list(bins))
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:7.1f}, {hi:7.1f})  {bar} {count}")
    return "\n".join(lines)


def step_prevalence_matrix(
    scripts: Sequence[str],
    user_script: str = None,
    max_steps: int = 15,
) -> str:
    """Render a Table 1-style matrix: steps × scripts with check marks.

    Rows are the most prevalent lemmatized statements in *scripts* (plus
    any statement of *user_script*); columns are s_u (when given) and
    s_1..s_n.  This is the prevalence summary the paper's user-study
    participants were shown.
    """
    from ..lang import CorpusVocabulary, ScriptError, lemmatize

    vocabulary = CorpusVocabulary.from_scripts(scripts)
    lemmatized = []
    for script in scripts:
        try:
            lemmatized.append(set(lemmatize(script).splitlines()))
        except ScriptError:
            lemmatized.append(set())

    steps = [sig for sig, _ in vocabulary.ngram_counts.most_common(max_steps)]
    user_lines = set()
    if user_script is not None:
        user_lines = set(lemmatize(user_script).splitlines())
        for line in user_lines:
            if line not in steps:
                steps.append(line)

    headers = ["Data preparation step"]
    if user_script is not None:
        headers.append("s_u")
    headers.extend(f"s_{i + 1}" for i in range(len(scripts)))

    rows = []
    for step in steps:
        row = [step]
        if user_script is not None:
            row.append("x" if step in user_lines else "")
        row.extend("x" if step in lines else "" for lines in lemmatized)
        rows.append(row)
    return render_table(headers, rows)


def render_series(
    points: Sequence[Tuple[float, float]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render an (x, y) sweep as a two-column listing (Figures 5, 6, 9)."""
    lines = [title] if title else []
    lines.append(f"{x_label:>12}  {y_label}")
    for x, y in points:
        lines.append(f"{x:>12}  {y:.1f}")
    return "\n".join(lines)
