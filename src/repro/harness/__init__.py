"""repro.harness — experiment drivers and reporting for Section 6."""

from .experiments import (
    ImprovementStats,
    MethodRun,
    evaluate_baseline,
    evaluate_lucidscript,
    make_intent,
)
from .reporting import (
    render_histogram,
    render_series,
    render_table,
    step_prevalence_matrix,
)
from .user_study import RaterPanel, StudyOutcome, run_user_study, significance_against

__all__ = [
    "ImprovementStats",
    "MethodRun",
    "RaterPanel",
    "StudyOutcome",
    "evaluate_baseline",
    "evaluate_lucidscript",
    "make_intent",
    "render_histogram",
    "render_series",
    "render_table",
    "run_user_study",
    "significance_against",
    "step_prevalence_matrix",
]
