"""Experiment drivers for the Section 6 evaluation.

The paper's protocol (Section 6.1.3/6.1.4): for each competition, iterate
over the corpus leave-one-out — each script becomes the user input script
and the rest the corpus — run a method, and report the distribution of
% improvement in relative entropy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import Baseline
from ..corpus import RetrievalIndex, shared_store
from ..core import (
    IntentMeasure,
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    StandardizationError,
    TableJaccardIntent,
    percent_improvement,
)
from ..core.entropy import RelativeEntropyScorer
from ..lang import CorpusVocabulary, ScriptError, lemmatize, parse_script
from ..workloads import ScriptCorpus

__all__ = [
    "ImprovementStats",
    "MethodRun",
    "evaluate_lucidscript",
    "evaluate_baseline",
    "make_intent",
]


@dataclass(frozen=True)
class ImprovementStats:
    """Table 5-style summary of a % improvement distribution."""

    minimum: float
    median: float
    maximum: float
    mean: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ImprovementStats":
        if not values:
            raise ValueError("cannot summarize an empty result set")
        arr = np.asarray(values, dtype=float)
        return cls(
            minimum=float(arr.min()),
            median=float(np.median(arr)),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            n=len(arr),
        )

    def row(self) -> Dict[str, float]:
        return {
            "min": round(self.minimum, 1),
            "median": round(self.median, 1),
            "max": round(self.maximum, 1),
            "mean": round(self.mean, 1),
        }


@dataclass
class MethodRun:
    """Per-script outcomes of running one method over a competition."""

    method: str
    dataset: str
    improvements: List[float] = field(default_factory=list)
    intent_deltas: List[float] = field(default_factory=list)
    runtimes_s: List[float] = field(default_factory=list)
    breakdowns: List[Dict[str, float]] = field(default_factory=list)
    output_scripts: List[str] = field(default_factory=list)

    def stats(self) -> ImprovementStats:
        return ImprovementStats.from_values(self.improvements)

    def median_breakdown(self) -> Dict[str, float]:
        """Median per-component runtime across scripts (Figure 7)."""
        if not self.breakdowns:
            return {}
        keys = self.breakdowns[0].keys()
        return {
            key: float(np.median([b[key] for b in self.breakdowns])) for key in keys
        }


def make_intent(
    kind: str,
    corpus: ScriptCorpus,
    tau: Optional[float] = None,
) -> IntentMeasure:
    """Build the τ_J or τ_M intent measure for a competition."""
    if kind in ("jaccard", "tau_j"):
        return TableJaccardIntent(tau=0.9 if tau is None else tau)
    if kind in ("model", "tau_m"):
        return ModelPerformanceIntent(
            target=corpus.target,
            tau=1.0 if tau is None else tau,
            task=corpus.task,
        )
    raise ValueError(f"unknown intent kind: {kind!r}")


def evaluate_lucidscript(
    corpus: ScriptCorpus,
    intent_kind: str = "jaccard",
    tau: Optional[float] = None,
    config: Optional[LSConfig] = None,
    max_scripts: Optional[int] = None,
    corpus_override: Optional[Sequence[str]] = None,
    retrieval_k: Optional[int] = None,
) -> MethodRun:
    """Leave-one-out evaluation of LucidScript on one competition.

    Parameters
    ----------
    corpus:
        The competition whose scripts serve as user inputs.
    intent_kind:
        'jaccard' (τ_J) or 'model' (τ_M).
    tau:
        Intent threshold; None uses the paper defaults (0.9 / 1%).
    config:
        Search configuration (LS-default when None).
    max_scripts:
        Evaluate only the first N user scripts (for bounded runtimes).
    corpus_override:
        When given, standardize against these scripts instead of the
        leave-one-out remainder (the "different corpus" scenario).
    retrieval_k:
        When set, run the retrieve-then-compute path: each pair's
        reference scripts become a :class:`RetrievalIndex` pool and the
        system curates the input's ``retrieval_k`` nearest neighbours
        instead of the whole remainder (``config.verify_retrieval``
        audits every query).  Pool membership is maintained as deltas
        across pairs — the leave-one-out sweep swaps one script in and
        one out per pair instead of rebuilding the pool.
    """
    run = MethodRun(method=f"LS ({intent_kind})", dataset=corpus.name)
    config = config or LSConfig()
    if config.corpus_cache or retrieval_k is not None:
        # Prewarm the content-addressed store once: every leave-one-out
        # reference corpus is a subset of these scripts, so each system
        # construction inside the loop assembles its search space from
        # cached records instead of reparsing N-1 scripts per script.
        store = shared_store()
        for script in corpus.scripts:
            store.get_or_parse(script)
        for script in corpus_override or ():
            store.get_or_parse(script)
    pairs = list(corpus.leave_one_out())
    if max_scripts is not None:
        pairs = pairs[:max_scripts]
    pool: Optional[RetrievalIndex] = None
    pool_ids: Dict[str, int] = {}
    if retrieval_k is not None:
        config.retrieval_k = retrieval_k
        # one pool for the whole sweep, membership adjusted per pair
        pool = RetrievalIndex(store=shared_store())
        if corpus_override is not None:
            for script in corpus_override:
                pool.add_script(script)
    for user_script, rest in pairs:
        reference = list(corpus_override) if corpus_override is not None else rest
        intent = make_intent(intent_kind, corpus, tau)
        if pool is not None:
            if corpus_override is None:
                _sync_pool(pool, pool_ids, reference)
            system = LucidScript(
                pool, data_dir=corpus.data_dir, intent=intent, config=config
            )
        else:
            system = LucidScript(
                reference, data_dir=corpus.data_dir, intent=intent, config=config
            )
        started = time.perf_counter()
        try:
            result = system.standardize(user_script)
        except (StandardizationError, ScriptError):
            run.improvements.append(0.0)
            run.runtimes_s.append(time.perf_counter() - started)
            continue
        run.runtimes_s.append(time.perf_counter() - started)
        run.improvements.append(result.improvement)
        if result.intent_delta is not None:
            run.intent_deltas.append(result.intent_delta)
        run.breakdowns.append(result.stats.breakdown())
        run.output_scripts.append(result.output_script)
    return run


def _sync_pool(
    pool: RetrievalIndex, pool_ids: Dict[str, int], reference: Sequence[str]
) -> None:
    """Make *pool*'s membership equal *reference*, as pure deltas.

    Successive leave-one-out pairs differ by two scripts (the previous
    user script re-enters, the next one leaves), so each sync touches
    O(1) scripts instead of rebuilding an O(N) pool per pair.
    """
    desired = set(reference)
    for script in [s for s in pool_ids if s not in desired]:
        pool.remove_script(pool_ids.pop(script))
    for script in reference:
        if script not in pool_ids:
            script_id = pool.add_script(script)
            if script_id is not None:
                pool_ids[script] = script_id


def evaluate_baseline(
    baseline: Baseline,
    corpus: ScriptCorpus,
    max_scripts: Optional[int] = None,
) -> MethodRun:
    """Leave-one-out evaluation of a competing method.

    Baselines emit a script without constraint checking; their
    % improvement is measured with the same RE metric against the
    leave-one-out corpus.  Output that no longer parses scores 0 (it
    cannot be *more* standard), matching how unusable rewrites were
    treated in the study.
    """
    run = MethodRun(method=baseline.name, dataset=corpus.name)
    pairs = list(corpus.leave_one_out())
    if max_scripts is not None:
        pairs = pairs[:max_scripts]
    for user_script, rest in pairs:
        vocabulary = CorpusVocabulary.from_scripts(rest)
        scorer = RelativeEntropyScorer(vocabulary)
        started = time.perf_counter()
        output = baseline.rewrite(user_script, rest)
        run.runtimes_s.append(time.perf_counter() - started)
        run.output_scripts.append(output)
        try:
            re_before = scorer.score_dag(parse_script(user_script))
            re_after = scorer.score_dag(parse_script(output))
        except ScriptError:
            run.improvements.append(0.0)
            continue
        run.improvements.append(percent_improvement(re_before, re_after))
    return run
