"""Simulated user study (Figure 3).

The paper recruits 34 students who rate each method's output 1-5 on
(a) standardness w.r.t. corpus step prevalence and (b) helpfulness for the
modeling task.  Humans are unavailable offline, so each rater is modelled
as a noisy monotone function of exactly the quantities the study
instructions asked participants to judge:

* standardness rating  ~ corpus coverage of the script's steps;
* helpfulness rating   ~ corpus coverage blended with intent preservation
  (cold-start "without-user-intent" cases use coverage alone).

The same significance test as the paper (two-sample t-test, p < 0.05)
compares LucidScript against each baseline.  EXPERIMENTS.md flags this
figure as simulated — it validates the rating pipeline, not human
judgment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..lang import CorpusVocabulary, ScriptError, lemmatize

__all__ = ["RaterPanel", "StudyOutcome", "run_user_study"]

N_RATERS = 34
_RATER_NOISE_SD = 0.7


@dataclass
class StudyOutcome:
    """Ratings for one method plus its significance test against LS."""

    method: str
    standard_ratings: List[float]
    helpful_ratings: List[float]

    @property
    def mean_standard(self) -> float:
        return float(np.mean(self.standard_ratings))

    @property
    def mean_helpful(self) -> float:
        return float(np.mean(self.helpful_ratings))


def _step_coverage(script: str, vocabulary: CorpusVocabulary) -> float:
    """Prevalence-weighted coverage: mean corpus frequency of body steps.

    Participants were shown step-prevalence statistics (like Table 1), so
    the rater model scores a script by how *common* its chosen steps are —
    a script of 60%-prevalent steps reads as more standard than one of
    rare steps, even though both are "known" to the corpus.  Imports and
    the data load are excluded (they appear everywhere and carry no
    signal).
    """
    try:
        lines = [l for l in lemmatize(script).splitlines() if l.strip()]
    except ScriptError:
        return 0.0
    body = [
        line
        for line in lines
        if not line.startswith(("import ", "from ")) and "read_csv" not in line
    ]
    if not body:
        return 0.5  # a bare loader: neither standard nor deviant
    return sum(vocabulary.statement_frequency(line) for line in body) / len(body)


class RaterPanel:
    """A panel of simulated raters with per-rater bias and noise."""

    def __init__(self, n_raters: int = N_RATERS, seed: int = 0):
        if n_raters < 2:
            raise ValueError("a panel needs at least 2 raters")
        rng = np.random.default_rng(seed)
        self._biases = rng.normal(0.0, 0.3, n_raters)
        self._rng = rng
        self.n_raters = n_raters

    def rate(self, quality: float) -> List[float]:
        """Map a quality score in [0, 1] to a panel of 1-5 ratings."""
        quality = float(np.clip(quality, 0.0, 1.0))
        base = 1.0 + 4.0 * quality
        noise = self._rng.normal(0.0, _RATER_NOISE_SD, self.n_raters)
        return np.clip(base + self._biases + noise, 1.0, 5.0).tolist()


def run_user_study(
    outputs_by_method: Dict[str, str],
    corpus_scripts: Sequence[str],
    intent_preservation: Optional[Dict[str, float]] = None,
    ls_method: str = "LS",
    seed: int = 0,
) -> Dict[str, StudyOutcome]:
    """Rate each method's output script and t-test LS against the rest.

    Parameters
    ----------
    outputs_by_method:
        method name -> its output script for the shared use case.
    corpus_scripts:
        The study's corpus (prevalence statistics shown to raters).
    intent_preservation:
        method -> preservation score in [0, 1] (e.g. table Jaccard); when
        given, helpfulness blends it with coverage ("with-user-intent"
        case); when None the study is the cold-start case.
    """
    if ls_method not in outputs_by_method:
        raise KeyError(f"LS method {ls_method!r} missing from outputs")
    vocabulary = CorpusVocabulary.from_scripts(corpus_scripts)

    # one panel per rated dimension: every method faces the same raters
    # (shared per-rater bias), with fresh per-script noise — as in a real
    # within-subjects study design
    standard_panel = RaterPanel(seed=seed)
    helpful_panel = RaterPanel(seed=seed + 7919)

    methods = sorted(outputs_by_method)
    coverage = {
        m: _step_coverage(outputs_by_method[m], vocabulary) for m in methods
    }
    if intent_preservation is not None:
        helpful = {
            m: 0.5 * coverage[m] + 0.5 * intent_preservation.get(m, 0.5)
            for m in methods
        }
    else:
        helpful = dict(coverage)

    # participants rank the outputs against each other, so qualities are
    # normalized within the case before they become 1-5 ratings
    coverage = _normalize(coverage)
    helpful = _normalize(helpful)

    return {
        m: StudyOutcome(
            method=m,
            standard_ratings=standard_panel.rate(coverage[m]),
            helpful_ratings=helpful_panel.rate(helpful[m]),
        )
        for m in methods
    }


def _normalize(qualities: Dict[str, float]) -> Dict[str, float]:
    """Min-max normalize within a case (comparative rating design)."""
    lo, hi = min(qualities.values()), max(qualities.values())
    if hi - lo < 1e-12:
        return {m: 0.5 for m in qualities}
    return {m: (q - lo) / (hi - lo) for m, q in qualities.items()}


def significance_against(
    outcomes: Dict[str, StudyOutcome], ls_method: str = "LS"
) -> Dict[str, float]:
    """p-values of the standardness t-test: LS vs each baseline."""
    ls = outcomes[ls_method]
    pvalues: Dict[str, float] = {}
    for method, outcome in outcomes.items():
        if method == ls_method:
            continue
        _, p = scipy_stats.ttest_ind(
            ls.standard_ratings, outcome.standard_ratings, equal_var=False
        )
        pvalues[method] = float(p)
    return pvalues
