"""repro.core — LucidScript: bottom-up data-preparation script standardization.

The paper's primary contribution: relative-entropy standardness scoring,
user-intent measures, transformation search (Algorithms 1-3), and the
:class:`LucidScript` facade.
"""

from .beam import BeamSearch, Candidate, ScoringMismatchError, SearchStats
from .config import LSConfig, recommend_parameters
from .diversity import cluster_transformations, kmeans, transformation_features
from .entropy import (
    REStats,
    RelativeEntropyScorer,
    percent_improvement,
    relative_entropy,
)
from .explain import TransformationExplanation, explain_result
from .grouping import OperationGroups, group_operations
from .intent import (
    IntentMeasure,
    IntentMismatchError,
    IntentStats,
    ModelPerformanceIntent,
    PreparedIntent,
    TableJaccardIntent,
    model_performance_delta,
    table_fingerprint,
    table_jaccard,
)
from .intent_ext import (
    BagOfOperationsIntent,
    FairnessIntent,
    demographic_parity_difference,
)
from .leakage import LeakageDetection, detect_target_leakage
from .pareto import TradeoffPoint, explore_intent_thresholds, pareto_frontier
from .standardizer import LucidScript, StandardizationError, StandardizationResult
from .transformations import (
    Transformation,
    apply_transformation,
    enumerate_transformations,
)

__all__ = [
    "BagOfOperationsIntent",
    "BeamSearch",
    "Candidate",
    "FairnessIntent",
    "IntentMeasure",
    "IntentMismatchError",
    "IntentStats",
    "LSConfig",
    "LeakageDetection",
    "LucidScript",
    "ModelPerformanceIntent",
    "OperationGroups",
    "PreparedIntent",
    "REStats",
    "RelativeEntropyScorer",
    "ScoringMismatchError",
    "SearchStats",
    "StandardizationError",
    "StandardizationResult",
    "TableJaccardIntent",
    "TradeoffPoint",
    "Transformation",
    "TransformationExplanation",
    "apply_transformation",
    "cluster_transformations",
    "demographic_parity_difference",
    "detect_target_leakage",
    "enumerate_transformations",
    "explain_result",
    "explore_intent_thresholds",
    "group_operations",
    "kmeans",
    "pareto_frontier",
    "model_performance_delta",
    "percent_improvement",
    "recommend_parameters",
    "relative_entropy",
    "table_fingerprint",
    "table_jaccard",
    "transformation_features",
]
