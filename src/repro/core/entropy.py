"""Relative-entropy standardness scoring (Sections 2.2 and 4).

``RE(s, S) = Σ_x P(x) · log2(P(x) / Q(x))`` where x ranges over data-flow
edges, P is the edge distribution of the script, and Q the edge
distribution of the corpus.  The log base is 2, which reproduces the
paper's worked examples (Example 4.4: RE = 1.38; Example 4.6: RE = 0.2).

Edges the corpus has never seen get a smoothing mass ε in Q so that RE
stays finite while heavily penalizing nonstandard steps.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..lang.parser import EdgeDelta, ScriptDAG, Statement
from ..lang.vocabulary import CorpusVocabulary

__all__ = [
    "REStats",
    "RelativeEntropyScorer",
    "relative_entropy",
    "percent_improvement",
]

EdgeKey = Tuple[str, str]

#: Shared ``c·log2(c)`` term table.  Both the full recount and the delta
#: path read the same float for the same count, which (together with the
#: order-independence of :func:`math.fsum`) makes the two paths
#: bit-identical.
_C_LOG2_C: Dict[int, float] = {}


def _c_log2_c(count: int) -> float:
    term = _C_LOG2_C.get(count)
    if term is None:
        term = count * math.log2(count)
        _C_LOG2_C[count] = term
    return term


def relative_entropy(
    p_counts: Counter,
    q_counts: Counter,
    epsilon: Optional[float] = None,
) -> float:
    """KL divergence (bits) of the P edge distribution from Q.

    ``p_counts``/``q_counts`` are raw occurrence counters; both are
    normalized internally.  Coordinates with P(x)=0 contribute nothing;
    coordinates absent from Q use the ε floor.
    """
    p_total = sum(p_counts.values())
    q_total = sum(q_counts.values())
    if p_total == 0:
        raise ValueError("script has no data-flow edges; RE is undefined")
    if q_total == 0:
        raise ValueError("corpus has no data-flow edges; RE is undefined")
    if epsilon is None:
        epsilon = 0.5 / q_total
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    total = 0.0
    for edge, count in p_counts.items():
        p = count / p_total
        q_count = q_counts.get(edge, 0)
        q = q_count / q_total if q_count else epsilon
        total += p * math.log2(p / q)
    return total


def percent_improvement(re_before: float, re_after: float) -> float:
    """The paper's effectiveness metric: (RE(s_u) − RE(ŝ_u)) / RE(s_u) · 100."""
    if re_before == 0:
        return 0.0
    return (re_before - re_after) / re_before * 100.0


@dataclass(frozen=True)
class REStats:
    """Sufficient statistics of one script's RE score.

    With ``S1 = Σ_x c_x·log2(c_x)`` and ``S2 = Σ_x c_x·log2(q̂_x)`` over
    the script's edge counts ``c_x`` (``q̂_x`` the corpus probability, or
    the ε floor for unseen edges), the score is

        ``RE = (S1 − S2)/T − log2(T)``,   ``T = Σ_x c_x``.

    Instead of running float accumulators (whose add-then-subtract drift
    would break bit-identity with the full recount), the statistics are
    kept as *exact integer histograms*:

    * ``count_hist`` — edge count value → number of edges holding it
      (S1 = Σ n_c · c·log2(c) over its few distinct entries);
    * ``q_hist`` — precomputed ``log2(q̂_x)`` value → total count mass on
      edges sharing it (S2 = Σ w_L · L).

    Histogram updates are integer arithmetic (exact, order-independent),
    and the float sums are taken fresh with :func:`math.fsum` (correctly
    rounded, hence order-independent), so a delta-updated state scores
    bit-identically to a from-scratch recount while each transformation
    costs O(edges touched + distinct histogram values).
    """

    total: int
    count_hist: Dict[int, int]
    q_hist: Dict[float, int]


class RelativeEntropyScorer:
    """Scores scripts (or raw edge counters) against a fixed corpus.

    Besides whole-script scoring, the scorer maintains the sufficient
    statistics above for the beam search's O(Δ) incremental path:
    :meth:`stats_from_counts` bootstraps a state, :meth:`score_delta`
    scores one insert/delete without rescoring the script, and
    :meth:`apply_delta` derives the successor state.
    """

    def __init__(self, vocabulary: CorpusVocabulary):
        self._vocabulary = vocabulary
        self._q_counts = vocabulary.edge_counts
        self._epsilon = vocabulary.epsilon
        # precomputed per-edge log2(Q) table; unseen edges share one ε term
        q_total = max(vocabulary.total_edges, 1)
        self._log2_q: Dict[EdgeKey, float] = {
            edge: math.log2(count / q_total)
            for edge, count in self._q_counts.items()
            if count
        }
        self._log2_epsilon = math.log2(self._epsilon)

    @property
    def vocabulary(self) -> CorpusVocabulary:
        return self._vocabulary

    def log2_q(self, edge: EdgeKey) -> float:
        """``log2(q̂)`` for one edge (the ε floor when the corpus lacks it)."""
        return self._log2_q.get(edge, self._log2_epsilon)

    # ------------------------------------------------- sufficient statistics
    def stats_from_counts(self, p_counts: Mapping[EdgeKey, int]) -> REStats:
        """Bootstrap the sufficient statistics from an edge multiset."""
        total = 0
        count_hist: Dict[int, int] = {}
        q_hist: Dict[float, int] = {}
        log2_q = self._log2_q
        log2_eps = self._log2_epsilon
        for edge, count in p_counts.items():
            if count <= 0:
                continue
            total += count
            count_hist[count] = count_hist.get(count, 0) + 1
            level = log2_q.get(edge, log2_eps)
            q_hist[level] = q_hist.get(level, 0) + count
        return REStats(total, count_hist, q_hist)

    def score_stats(self, stats: REStats) -> float:
        """``RE = (S1 − S2)/T − log2(T)`` off the histograms."""
        if stats.total <= 0:
            raise ValueError("script has no data-flow edges; RE is undefined")
        s1 = math.fsum(n * _c_log2_c(c) for c, n in stats.count_hist.items())
        s2 = math.fsum(w * level for level, w in stats.q_hist.items())
        return (s1 - s2) / stats.total - math.log2(stats.total)

    def _shifted_stats(
        self,
        stats: REStats,
        base_counts: Mapping[EdgeKey, int],
        changes: Mapping[EdgeKey, int],
    ) -> REStats:
        total = stats.total
        count_hist = dict(stats.count_hist)
        q_hist = dict(stats.q_hist)
        log2_q = self._log2_q
        log2_eps = self._log2_epsilon
        for edge, change in changes.items():
            if not change:
                continue
            old = base_counts.get(edge, 0)
            new = old + change
            if new < 0:
                raise ValueError(f"delta drives edge {edge!r} below zero")
            total += change
            if old:
                remaining = count_hist[old] - 1
                if remaining:
                    count_hist[old] = remaining
                else:
                    del count_hist[old]
            if new:
                count_hist[new] = count_hist.get(new, 0) + 1
            level = log2_q.get(edge, log2_eps)
            weight = q_hist.get(level, 0) + change
            if weight:
                q_hist[level] = weight
            else:
                q_hist.pop(level, None)
        return REStats(total, count_hist, q_hist)

    def score_delta(
        self,
        base_stats: REStats,
        base_counts: Mapping[EdgeKey, int],
        delta: EdgeDelta,
    ) -> float:
        """Score of the script *after* applying *delta* — O(Δ).

        ``base_counts`` is the pre-delta edge multiset (the paired
        :class:`~repro.lang.parser.EdgeState`'s ``counts``), needed to
        move each touched edge between count-histogram buckets.

        Equivalent to ``score_stats(apply_delta(...))`` bit for bit, but
        materializes only small *patch* overlays on the base histograms
        instead of copying them: the :func:`math.fsum` term multiset is
        identical (base buckets not in the patch, plus non-zero patched
        buckets), and fsum is order-independent, so the score matches the
        from-scratch recount exactly.
        """
        count_hist = base_stats.count_hist
        q_hist = base_stats.q_hist
        total = base_stats.total
        cpatch: Dict[int, int] = {}
        qpatch: Dict[float, int] = {}
        log2_q = self._log2_q
        log2_eps = self._log2_epsilon
        for edge, change in delta.changes.items():
            if not change:
                continue
            old = base_counts.get(edge, 0)
            new = old + change
            if new < 0:
                raise ValueError(f"delta drives edge {edge!r} below zero")
            total += change
            if old:
                cur = cpatch.get(old)
                if cur is None:
                    cur = count_hist.get(old, 0)
                cpatch[old] = cur - 1
            if new:
                cur = cpatch.get(new)
                if cur is None:
                    cur = count_hist.get(new, 0)
                cpatch[new] = cur + 1
            level = log2_q.get(edge, log2_eps)
            cur = qpatch.get(level)
            if cur is None:
                cur = q_hist.get(level, 0)
            qpatch[level] = cur + change
        if total <= 0:
            raise ValueError("script has no data-flow edges; RE is undefined")
        s1_base, s2_base = self._base_terms(base_stats)
        terms = [t for c, t in s1_base if c not in cpatch]
        terms.extend(n * _c_log2_c(c) for c, n in cpatch.items() if n)
        s1 = math.fsum(terms)
        terms = [t for level, t in s2_base if level not in qpatch]
        terms.extend(w * level for level, w in qpatch.items() if w)
        s2 = math.fsum(terms)
        return (s1 - s2) / total - math.log2(total)

    @staticmethod
    def _base_terms(
        stats: REStats,
    ) -> Tuple[List[Tuple[int, float]], List[Tuple[float, float]]]:
        """Memoized (bucket, fsum-term) pairs of the base histograms.

        One GetSteps wave scores every proposal against the same base
        stats, so the untouched-bucket terms are computed once.  Safe
        because :class:`REStats` is treated as immutable everywhere
        (:meth:`apply_delta` builds fresh dicts).
        """
        cached = stats.__dict__.get("_terms")
        if cached is None:
            cached = (
                [(c, n * _c_log2_c(c)) for c, n in stats.count_hist.items()],
                [(level, w * level) for level, w in stats.q_hist.items()],
            )
            object.__setattr__(stats, "_terms", cached)
        return cached

    def apply_delta(
        self,
        base_stats: REStats,
        base_counts: Mapping[EdgeKey, int],
        delta: EdgeDelta,
    ) -> REStats:
        """Successor sufficient statistics after *delta* (exact)."""
        return self._shifted_stats(base_stats, base_counts, delta.changes)

    # ----------------------------------------------------------- whole-script
    def score_edge_counts(self, p_counts: Counter) -> float:
        if not self._q_counts:
            raise ValueError("corpus has no data-flow edges; RE is undefined")
        return self.score_stats(self.stats_from_counts(p_counts))

    def score_dag(self, dag: ScriptDAG) -> float:
        return self.score_edge_counts(dag.edge_counter())

    def score_statements(self, statements: List[Statement]) -> float:
        """Score a working statement list (renumbering is the caller's job)."""
        return self.score_dag(ScriptDAG(list(statements)))

    def score_source(self, source: str, lemmatized: bool = True) -> float:
        from ..lang.parser import parse_script

        return self.score_dag(parse_script(source, lemmatized=lemmatized))
