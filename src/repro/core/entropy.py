"""Relative-entropy standardness scoring (Sections 2.2 and 4).

``RE(s, S) = Σ_x P(x) · log2(P(x) / Q(x))`` where x ranges over data-flow
edges, P is the edge distribution of the script, and Q the edge
distribution of the corpus.  The log base is 2, which reproduces the
paper's worked examples (Example 4.4: RE = 1.38; Example 4.6: RE = 0.2).

Edges the corpus has never seen get a smoothing mass ε in Q so that RE
stays finite while heavily penalizing nonstandard steps.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..lang.parser import ScriptDAG, Statement
from ..lang.vocabulary import CorpusVocabulary

__all__ = ["RelativeEntropyScorer", "relative_entropy", "percent_improvement"]

EdgeKey = Tuple[str, str]


def relative_entropy(
    p_counts: Counter,
    q_counts: Counter,
    epsilon: Optional[float] = None,
) -> float:
    """KL divergence (bits) of the P edge distribution from Q.

    ``p_counts``/``q_counts`` are raw occurrence counters; both are
    normalized internally.  Coordinates with P(x)=0 contribute nothing;
    coordinates absent from Q use the ε floor.
    """
    p_total = sum(p_counts.values())
    q_total = sum(q_counts.values())
    if p_total == 0:
        raise ValueError("script has no data-flow edges; RE is undefined")
    if q_total == 0:
        raise ValueError("corpus has no data-flow edges; RE is undefined")
    if epsilon is None:
        epsilon = 0.5 / q_total
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    total = 0.0
    for edge, count in p_counts.items():
        p = count / p_total
        q_count = q_counts.get(edge, 0)
        q = q_count / q_total if q_count else epsilon
        total += p * math.log2(p / q)
    return total


def percent_improvement(re_before: float, re_after: float) -> float:
    """The paper's effectiveness metric: (RE(s_u) − RE(ŝ_u)) / RE(s_u) · 100."""
    if re_before == 0:
        return 0.0
    return (re_before - re_after) / re_before * 100.0


class RelativeEntropyScorer:
    """Scores scripts (or raw edge counters) against a fixed corpus."""

    def __init__(self, vocabulary: CorpusVocabulary):
        self._vocabulary = vocabulary
        self._q_counts = vocabulary.edge_counts
        self._epsilon = vocabulary.epsilon

    @property
    def vocabulary(self) -> CorpusVocabulary:
        return self._vocabulary

    def score_edge_counts(self, p_counts: Counter) -> float:
        return relative_entropy(p_counts, self._q_counts, self._epsilon)

    def score_dag(self, dag: ScriptDAG) -> float:
        return self.score_edge_counts(dag.edge_counter())

    def score_statements(self, statements: List[Statement]) -> float:
        """Score a working statement list (renumbering is the caller's job)."""
        return self.score_dag(ScriptDAG(list(statements)))

    def score_source(self, source: str, lemmatized: bool = True) -> float:
        from ..lang.parser import parse_script

        return self.score_dag(parse_script(source, lemmatized=lemmatized))
