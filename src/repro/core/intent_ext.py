"""Additional user-intent measures (the paper's Section 8 extensions).

The paper names two future-work intent measures beyond Table Jaccard and
Model Performance: (a) comparing scripts' *bags of operations*, and
(b) model **fairness** constraints (citing Guha et al.).  Both are
implemented here against the same :class:`IntentMeasure` interface, so
they plug into :class:`LucidScript` unchanged.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional

import numpy as np

from ..lang import ScriptError, parse_script
from ..minipandas import DataFrame, is_missing
from ..ml import DownstreamEvaluationError, prepare_features
from ..ml.linear import LogisticRegression
from .intent import IntentMeasure

__all__ = ["BagOfOperationsIntent", "FairnessIntent", "demographic_parity_difference"]


def _operation_bag(script: str) -> Counter:
    """1-gram atom multiset of a script (its bag of operations)."""
    return parse_script(script).onegram_counter()


def _cosine(a: Counter, b: Counter) -> float:
    keys = set(a) | set(b)
    if not keys:
        return 1.0
    dot = sum(a.get(k, 0) * b.get(k, 0) for k in keys)
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 1.0 if norm_a == norm_b else 0.0
    return dot / (norm_a * norm_b)


class BagOfOperationsIntent(IntentMeasure):
    """Δ_B: cosine similarity of the scripts' operation bags.

    Unlike the output-based measures this compares the *scripts*
    themselves (Section 8: "comparing their bags of operations"), so no
    execution is needed.  ``delta`` is a similarity in [0, 1]; satisfied
    when similarity ≥ τ.

    Because it needs script text rather than tables, use
    :meth:`delta_scripts` directly, or wire it through
    :class:`LucidScript` which calls :meth:`bind_scripts` hooks — for
    table-based call sites the measure degrades to comparing the
    stringified outputs' operation overlap and is rarely what you want.
    """

    name = "bag_of_operations"

    def __init__(self, tau: float = 0.7):
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {tau}")
        self.tau = tau
        self._original_bag: Optional[Counter] = None

    def bind_original(self, script: str) -> None:
        """Fix the reference script the candidates are compared against."""
        self._original_bag = _operation_bag(script)

    def delta_scripts(self, original: str, candidate: str) -> float:
        try:
            return _cosine(_operation_bag(original), _operation_bag(candidate))
        except ScriptError:
            return 0.0

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        raise TypeError(
            "BagOfOperationsIntent compares scripts, not tables; "
            "use delta_scripts()"
        )

    def satisfied(self, delta: float) -> bool:
        return delta >= self.tau


def demographic_parity_difference(
    frame: DataFrame,
    target: str,
    sensitive: str,
    random_state: int = 0,
) -> float:
    """|P(ŷ=1 | s=a) − P(ŷ=1 | s=b)| of a model trained on *frame*.

    The sensitive column is binarized by its most common value; returns a
    value in [0, 1] (0 = perfectly parity-fair predictions).
    """
    if sensitive not in frame.columns:
        raise DownstreamEvaluationError(f"sensitive column {sensitive!r} missing")
    sensitive_values = [
        None if is_missing(v) else v for v in frame[sensitive]
    ]
    present = [v for v in sensitive_values if v is not None]
    if not present:
        raise DownstreamEvaluationError("sensitive column is entirely missing")
    majority = Counter(present).most_common(1)[0][0]
    group_a = np.array([v == majority for v in sensitive_values])

    X, y = prepare_features(frame, target)
    labels = np.array(y)
    if len(np.unique(labels)) < 2:
        return 0.0
    # align the group mask with the rows prepare_features kept
    kept = [
        pos for pos, v in enumerate(frame[target]) if not is_missing(v)
    ]
    group_a = group_a[kept]

    n = X.shape[0]
    order = np.random.default_rng(random_state).permutation(n)
    n_test = min(max(1, int(round(n * 0.25))), n - 1)
    test_idx, train_idx = order[:n_test], order[n_test:]
    if len(np.unique(labels[train_idx])) < 2:
        return 0.0

    model = LogisticRegression().fit(X[train_idx], labels[train_idx])
    predictions = model.predict(X[test_idx])
    positive = model.classes_[-1]
    mask = group_a[test_idx]
    if mask.all() or not mask.any():
        return 0.0
    rate_a = float(np.mean(predictions[mask] == positive))
    rate_b = float(np.mean(predictions[~mask] == positive))
    return abs(rate_a - rate_b)


class FairnessIntent(IntentMeasure):
    """Δ_F: the candidate must not worsen demographic parity by more than τ.

    ``delta`` is the *increase* in demographic-parity difference moving
    from the original output to the candidate output (negative = fairer);
    satisfied when delta ≤ τ.
    """

    name = "fairness"

    def __init__(
        self,
        target: str,
        sensitive: str,
        tau: float = 0.05,
        random_state: int = 0,
    ):
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        self.target = target
        self.sensitive = sensitive
        self.tau = tau
        self.random_state = random_state

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        base = demographic_parity_difference(
            original, self.target, self.sensitive, self.random_state
        )
        try:
            new = demographic_parity_difference(
                candidate, self.target, self.sensitive, self.random_state
            )
        except DownstreamEvaluationError:
            return 1.0  # candidate destroyed the columns the check needs
        return new - base

    def satisfied(self, delta: float) -> bool:
        return delta <= self.tau
