"""LucidScript — the end-to-end script standardizer (the paper's system).

Offline phase: lemmatize the corpus and curate the search space
(vocabularies + corpus distribution).  Online phase: beam-search
transformation sequences for an input script, verify the execution and
user-intent constraints, and return the most standard surviving script.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from hashlib import sha1
from typing import List, Optional, Sequence, Tuple

from .._lru import LRUCache
from ..corpus import (
    CorpusCacheCounters,
    CorpusIndex,
    RetrievalCounters,
    RetrievalIndex,
    cached_index,
    corpus_cache_counters,
)
from ..dialects import get_dialect
from ..lang import CorpusVocabulary, ScriptError, lemmatize, parse_script
from ..minipandas import DataFrame
from ..minipandas.kernels import kernel_audit
from ..sandbox import IncrementalExecutor, run_script
from ..sandbox.runner import BatchReport, get_worker_pool
from .beam import BeamSearch, Candidate, SearchStats
from .config import LSConfig
from .entropy import RelativeEntropyScorer, percent_improvement
from .intent import IntentMeasure, IntentStats, PreparedIntent, table_fingerprint
from .transformations import Transformation

__all__ = ["LucidScript", "StandardizationResult", "StandardizationError"]


#: Default bounds for the worker-resident caches below; overridable per
#: run via ``LSConfig.worker_output_cache_limit`` / ``worker_intent_cache_limit``
#: (threaded into tasks, applied by :func:`_sized_cache`).
_WORKER_OUTPUT_CACHE_LIMIT = 4
_WORKER_INTENT_CACHE_LIMIT = 4

#: Worker-resident original-output table, keyed by fingerprint.  The
#: original script's output is identical for every task of a run, so it is
#: never pickled into tasks; each worker materializes it at most once per
#: fingerprint (LRU-bounded — shard workers outlive searches).
_WORKER_OUTPUT_CACHE: LRUCache = LRUCache(_WORKER_OUTPUT_CACHE_LIMIT)

#: Worker-resident prepared intent state, keyed by (run fingerprint,
#: intent identity).  The prepared original side — per-mode cell sets,
#: column fingerprints, the original's downstream accuracy — is identical
#: for every task of a run, so each shard worker freezes it at most once
#: per key instead of rebuilding it per task (LRU-bounded, like the
#: output cache above).
_WORKER_INTENT_CACHE: LRUCache = LRUCache(_WORKER_INTENT_CACHE_LIMIT)


def _sized_cache(cache: LRUCache, limit: Optional[int]) -> LRUCache:
    """*cache* resized to the configured *limit* (None keeps it as-is).

    The one shared eviction discipline for the worker-resident caches:
    :class:`~repro._lru.LRUCache` owns both the insert-time eviction and
    the shrink-on-reconfigure path, replacing the two hand-rolled
    ``popitem`` loops these caches used to carry.
    """
    if limit is not None and limit != cache.capacity:
        cache.resize(limit)
    return cache


def _original_output_fingerprint(
    original_source: str,
    data_dir: Optional[str],
    sample_rows: Optional[int],
    dialect: str = "pandas",
) -> str:
    """Cache key for one run's original output: everything that determines
    what :func:`repro.sandbox.run_script` would produce for it."""
    digest = sha1()
    digest.update(original_source.encode())
    digest.update(b"\x00")
    digest.update(str(data_dir).encode())
    digest.update(b"\x00")
    digest.update(str(sample_rows).encode())
    digest.update(b"\x00")
    digest.update(dialect.encode())
    return digest.hexdigest()


def _worker_original_output(
    ref: Tuple[str, str],
    data_dir: Optional[str],
    sample_rows: Optional[int],
    timeout_s: Optional[float],
    limit: Optional[int] = None,
    dialect: Optional[str] = None,
) -> Optional[DataFrame]:
    """The original output inside a shard worker — cached, else recomputed.

    ``ref`` is ``(fingerprint, original_source)``.  The sandbox is
    deterministic for fixed ``(source, data_dir, sample_rows, dialect)``,
    so a recompute yields the same table the parent holds; tasks therefore
    ship two strings instead of a pickled DataFrame per candidate.
    """
    fingerprint, original_source = ref
    cache = _sized_cache(_WORKER_OUTPUT_CACHE, limit)
    cached = cache.get(fingerprint)
    if cached is not None:
        return cached
    result = run_script(
        original_source,
        data_dir=data_dir,
        sample_rows=sample_rows,
        timeout_s=timeout_s,
        dialect=dialect,
    )
    if not result.ok or result.output is None:
        return None
    cache[fingerprint] = result.output
    return result.output


def _worker_prepared_intent(
    fingerprint: str,
    intent: IntentMeasure,
    original_output: DataFrame,
    verify: bool,
    limit: Optional[int] = None,
) -> PreparedIntent:
    """This worker's prepared intent state — cached, else frozen once.

    Prepared state is addressed by ``(run fingerprint, intent.cache_key())``
    so a changed intent configuration (or a different original) never
    reuses stale state.  Counters on worker-side prepared objects stay in
    the worker — only verdicts cross back to the parent.
    """
    key = (fingerprint, intent.cache_key())
    cache = _sized_cache(_WORKER_INTENT_CACHE, limit)
    prepared = cache.get(key)
    if prepared is not None:
        prepared.counters.prepared_hits += 1
        prepared.verify = verify
        return prepared
    prepared = intent.prepare(original_output, verify=verify)
    cache[key] = prepared
    return prepared


def _verify_candidate_task(args) -> bool:
    """Top-level (picklable) constraint check for one candidate script.

    Runs in a pool worker: execution constraint plus the optional intent
    check against the original output.  Only a verdict crosses back to the
    parent — the winning candidate's output is recomputed there, where the
    incremental executor typically has its full prefix snapshotted.  The
    worker self-interrupts at *timeout_s* via the in-process watchdog, so
    a pathological candidate fails its own verdict without hanging the
    pool.  ``original_ref`` is ``None`` (no intent check) or the
    ``(fingerprint, original_source)`` pair resolved worker-side by
    :func:`_worker_original_output`; with *incremental_intent* the
    resolved table is further frozen into a cached
    :class:`~repro.core.intent.PreparedIntent` so successive tasks skip
    re-deriving the original side.
    """
    (
        source,
        data_dir,
        sample_rows,
        intent,
        original_ref,
        timeout_s,
        incremental_intent,
        verify_intent,
    ) = args[:8]
    dialect = args[8] if len(args) > 8 else None
    result = run_script(
        source,
        data_dir=data_dir,
        sample_rows=sample_rows,
        timeout_s=timeout_s,
        dialect=dialect,
    )
    if not result.ok or result.output is None:
        return False
    if intent is None:
        return True
    original_output = _worker_original_output(
        original_ref, data_dir, sample_rows, timeout_s, dialect=dialect
    )
    if original_output is None:
        return False
    if incremental_intent:
        prepared = _worker_prepared_intent(
            original_ref[0], intent, original_output, verify_intent
        )
        _, ok = prepared.check(result.output)
    else:
        _, ok = intent.check(original_output, result.output)
    return ok


def _shard_verify_task(payload, resident) -> bool:
    """Shard-engine constraint check for one candidate (see
    :mod:`repro.sandbox.shards`; registered there as kind ``"verify"``).

    Unlike :func:`_verify_candidate_task` (the stateless-pool ancestor,
    kept as the task's serial-equivalent and for direct testing), this
    runs the candidate on the shard's *resident*
    :class:`~repro.sandbox.incremental.IncrementalExecutor` — shard
    affinity routes candidates with a shared prefix here precisely so this
    executor's snapshot LRU hits across waves — and resolves the script
    texts from the worker's content-addressed source store instead of the
    task payload.  The original-output and prepared-intent caches are the
    same worker-resident LRUs the old path used; they now live as long as
    the shard process.  Only a verdict crosses back to the parent.
    """
    from ..sandbox import shards

    source = shards.resolve_source(resident, payload["source_sha"])
    executor = shards.resident_executor(
        resident,
        payload["data_dir"],
        payload["sample_rows"],
        payload.get("exec_timeout_s"),
        payload.get("statement_timeout_s"),
        payload.get("snapshot_budget", 64),
        payload.get("dialect"),
    )
    result = executor.run_script(source)
    if not result.ok or result.output is None:
        return False
    intent = payload.get("intent")
    if intent is None:
        return True
    original_source = shards.resolve_source(resident, payload["original_sha"])
    original_output = _worker_original_output(
        (payload["fingerprint"], original_source),
        payload["data_dir"],
        payload["sample_rows"],
        payload.get("exec_timeout_s"),
        payload.get("output_cache_limit"),
        payload.get("dialect"),
    )
    if original_output is None:
        return False
    if payload.get("incremental_intent"):
        prepared = _worker_prepared_intent(
            payload["fingerprint"],
            intent,
            original_output,
            payload.get("verify_intent", False),
            payload.get("intent_cache_limit"),
        )
        _, ok = prepared.check(result.output)
    else:
        _, ok = intent.check(original_output, result.output)
    return bool(ok)


class StandardizationError(ScriptError):
    """The input script cannot be standardized (e.g. it does not execute)."""


@dataclass
class StandardizationResult:
    """Outcome of one standardization run."""

    input_script: str
    output_script: str
    re_before: float
    re_after: float
    transformations: Tuple[Transformation, ...]
    intent_delta: Optional[float]
    intent_satisfied: bool
    stats: SearchStats

    @property
    def improvement(self) -> float:
        """% improvement in relative entropy (the paper's Table 5 metric)."""
        return percent_improvement(self.re_before, self.re_after)

    @property
    def changed(self) -> bool:
        return self.output_script != self.input_script

    def removed_statements(self) -> List[str]:
        """Lemmatized statements present in the input but not the output."""
        before = Counter(self.input_script.splitlines())
        after = Counter(self.output_script.splitlines())
        removed: List[str] = []
        for line, count in (before - after).items():
            removed.extend([line] * count)
        return removed

    def added_statements(self) -> List[str]:
        """Lemmatized statements present in the output but not the input."""
        before = Counter(self.input_script.splitlines())
        after = Counter(self.output_script.splitlines())
        added: List[str] = []
        for line, count in (after - before).items():
            added.extend([line] * count)
        return added

    def summary(self) -> str:
        lines = [
            f"RE: {self.re_before:.3f} -> {self.re_after:.3f} "
            f"({self.improvement:+.1f}% improvement)",
        ]
        if self.intent_delta is not None:
            lines.append(f"intent delta: {self.intent_delta:.3f}")
        for t in self.transformations:
            lines.append(f"  {t.describe()}")
        return "\n".join(lines)


class LucidScript:
    """Bottom-up script standardization against a corpus of peer scripts.

    Parameters
    ----------
    corpus:
        Peer data-preparation scripts that process the same (or a
        similar) dataset.  Accepts raw source texts, a prebuilt
        :class:`repro.corpus.CorpusIndex` (e.g. loaded from a snapshot
        and ``refresh()``-ed), a ready :class:`CorpusVocabulary`, or a
        :class:`repro.corpus.RetrievalIndex` over a large script pool —
        in which case curation is deferred and the working corpus is
        the pool's ``config.retrieval_k`` nearest neighbours of each
        query script (see ``_ensure_search_space``).
        Raw texts route through the process-wide content-addressed warm
        cache when ``config.corpus_cache`` is on, so repeated
        constructions over the same corpus skip the offline phase.
    data_dir:
        Directory holding the dataset's CSV files; scripts' ``read_csv``
        paths are resolved against it.
    intent:
        A user-intent measure (:class:`TableJaccardIntent` or
        :class:`ModelPerformanceIntent`); None disables the intent
        constraint (execution constraint still applies).
    config:
        Search parameters; see :class:`LSConfig` and Table 2 defaults.
    """

    def __init__(
        self,
        corpus,
        data_dir: Optional[str] = None,
        intent: Optional[IntentMeasure] = None,
        config: Optional[LSConfig] = None,
    ):
        self.config = config or LSConfig()
        #: the API surface every script in this system is written against
        self.dialect = get_dialect(self.config.dialect)
        self._retrieval: Optional[RetrievalIndex] = None
        self._retrieval_query_hash: Optional[str] = None
        self._retrieval_stats = RetrievalCounters()
        if isinstance(corpus, RetrievalIndex):
            # Retrieve-then-compute: the working corpus is a function of
            # the query script, so curation defers to the first
            # score()/standardize() call (see _ensure_search_space).
            self._retrieval = corpus
            self.vocabulary: Optional[CorpusVocabulary] = None
            self.scorer: Optional[RelativeEntropyScorer] = None
            self._corpus_counters = corpus_cache_counters().delta(
                corpus_cache_counters()
            )
        else:
            # Offline phase (Section 5.1): curate the search space once —
            # or adopt a prebuilt/warm-cached index, which is bit-identical.
            self.vocabulary, self._corpus_counters = self._curate(corpus)
            self.scorer = RelativeEntropyScorer(self.vocabulary)
        self.data_dir = data_dir
        self.intent = intent
        self._executor: Optional[IncrementalExecutor] = None
        #: prepared intent state across standardize() calls, keyed by
        #: (original table fingerprint, intent identity)
        self._intent_cache: LRUCache = LRUCache(self.INTENT_CACHE_LIMIT)

    #: Distinct (original, intent) pairs whose prepared state is retained.
    INTENT_CACHE_LIMIT = 4

    @property
    def _lang_dialect(self):
        """The dialect handed to the lang layer — None keeps pandas on
        its historical (bit-identical) default path."""
        return None if self.dialect.name == "pandas" else self.dialect

    def _check_corpus_dialect(self, supplied: str, what: str) -> None:
        if supplied != self.dialect.name:
            raise StandardizationError(
                f"{what} was built for dialect {supplied!r} but this system "
                f"is configured for {self.dialect.name!r}"
            )

    def _curate(self, corpus) -> Tuple[CorpusVocabulary, CorpusCacheCounters]:
        """Resolve *corpus* (scripts | index | vocabulary) to a vocabulary.

        Returns the vocabulary plus the warm-cache activity this
        construction caused (index hits, content-addressed script hits,
        actual reparses), which standardize() folds into SearchStats.
        """
        before = corpus_cache_counters()
        if isinstance(corpus, CorpusIndex):
            self._check_corpus_dialect(corpus.dialect, "the supplied corpus index")
            if self.config.verify_index:
                corpus.verify()
            vocabulary = corpus.to_vocabulary()
        elif isinstance(corpus, CorpusVocabulary):
            vocabulary = corpus
        elif self.config.corpus_cache:
            index = cached_index(corpus, dialect=self.dialect.name)
            if self.config.verify_index:
                index.verify()
            vocabulary = index.to_vocabulary()
        else:
            vocabulary = CorpusVocabulary.from_scripts(
                corpus, dialect=self._lang_dialect
            )
        return vocabulary, corpus_cache_counters().delta(before)

    def _ensure_search_space(self, script: str) -> None:
        """Curate the retrieval-backed search space for *script*.

        No-op unless this system was built over a
        :class:`~repro.corpus.RetrievalIndex`.  The query script's
        signature selects ``config.retrieval_k`` pool neighbours
        (``config.verify_retrieval`` audits the selection against brute
        force), the winners are assembled into a working
        :class:`CorpusIndex` through the record-delta path, and scoring
        proceeds exactly as with a hand-curated corpus.  The assembled
        space is keyed by the query's content address, so repeated
        calls over the same script reuse it and a different script
        re-retrieves — cheaply, since top_k only touches candidates.
        """
        if self._retrieval is None:
            return
        self._check_corpus_dialect(
            self._retrieval.store.dialect, "the supplied retrieval index"
        )
        record = self._retrieval.store.get_or_parse(script)
        if record is None:
            raise StandardizationError(
                "input script does not parse, so no corpus can be retrieved for it"
            )
        if (
            self._retrieval_query_hash == record.content_hash
            and self.vocabulary is not None
        ):
            return
        before = corpus_cache_counters()
        counters_before = self._retrieval.counters.snapshot()
        try:
            corpus = self._retrieval.assemble(
                record.signature,
                self.config.retrieval_k,
                verify=self.config.verify_retrieval,
            )
        except ScriptError as exc:
            raise StandardizationError(
                f"retrieval produced no working corpus: {exc}"
            ) from exc
        if self.config.verify_index:
            corpus.verify()
        self.vocabulary = corpus.to_vocabulary()
        self.scorer = RelativeEntropyScorer(self.vocabulary)
        self._corpus_counters = corpus_cache_counters().delta(before)
        queries, candidates, fallbacks = self._retrieval.counters.snapshot()
        self._retrieval_stats = RetrievalCounters(
            queries=queries - counters_before[0],
            candidates=candidates - counters_before[1],
            fallbacks=fallbacks - counters_before[2],
        )
        self._retrieval_query_hash = record.content_hash

    def _prepared_intent(
        self, original_output: DataFrame, counters: IntentStats
    ) -> Optional[PreparedIntent]:
        """The content-addressed verification state for this original.

        None when the intent constraint is disabled or
        ``LSConfig.incremental_intent`` is off (callers then take the
        naive pairwise path).  Reuses (and re-points the counters of) a
        cached prepared state when the original's content fingerprint and
        the intent's configuration both match.
        """
        if self.intent is None or not self.config.incremental_intent:
            return None
        key = (table_fingerprint(original_output), self.intent.cache_key())
        prepared = self._intent_cache.peek(key)
        if prepared is None:
            prepared = self.intent.prepare(
                original_output,
                table_fp=key[0],
                counters=counters,
                verify=self.config.verify_intent,
            )
            self._intent_cache[key] = prepared
        else:
            counters.prepared_hits += 1
            prepared.counters = counters
            prepared.verify = self.config.verify_intent
        return prepared

    def _shared_executor(self) -> Optional[IncrementalExecutor]:
        """One incremental executor per (data_dir, sample_rows, dialect).

        Shared between the beam search and constraint verification — and
        across standardize() calls — so every phase resumes from prefixes
        any earlier phase already snapshotted.  Rebuilt if the config's
        sampling (or dialect) changes — snapshots are only valid within
        one setting.
        """
        if not self.config.incremental_exec:
            return None
        if (
            self._executor is None
            or self._executor.sample_rows != self.config.sample_rows
            or self._executor._snapshots.capacity != self.config.snapshot_budget
            or self._executor.exec_timeout_s != self.config.exec_timeout_s
            or self._executor.statement_timeout_s != self.config.statement_timeout_s
            or self._executor.dialect.name != self.dialect.name
        ):
            self._executor = IncrementalExecutor(
                data_dir=self.data_dir,
                sample_rows=self.config.sample_rows,
                snapshot_budget=self.config.snapshot_budget,
                exec_timeout_s=self.config.exec_timeout_s,
                statement_timeout_s=self.config.statement_timeout_s,
                dialect=self.dialect,
            )
        return self._executor

    # ------------------------------------------------------------------ scoring
    def score(self, script: str) -> float:
        """RE(s, S) of an arbitrary script against this corpus.

        On the retrieval path the corpus itself is a function of the
        script: the search space is (re)assembled from the pool's top-k
        neighbours of *script* before scoring.
        """
        self._ensure_search_space(script)
        return self.scorer.score_dag(parse_script(script, dialect=self._lang_dialect))

    # ------------------------------------------------------------- online phase
    def standardize(self, script: str) -> StandardizationResult:
        """Produce a standardized version of *script* (Definition 4.5)."""
        with kernel_audit(self.config.verify_kernels):
            return self._standardize(script)

    def _standardize(self, script: str) -> StandardizationResult:
        normalized = lemmatize(script, dialect=self._lang_dialect)
        dag = parse_script(normalized, lemmatized=True, dialect=self._lang_dialect)
        if not dag.statements:
            raise StandardizationError("input script has no statements")
        self._ensure_search_space(normalized)
        re_before = self.scorer.score_dag(dag)

        original_output = self._run(normalized)
        if original_output is None:
            raise StandardizationError(
                "input script must execute and emit a table before it can be standardized"
            )

        search = BeamSearch(
            self.vocabulary,
            self.scorer,
            self.config,
            data_dir=self.data_dir,
            executor=self._shared_executor(),
        )
        candidates = search.search(dag.statements)
        intent_counters = IntentStats()
        best = self._verify_all_constraints(
            candidates, normalized, original_output, search, intent_counters
        )
        intent_delta, intent_ok = self._final_intent(
            best, normalized, original_output, intent_counters
        )
        search.sync_cache_stats()  # fold verification-phase cache activity in
        self._fold_intent_stats(search.stats, intent_counters)
        self._fold_corpus_stats(search.stats)
        return StandardizationResult(
            input_script=normalized,
            output_script=best.source(),
            re_before=re_before,
            re_after=best.score,
            transformations=best.applied,
            intent_delta=intent_delta,
            intent_satisfied=intent_ok,
            stats=search.stats,
        )

    # ----------------------------------------------------------------- helpers
    def _run(self, source: str) -> Optional[DataFrame]:
        executor = self._shared_executor()
        if executor is not None:
            result = executor.run_script(source)
        else:
            result = run_script(
                source,
                data_dir=self.data_dir,
                sample_rows=self.config.sample_rows,
                timeout_s=self.config.exec_timeout_s,
                dialect=self.dialect,
            )
        return result.output if result.ok else None

    def _fold_corpus_stats(self, stats: SearchStats) -> None:
        """Surface the offline-phase warm-cache activity on SearchStats.

        The counters were captured when the search space was curated —
        once at construction, or per retrieved query on the retrieval
        path — and report how it was obtained: served whole from the
        index cache, from content-addressed script records, by actually
        reparsing, or assembled from top-k pool neighbours (query /
        candidate / fallback counts).
        """
        stats.n_corpus_index_hits = self._corpus_counters.index_hits
        stats.n_corpus_script_hits = self._corpus_counters.script_hits
        stats.n_corpus_reparses = self._corpus_counters.script_parses
        stats.n_retrieval_queries = self._retrieval_stats.queries
        stats.n_retrieval_candidates = self._retrieval_stats.candidates
        stats.n_retrieval_fallbacks = self._retrieval_stats.fallbacks

    @staticmethod
    def _fold_intent_stats(stats: SearchStats, counters: IntentStats) -> None:
        """Surface the parent-side intent-engine counters on SearchStats.

        Worker-side counters stay in the pool workers (only verdicts cross
        the process boundary), so the parallel path contributes parent
        checks only.
        """
        stats.n_intent_checks += counters.checks
        stats.n_intent_cache_hits += counters.prepared_hits
        stats.n_column_set_reuse += counters.column_set_reuse
        stats.n_intent_short_circuits += counters.short_circuits
        if counters.prepared_s > 0 and counters.naive_s > 0:
            # verify_intent timed both paths on identical checks
            stats.intent_speedup = counters.naive_s / counters.prepared_s

    def _verify_all_constraints(
        self,
        candidates: List[Candidate],
        original_source: str,
        original_output: DataFrame,
        search: BeamSearch,
        intent_counters: IntentStats,
    ) -> Candidate:
        """VerifyAllConstraints(): return the most standard valid candidate.

        Candidates arrive sorted by RE score; the original script is always
        among them and trivially satisfies every constraint, so the search
        can never make the script less standard (Table 5: min = 0.0).

        With ``parallel_workers > 1``, waves of candidates are checked
        speculatively on the process pool, but the winner is still the
        first valid candidate in score order — identical to the serial
        walk for any worker count.  A candidate that exceeds its execution
        budget simply fails verification (serial: the watchdog interrupts
        it; parallel: its worker self-interrupts, or the parent kills and
        respawns a wedged pool).
        """
        stats = search.stats
        start = time.perf_counter()
        prepared = self._prepared_intent(original_output, intent_counters)
        try:
            if self.config.parallel_workers > 1 and len(candidates) > 2:
                speculative = self._verify_parallel(
                    candidates, original_source, search
                )
                if speculative is not None:
                    if self.config.verify_parallel:
                        serial = self._serial_walk(
                            candidates, original_source, original_output, prepared
                        )
                        if serial is None or serial.source() != speculative.source():
                            from ..sandbox.shards import ParallelMismatchError

                            raise ParallelMismatchError(
                                "verify_parallel: sharded winner "
                                f"{speculative.source()!r} != serial winner "
                                f"{serial.source() if serial else None!r}"
                            )
                    return speculative
            winner = self._serial_walk(
                candidates, original_source, original_output, prepared
            )
            if winner is None:
                raise StandardizationError(
                    "no candidate (not even the original) survived verification"
                )
            return winner
        finally:
            stats.verify_constraints_s += time.perf_counter() - start

    def _serial_walk(
        self,
        candidates: List[Candidate],
        original_source: str,
        original_output: DataFrame,
        prepared: Optional[PreparedIntent],
    ) -> Optional[Candidate]:
        """The always-correct serial VerifyAllConstraints walk.

        Returns the first candidate (in score order) that satisfies every
        constraint, or None if nothing survives.  Both the parallel path's
        fallback and the ``verify_parallel`` audit reduce to this.
        """
        for candidate in candidates:
            source = candidate.source()
            if source == original_source:
                return candidate
            output = self._run(source)
            if output is None:
                continue
            if self.intent is not None:
                if prepared is not None:
                    _, ok = prepared.check(output)
                else:
                    _, ok = self.intent.check(original_output, output)
                if not ok:
                    continue
            return candidate
        return None

    def _verify_parallel(
        self,
        candidates: List[Candidate],
        original_source: str,
        search: BeamSearch,
    ) -> Optional[Candidate]:
        """Wave-parallel VerifyAllConstraints; None means "fall back serial".

        Each wave batches the next ``2 × workers`` candidates (stopping at
        the original script, which is trivially valid) onto the persistent
        shard engine and takes the first valid verdict in score order.
        Tasks are content-addressed end to end: the candidate ships as an
        O(delta) line splice against the original (already resident on the
        shard after the first wave), and the original output table never
        crosses the process boundary at all — workers resolve a
        ``(fingerprint, original_source)`` reference against their
        resident caches, recomputing at most once per worker.  Shard
        affinity keeps candidates sharing a prefix on the shard whose
        resident incremental executor has that prefix snapshotted.  With
        an execution budget set, a shard that does not answer in time is
        declared hung: its candidate fails verification, the shard is
        hard-killed and respawned, and the wave continues — until the
        respawn budget runs out, at which point (as for any other engine
        failure) the speculation is abandoned and the serial walk takes
        over.
        """
        from ..sandbox import shards

        config = self.config
        workers = config.parallel_workers
        wave_size = max(2, workers * 2)
        timeout_s = config.exec_timeout_s
        fingerprint = (
            None
            if self.intent is None
            else _original_output_fingerprint(
                original_source, self.data_dir, config.sample_rows, config.dialect
            )
        )
        original_sha = shards.sha1_text(original_source)
        parent_budget = timeout_s * 2 + 1.0 if timeout_s is not None else None
        respawn_budget = config.pool_respawn_limit
        position = 0
        try:
            engine = get_worker_pool(workers)
            engine.source_cache_limit = config.worker_source_cache_limit
            while position < len(candidates):
                wave: List[Candidate] = []
                terminator = None
                for candidate in candidates[position:position + wave_size]:
                    if candidate.source() == original_source:
                        terminator = candidate
                        break
                    wave.append(candidate)
                tasks = []
                for candidate in wave:
                    source = candidate.source()
                    sha = shards.sha1_text(source)
                    tasks.append(
                        shards.ShardTask(
                            kind="verify",
                            payload={
                                "source_sha": sha,
                                "original_sha": (
                                    original_sha if self.intent is not None else None
                                ),
                                "fingerprint": fingerprint,
                                "data_dir": self.data_dir,
                                "sample_rows": config.sample_rows,
                                "intent": self.intent,
                                "exec_timeout_s": timeout_s,
                                "statement_timeout_s": config.statement_timeout_s,
                                "snapshot_budget": config.snapshot_budget,
                                "incremental_intent": config.incremental_intent,
                                "verify_intent": config.verify_intent,
                                "output_cache_limit": config.worker_output_cache_limit,
                                "intent_cache_limit": config.worker_intent_cache_limit,
                                "dialect": config.dialect,
                            },
                            sources=(
                                (original_sha, original_source, None, None),
                                (sha, source, original_sha, original_source),
                            ),
                            affinity=(
                                shards.prefix_affinity(source, original_source)
                                if config.shard_affinity
                                else None
                            ),
                        )
                    )
                report = BatchReport()
                outcomes, used = engine.run_batch(
                    tasks,
                    parent_budget_s=parent_budget,
                    respawn_limit=respawn_budget,
                    report=report,
                )
                respawn_budget -= used
                search.stats.n_worker_respawns += report.respawns
                search.stats.n_shard_hits += report.shard_hits
                search.stats.n_shard_migrations += report.shard_migrations
                search.stats.bytes_shipped += report.bytes_shipped
                verdicts: List[bool] = []
                degraded = False
                for outcome in outcomes:
                    if outcome is None or outcome[0] == "failed":
                        degraded = True
                        break
                    if outcome[0] == "hung":
                        search._direct_timeouts += 1
                        verdicts.append(False)
                    else:
                        verdicts.append(bool(outcome[1]))
                if degraded:
                    search.stats.n_degraded_waves += 1
                    return None  # degrade to the serial walk
                for candidate, ok in zip(wave, verdicts):
                    if ok:
                        return candidate
                if terminator is not None:
                    return terminator
                position += len(wave)
        except StandardizationError:
            raise
        except Exception:  # noqa: BLE001 - degrade to the serial walk
            search.stats.n_degraded_waves += 1
            return None
        return None

    def _final_intent(
        self,
        best: Candidate,
        original_source: str,
        original_output: DataFrame,
        intent_counters: IntentStats,
    ) -> Tuple[Optional[float], bool]:
        if self.intent is None:
            return None, True
        if best.source() == original_source:
            # identical script: Jaccard similarity 1 / accuracy delta 0
            identity = 1.0 if self.intent.name == "table_jaccard" else 0.0
            return identity, True
        output = self._run(best.source())
        if output is None:  # pragma: no cover - verified above
            return None, False
        prepared = self._prepared_intent(original_output, intent_counters)
        if prepared is not None:
            return prepared.check(output)
        return self.intent.check(original_output, output)
