"""User-intent measures (Section 2.1): Table Jaccard and Model Performance.

Both compare the dataset emitted by the user's script, ``D_OUT(s_u)``, with
the dataset emitted by a candidate, ``D_OUT(ŝ_u)``.  Each measure exposes
``delta`` (the raw dissimilarity) and ``satisfied`` (the constraint check
against the user's threshold τ).

Besides the naive pairwise measures, this module houses the
content-addressed incremental verification engine: :meth:`IntentMeasure
.prepare` freezes the *original* side of the comparison into a
:class:`PreparedIntent`, after which each candidate check pays for its own
changed content only.  Candidate tables are addressed by per-column content
fingerprints, so a wave of near-duplicate candidates — the shape
``VerifyAllConstraints`` produces — reuses distinct-value sets across both
candidates and intent modes instead of rebuilding the original's cell set
per check.  The prepared path is exact, not a sketch: every delta it
returns is bit-identical to the naive recomputation (``verify_intent``
audits exactly that).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from hashlib import sha1
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .._lru import LRUCache
from ..minipandas import DataFrame, is_missing
from ..ml import DownstreamEvaluationError, evaluate_downstream

__all__ = [
    "IntentMeasure",
    "IntentMismatchError",
    "IntentStats",
    "PreparedIntent",
    "TableJaccardIntent",
    "ModelPerformanceIntent",
    "table_fingerprint",
    "table_jaccard",
    "model_performance_delta",
]


class IntentMismatchError(RuntimeError):
    """Raised by ``LSConfig.verify_intent`` when a prepared incremental
    intent delta diverges from the naive recomputation (an engine bug,
    never a legitimate runtime condition)."""


# --------------------------------------------------------------- fingerprints
def _values_fingerprint(values: Tuple[Any, ...]) -> str:
    """Content address of one column's ordered values.

    ``repr`` round-trips every value type the sandbox substrate produces
    (str/int/float/bool/None/NaN and tuples thereof) faithfully and
    type-discriminatingly, so two columns share a fingerprint only when
    their value sequences are indistinguishable.  A spurious *difference*
    (e.g. ``-0.0`` vs ``0.0``) merely skips a reuse opportunity — the set
    path still compares by value equality — so collisions are the only
    dangerous direction, and sha1 over the full repr makes them
    cryptographically improbable.
    """
    return sha1(repr(values).encode("utf-8", "backslashreplace")).hexdigest()


def _combine_fingerprints(
    n_rows: int, named: Sequence[Tuple[Any, str]]
) -> str:
    digest = sha1()
    digest.update(str(n_rows).encode())
    for name, fingerprint in named:
        digest.update(b"\x00")
        digest.update(repr(name).encode("utf-8", "backslashreplace"))
        digest.update(b"\x01")
        digest.update(fingerprint.encode())
    return digest.hexdigest()


def _frame_content(
    frame: DataFrame,
) -> Tuple[List[Tuple[str, Tuple[Any, ...], str]], str]:
    """Per-column ``(name, values, fingerprint)`` triples + the table print.

    The table fingerprint covers row count, column names, column order,
    and every cell value — everything that determines the naive measures
    (none of them read index labels, and neither does
    :func:`repro.ml.evaluate_downstream`, which is positional).
    """
    columns = [(name, tuple(frame[name])) for name in frame.columns]
    triples = [
        (name, values, _values_fingerprint(values)) for name, values in columns
    ]
    table = _combine_fingerprints(
        len(frame), [(name, fingerprint) for name, _, fingerprint in triples]
    )
    return triples, table


def table_fingerprint(frame: DataFrame) -> str:
    """Content address of a whole table (see :func:`_frame_content`)."""
    return _frame_content(frame)[1]


# ------------------------------------------------------------- naive measures
def _cell_set(frame: DataFrame, mode: str) -> Set:
    if mode == "values":
        return {
            "__NA__" if is_missing(v) else v
            for col in frame.columns
            for v in frame[col]
        }
    if mode == "cells":
        return {
            (col, "__NA__" if is_missing(v) else v)
            for col in frame.columns
            for v in frame[col]
        }
    if mode == "rows":
        # materialize each column once instead of an .iloc wrapper per cell
        columns = [frame[col].tolist() for col in frame.columns]
        return {
            tuple("__NA__" if is_missing(col[pos]) else col[pos] for col in columns)
            for pos in range(len(frame))
        }
    raise ValueError(f"unknown table-jaccard mode: {mode!r}")


def table_jaccard(a: DataFrame, b: DataFrame, mode: str = "cells") -> float:
    """Jaccard similarity of two tables' distinct content.

    ``mode='values'`` replicates the paper's Example 2.1 (distinct cell
    values); ``'cells'`` compares distinct (column, value) pairs, which
    also notices column renames; ``'rows'`` compares distinct rows.
    Returns 1.0 when both tables are empty.

    Note the deliberately divergent defaults: this *function* defaults to
    the strictest cheap comparison (``'cells'``), while
    :class:`TableJaccardIntent` — the measure wired into the search —
    defaults to ``'values'`` to match the paper's Example 2.1 semantics.
    """
    sa, sb = _cell_set(a, mode), _cell_set(b, mode)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def model_performance_delta(
    acc_original: float, acc_candidate: float
) -> float:
    """|relative % change| in downstream accuracy (Section 2.1, Δ_M)."""
    if acc_original == 0:
        return 0.0 if acc_candidate == 0 else 100.0
    return abs(acc_original - acc_candidate) / acc_original * 100.0


# ------------------------------------------------------------ prepared engine
@dataclass
class IntentStats:
    """Counters for one run of the incremental verification engine.

    ``checks`` — prepared checks served; ``prepared_hits`` — times a
    cached :class:`PreparedIntent` was reused instead of re-freezing the
    original; ``column_set_reuse`` — per-column lookups answered from the
    content-addressed memo (zero set construction); ``short_circuits`` —
    whole-table fingerprint matches answered without touching any set;
    ``naive_s``/``prepared_s`` — audit-mode timings of both paths.
    """

    checks: int = 0
    prepared_hits: int = 0
    column_set_reuse: int = 0
    short_circuits: int = 0
    naive_s: float = 0.0
    prepared_s: float = 0.0


class _ColumnContent:
    """One distinct column content: normalized values + lazy distinct set.

    ``normalized()`` replaces missing markers with the same ``"__NA__"``
    sentinel the naive ``_cell_set`` uses (including its collision with a
    genuine ``"__NA__"`` string — bit-identity covers quirks).  Both
    products are built at most once per distinct content and shared across
    every intent mode and every candidate that carries the column.
    """

    __slots__ = ("values", "_normalized", "_value_set")

    def __init__(self, values: Tuple[Any, ...]):
        self.values = values
        self._normalized: Optional[List[Any]] = None
        self._value_set: Optional[frozenset] = None

    def normalized(self) -> List[Any]:
        if self._normalized is None:
            self._normalized = [
                "__NA__" if is_missing(v) else v for v in self.values
            ]
        return self._normalized

    def value_set(self) -> frozenset:
        if self._value_set is None:
            self._value_set = frozenset(self.normalized())
        return self._value_set


class PreparedIntent:
    """The original side of an intent check, frozen once per search.

    ``check(candidate)``/``delta(candidate)`` mirror the naive
    ``IntentMeasure.check(original, candidate)`` but never recompute the
    original's state.  The base class is a correctness fallback for
    measures without an incremental form (it delegates to the naive
    measure); :class:`TableJaccardIntent` and
    :class:`ModelPerformanceIntent` return specialized subclasses from
    :meth:`IntentMeasure.prepare`.

    With ``verify=True`` every prepared delta is cross-checked against
    :meth:`IntentMeasure.bare_delta` (all caches bypassed) and any float
    divergence raises :class:`IntentMismatchError` — the exact analogue of
    ``LSConfig.verify_scoring`` for the scoring engine.
    """

    def __init__(
        self,
        intent: "IntentMeasure",
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ):
        self.intent = intent
        self.original = original
        self.table_fp = (
            table_fp if table_fp is not None else table_fingerprint(original)
        )
        self.counters = counters if counters is not None else IntentStats()
        self.verify = verify

    def delta(self, candidate: DataFrame) -> float:
        counters = self.counters
        counters.checks += 1
        started = time.perf_counter()
        value = self._prepared_delta(candidate)
        counters.prepared_s += time.perf_counter() - started
        if self.verify:
            started = time.perf_counter()
            reference = self.intent.bare_delta(self.original, candidate)
            counters.naive_s += time.perf_counter() - started
            if value != reference:
                raise IntentMismatchError(
                    f"prepared {self.intent.name} delta {value!r} != naive "
                    f"recomputation {reference!r} (original fingerprint "
                    f"{self.table_fp[:12]})"
                )
        return value

    def check(self, candidate: DataFrame) -> Tuple[float, bool]:
        d = self.delta(candidate)
        return d, self.intent.satisfied(d)

    def _prepared_delta(self, candidate: DataFrame) -> float:
        # generic fallback: no incremental form, same answer
        return self.intent.delta(self.original, candidate)


class PreparedTableJaccard(PreparedIntent):
    """Incremental Δ_J: per-mode original state + content-addressed memo.

    For ``mode='cells'`` the check is an exact disjoint-column
    decomposition: a cell ``(c, v)`` can only collide with cells of the
    same column name, so with ``A_c``/``B_c`` the per-column distinct
    normalized value sets,

        ``J(A, B) = Σ_c |A_c ∩ B_c| / Σ_c |A_c ∪ B_c|``

    where name-mismatched columns contribute only to the union.  A
    candidate column whose content matches the original's contributes
    ``|A_c|`` to both sums with zero set work, so a check costs
    O(changed columns), not O(cells).  ``'values'`` and ``'rows'`` have
    no disjoint decomposition (values collide across columns, rows span
    all columns) but share the same per-column memo: distinct-value sets
    respectively normalized column vectors are built once per distinct
    column content and reused across the whole candidate wave.

    Within one process a column's value tuple is its own content
    address — the memo is keyed by the tuple directly, which hashes and
    compares at C speed and is collision-free by construction (the sha1
    digests of :func:`table_fingerprint` exist for compact cross-process
    cache keys, not for this hot path).  Tuple equality is exactly the
    reuse-safety condition: ``==``-equal values are the same element in
    a Python set, so equal tuples yield identical normalized sets.
    """

    #: distinct column contents retained across a candidate wave
    COLUMN_MEMO_LIMIT = 1024

    def __init__(
        self,
        intent: "TableJaccardIntent",
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ):
        super().__init__(intent, original, table_fp, counters, verify)
        self._memo: LRUCache = LRUCache(self.COLUMN_MEMO_LIMIT)
        #: the original's (name, values) pairs in column order
        self._original_pairs: List[Tuple[str, Tuple[Any, ...]]] = [
            (name, tuple(original[name])) for name in original.columns
        ]
        #: name -> content for the original's columns
        self._original_columns: Dict[str, _ColumnContent] = {}
        for name, values in self._original_pairs:
            content = self._memo.peek(values)
            if content is None:
                content = _ColumnContent(values)
                self._memo[values] = content
            self._original_columns[name] = content
        self._original_rows_n = len(original)
        self._value_union: Optional[frozenset] = None
        self._row_set: Optional[frozenset] = None

    # ----------------------------------------------------- original-side state
    def _original_value_union(self) -> frozenset:
        if self._value_union is None:
            self._value_union = frozenset().union(
                *(
                    content.value_set()
                    for content in self._original_columns.values()
                )
            )
        return self._value_union

    def _original_row_set(self) -> frozenset:
        if self._row_set is None:
            self._row_set = self._rows_from(
                list(self._original_columns.values()),
                self._original_rows_n,
            )
        return self._row_set

    @staticmethod
    def _rows_from(contents: List[_ColumnContent], n_rows: int) -> frozenset:
        if not contents:
            # a column-free table still has one distinct (empty) row per
            # the naive construction, as long as it has rows at all
            return frozenset([()]) if n_rows else frozenset()
        return frozenset(zip(*(content.normalized() for content in contents)))

    # ------------------------------------------------------------- candidates
    def _content_for(self, values: Tuple[Any, ...]) -> _ColumnContent:
        content = self._memo.peek(values)
        if content is not None:
            self.counters.column_set_reuse += 1
            return content
        content = _ColumnContent(values)
        self._memo[values] = content
        return content

    def _prepared_delta(self, candidate: DataFrame) -> float:
        pairs = [(name, tuple(candidate[name])) for name in candidate.columns]
        if (
            len(candidate) == self._original_rows_n
            and pairs == self._original_pairs
        ):
            self.counters.short_circuits += 1
            return 1.0
        mode = self.intent.mode
        if mode == "cells":
            return self._cells_delta(pairs)
        if mode == "values":
            return self._values_delta(pairs)
        if mode == "rows":
            return self._rows_delta(pairs, len(candidate))
        raise ValueError(f"unknown table-jaccard mode: {mode!r}")

    def _cells_delta(
        self, pairs: List[Tuple[str, Tuple[Any, ...]]]
    ) -> float:
        original = self._original_columns
        intersection = 0
        union = 0
        seen = set()
        for name, values in pairs:
            seen.add(name)
            content_a = original.get(name)
            if content_a is not None and content_a.values == values:
                # unchanged column: A_c == B_c, zero set construction
                n = len(content_a.value_set())
                self.counters.column_set_reuse += 1
                intersection += n
                union += n
                continue
            b = self._content_for(values).value_set()
            if content_a is None:
                union += len(b)
            else:
                a = content_a.value_set()
                common = len(a & b)
                intersection += common
                union += len(a) + len(b) - common
        for name, content in original.items():
            if name not in seen:
                union += len(content.value_set())
        if not union:
            return 1.0
        return intersection / union

    def _values_delta(
        self, pairs: List[Tuple[str, Tuple[Any, ...]]]
    ) -> float:
        original = self._original_value_union()
        candidate: Set[Any] = set()
        for _, values in pairs:
            candidate |= self._content_for(values).value_set()
        common = len(original & candidate)
        union = len(original) + len(candidate) - common
        if not union:
            return 1.0
        return common / union

    def _rows_delta(
        self, pairs: List[Tuple[str, Tuple[Any, ...]]], n_rows: int
    ) -> float:
        original = self._original_row_set()
        candidate = self._rows_from(
            [self._content_for(values) for _, values in pairs],
            n_rows,
        )
        common = len(original & candidate)
        union = len(original) + len(candidate) - common
        if not union:
            return 1.0
        return common / union


class PreparedModelPerformance(PreparedIntent):
    """Incremental Δ_M: the original's downstream accuracy, trained once.

    The naive ``delta`` re-trains the downstream model on the (unchanged)
    original output for every candidate; here it is evaluated once per
    prepared original and the per-check cost is the candidate evaluation
    only.  A candidate whose content fingerprint equals the original's
    short-circuits to the exact naive result without training at all —
    ``evaluate_downstream`` is a deterministic, positional function of
    table content, so identical content implies identical accuracy.
    """

    def __init__(
        self,
        intent: "ModelPerformanceIntent",
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ):
        super().__init__(intent, original, table_fp, counters, verify)
        self._acc_original: Optional[float] = None

    def _original_accuracy(self) -> float:
        if self._acc_original is None:
            self._acc_original = self.intent.accuracy(self.original)
        return self._acc_original

    def _prepared_delta(self, candidate: DataFrame) -> float:
        # evaluated (or raised) first, exactly as the naive path orders it
        acc_orig = self._original_accuracy()
        if table_fingerprint(candidate) == self.table_fp:
            self.counters.short_circuits += 1
            return model_performance_delta(acc_orig, acc_orig)
        try:
            acc_cand = self.intent.accuracy(candidate)
        except DownstreamEvaluationError:
            return 100.0
        return model_performance_delta(acc_orig, acc_cand)


# ------------------------------------------------------------------ measures
class IntentMeasure(ABC):
    """Interface every user-intent measure implements."""

    #: human-readable identifier used in reports
    name: str = "intent"

    @abstractmethod
    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        """Raw dissimilarity between the two script outputs."""

    @abstractmethod
    def satisfied(self, delta: float) -> bool:
        """Does *delta* respect the user's threshold τ?"""

    def check(self, original: DataFrame, candidate: DataFrame) -> Tuple[float, bool]:
        d = self.delta(original, candidate)
        return d, self.satisfied(d)

    def bare_delta(self, original: DataFrame, candidate: DataFrame) -> float:
        """``delta`` with every cache bypassed — the audit ground truth."""
        return self.delta(original, candidate)

    def cache_key(self) -> Tuple:
        """Hashable identity of everything that affects this measure's
        verdicts, used to address prepared state in caches (private
        attributes — memo state — are excluded by construction)."""
        params = tuple(
            sorted(
                (key, repr(value))
                for key, value in vars(self).items()
                if not key.startswith("_")
            )
        )
        return (type(self).__name__,) + params

    def prepare(
        self,
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ) -> PreparedIntent:
        """Freeze *original* into a reusable verification state."""
        return PreparedIntent(self, original, table_fp, counters, verify)


class TableJaccardIntent(IntentMeasure):
    """Δ_J: candidate output must stay Jaccard-similar to the original.

    ``delta`` is the Jaccard *similarity* (1.0 = identical); the constraint
    is satisfied when similarity ≥ τ_J (paper default 0.9).  The default
    ``mode='values'`` matches the paper's Example 2.1 (distinct cell
    values) — intentionally *unlike* the lower-level :func:`table_jaccard`
    helper, whose default is the stricter ``'cells'``; pass ``'cells'`` or
    ``'rows'`` here for the stricter comparisons.
    """

    name = "table_jaccard"

    def __init__(self, tau: float = 0.9, mode: str = "values"):
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau_J must be in [0, 1], got {tau}")
        self.tau = tau
        self.mode = mode

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        return table_jaccard(original, candidate, mode=self.mode)

    def satisfied(self, delta: float) -> bool:
        return delta >= self.tau

    def prepare(
        self,
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ) -> PreparedIntent:
        return PreparedTableJaccard(self, original, table_fp, counters, verify)


class ModelPerformanceIntent(IntentMeasure):
    """Δ_M: downstream model accuracy may shift at most τ_M percent.

    A candidate whose output can no longer support the downstream task at
    all (e.g. it dropped the target column) fails the constraint outright.
    The original side's accuracy is cached by table-content fingerprint
    (one slot — a different original invalidates it), so repeated checks
    against one original train its model once.
    """

    name = "model_performance"

    def __init__(
        self,
        target: str,
        tau: float = 1.0,
        task: Optional[str] = None,
        model: str = "logistic",
        random_state: int = 0,
    ):
        if tau < 0:
            raise ValueError(f"tau_M must be non-negative, got {tau}")
        self.target = target
        self.tau = tau
        self.task = task
        self.model = model
        self.random_state = random_state
        self._acc_cache: Optional[Tuple[str, float]] = None

    def accuracy(self, frame: DataFrame) -> float:
        return evaluate_downstream(
            frame,
            self.target,
            task=self.task,
            model=self.model,
            random_state=self.random_state,
        ).accuracy

    def _original_accuracy(self, original: DataFrame) -> float:
        fingerprint = table_fingerprint(original)
        cached = self._acc_cache
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        acc = self.accuracy(original)  # cached only on success
        self._acc_cache = (fingerprint, acc)
        return acc

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        acc_orig = self._original_accuracy(original)
        try:
            acc_cand = self.accuracy(candidate)
        except DownstreamEvaluationError:
            return 100.0
        return model_performance_delta(acc_orig, acc_cand)

    def bare_delta(self, original: DataFrame, candidate: DataFrame) -> float:
        acc_orig = self.accuracy(original)
        try:
            acc_cand = self.accuracy(candidate)
        except DownstreamEvaluationError:
            return 100.0
        return model_performance_delta(acc_orig, acc_cand)

    def satisfied(self, delta: float) -> bool:
        return delta <= self.tau

    def prepare(
        self,
        original: DataFrame,
        table_fp: Optional[str] = None,
        counters: Optional[IntentStats] = None,
        verify: bool = False,
    ) -> PreparedIntent:
        return PreparedModelPerformance(
            self, original, table_fp, counters, verify
        )
