"""User-intent measures (Section 2.1): Table Jaccard and Model Performance.

Both compare the dataset emitted by the user's script, ``D_OUT(s_u)``, with
the dataset emitted by a candidate, ``D_OUT(ŝ_u)``.  Each measure exposes
``delta`` (the raw dissimilarity) and ``satisfied`` (the constraint check
against the user's threshold τ).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Set, Tuple

from ..minipandas import DataFrame, is_missing
from ..ml import DownstreamEvaluationError, evaluate_downstream

__all__ = [
    "IntentMeasure",
    "TableJaccardIntent",
    "ModelPerformanceIntent",
    "table_jaccard",
    "model_performance_delta",
]


def _cell_set(frame: DataFrame, mode: str) -> Set:
    if mode == "values":
        return {
            "__NA__" if is_missing(v) else v
            for col in frame.columns
            for v in frame[col]
        }
    if mode == "cells":
        return {
            (col, "__NA__" if is_missing(v) else v)
            for col in frame.columns
            for v in frame[col]
        }
    if mode == "rows":
        # materialize each column once instead of an .iloc wrapper per cell
        columns = [frame[col].tolist() for col in frame.columns]
        return {
            tuple("__NA__" if is_missing(col[pos]) else col[pos] for col in columns)
            for pos in range(len(frame))
        }
    raise ValueError(f"unknown table-jaccard mode: {mode!r}")


def table_jaccard(a: DataFrame, b: DataFrame, mode: str = "cells") -> float:
    """Jaccard similarity of two tables' distinct content.

    ``mode='values'`` replicates the paper's Example 2.1 (distinct cell
    values); ``'cells'`` (default) compares distinct (column, value) pairs,
    which also notices column renames; ``'rows'`` compares distinct rows.
    Returns 1.0 when both tables are empty.
    """
    sa, sb = _cell_set(a, mode), _cell_set(b, mode)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def model_performance_delta(
    acc_original: float, acc_candidate: float
) -> float:
    """|relative % change| in downstream accuracy (Section 2.1, Δ_M)."""
    if acc_original == 0:
        return 0.0 if acc_candidate == 0 else 100.0
    return abs(acc_original - acc_candidate) / acc_original * 100.0


class IntentMeasure(ABC):
    """Interface every user-intent measure implements."""

    #: human-readable identifier used in reports
    name: str = "intent"

    @abstractmethod
    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        """Raw dissimilarity between the two script outputs."""

    @abstractmethod
    def satisfied(self, delta: float) -> bool:
        """Does *delta* respect the user's threshold τ?"""

    def check(self, original: DataFrame, candidate: DataFrame) -> Tuple[float, bool]:
        d = self.delta(original, candidate)
        return d, self.satisfied(d)


class TableJaccardIntent(IntentMeasure):
    """Δ_J: candidate output must stay Jaccard-similar to the original.

    ``delta`` is the Jaccard *similarity* (1.0 = identical); the constraint
    is satisfied when similarity ≥ τ_J (paper default 0.9).  The default
    ``mode='values'`` matches the paper's Example 2.1 (distinct cell
    values); pass ``'cells'`` or ``'rows'`` for stricter comparisons.
    """

    name = "table_jaccard"

    def __init__(self, tau: float = 0.9, mode: str = "values"):
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau_J must be in [0, 1], got {tau}")
        self.tau = tau
        self.mode = mode

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        return table_jaccard(original, candidate, mode=self.mode)

    def satisfied(self, delta: float) -> bool:
        return delta >= self.tau


class ModelPerformanceIntent(IntentMeasure):
    """Δ_M: downstream model accuracy may shift at most τ_M percent.

    A candidate whose output can no longer support the downstream task at
    all (e.g. it dropped the target column) fails the constraint outright.
    """

    name = "model_performance"

    def __init__(
        self,
        target: str,
        tau: float = 1.0,
        task: Optional[str] = None,
        model: str = "logistic",
        random_state: int = 0,
    ):
        if tau < 0:
            raise ValueError(f"tau_M must be non-negative, got {tau}")
        self.target = target
        self.tau = tau
        self.task = task
        self.model = model
        self.random_state = random_state

    def accuracy(self, frame: DataFrame) -> float:
        return evaluate_downstream(
            frame,
            self.target,
            task=self.task,
            model=self.model,
            random_state=self.random_state,
        ).accuracy

    def delta(self, original: DataFrame, candidate: DataFrame) -> float:
        acc_orig = self.accuracy(original)
        try:
            acc_cand = self.accuracy(candidate)
        except DownstreamEvaluationError:
            return 100.0
        return model_performance_delta(acc_orig, acc_cand)

    def satisfied(self, delta: float) -> bool:
        return delta <= self.tau
