"""Intent-threshold exploration (the paper's Section 8 extension).

"A possible extension to this work is an algorithm that optimizes
configurations, such as exploring user intent thresholds and returning
the Pareto curve."  This module sweeps τ and reports, per threshold, the
standardness improvement and the intent similarity actually achieved —
then extracts the Pareto-efficient frontier over (intent preservation,
improvement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .config import LSConfig
from .intent import ModelPerformanceIntent, TableJaccardIntent
from .standardizer import LucidScript, StandardizationError

__all__ = ["TradeoffPoint", "explore_intent_thresholds", "pareto_frontier"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One (threshold, improvement, achieved-intent) observation."""

    tau: float
    improvement: float
    intent_delta: Optional[float]
    output_script: str

    def preservation(self) -> float:
        """Intent preservation in [0, 1] (1 = output identical in intent).

        Table-Jaccard deltas are already similarities; model-performance
        deltas are percent changes, mapped via 1 - delta/100.
        """
        if self.intent_delta is None:
            return 1.0
        if self.intent_delta <= 1.0:
            return float(self.intent_delta)
        return max(0.0, 1.0 - self.intent_delta / 100.0)


def explore_intent_thresholds(
    corpus: Sequence[str],
    script: str,
    taus: Sequence[float],
    intent_kind: str = "jaccard",
    target: Optional[str] = None,
    data_dir: Optional[str] = None,
    config: Optional[LSConfig] = None,
    task: Optional[str] = None,
) -> List[TradeoffPoint]:
    """Standardize *script* once per threshold in *taus*.

    Parameters mirror :class:`LucidScript`; ``intent_kind`` selects τ_J
    ('jaccard') or τ_M ('model', which requires *target*).
    """
    if intent_kind == "model" and target is None:
        raise ValueError("intent_kind='model' requires a target column")
    points: List[TradeoffPoint] = []
    for tau in taus:
        if intent_kind == "jaccard":
            intent = TableJaccardIntent(tau=tau)
        elif intent_kind == "model":
            intent = ModelPerformanceIntent(target=target, tau=tau, task=task)
        else:
            raise ValueError(f"unknown intent kind: {intent_kind!r}")
        system = LucidScript(
            corpus, data_dir=data_dir, intent=intent, config=config
        )
        try:
            result = system.standardize(script)
        except StandardizationError:
            continue
        points.append(
            TradeoffPoint(
                tau=float(tau),
                improvement=result.improvement,
                intent_delta=result.intent_delta,
                output_script=result.output_script,
            )
        )
    return points


def pareto_frontier(points: Sequence[TradeoffPoint]) -> List[TradeoffPoint]:
    """The Pareto-efficient subset over (preservation, improvement).

    A point is kept when no other point has both strictly higher intent
    preservation and strictly higher improvement.  Result is ordered by
    decreasing preservation (the "safe" end first).
    """
    kept = [
        p
        for p in points
        if not any(
            q.preservation() > p.preservation() and q.improvement > p.improvement
            for q in points
        )
    ]
    return sorted(kept, key=lambda p: (-p.preservation(), -p.improvement))
