"""Transformation configuration (Definition 3.4 and Section 5.2).

A transformation adds or deletes one atom (realized at statement
granularity so the result is always syntactically valid).  Configuring
deletes is straightforward — every unprotected existing statement is a
candidate.  Configuring adds uses the corpus: n-gram atoms are placed after
statements they were observed to follow (via the edge vocabulary), and
1-gram atoms are placed at the relative position they typically occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..lang.atoms import NGRAM, ONEGRAM
from ..lang.errors import ScriptError
from ..lang.parser import Statement
from ..lang.vocabulary import CorpusVocabulary

__all__ = ["Transformation", "apply_transformation", "enumerate_transformations"]

ADD = "add"
DELETE = "delete"


@dataclass(frozen=True)
class Transformation:
    """f(type, atom, edges, lineno) from Definition 3.4.

    Attributes
    ----------
    kind:
        ``"add"`` or ``"delete"``.
    gram:
        Which atom granularity produced this candidate.
    signature:
        The atom being added or deleted.
    position:
        Statement index: for deletes, the statement removed; for adds, the
        insertion index (the new statement lands *at* this index).
    statement_source:
        Renderable source line for adds (None for deletes).
    """

    kind: str
    gram: str
    signature: str
    position: int
    statement_source: Optional[str] = None

    def __post_init__(self):
        if self.kind not in (ADD, DELETE):
            raise ValueError(f"invalid transformation kind: {self.kind!r}")
        if self.kind == ADD and not self.statement_source:
            raise ValueError("add transformations require statement_source")
        if self.position < 0:
            raise ValueError(f"position must be >= 0, got {self.position}")

    def describe(self) -> str:
        if self.kind == DELETE:
            return f"delete line {self.position}: {self.signature}"
        return f"add at line {self.position}: {self.statement_source}"


def _renumber(statements: Sequence[Statement]) -> List[Statement]:
    out = []
    for index, stmt in enumerate(statements):
        if stmt.index == index:
            out.append(stmt)
        else:
            out.append(
                Statement(
                    index=index,
                    source=stmt.source,
                    ngram=stmt.ngram,
                    onegrams=stmt.onegrams,
                    intra_edges=stmt.intra_edges,
                    reads=stmt.reads,
                    writes=stmt.writes,
                    is_import=stmt.is_import,
                    is_read_csv=stmt.is_read_csv,
                )
            )
    return out


def apply_transformation(
    statements: Sequence[Statement], transformation: Transformation
) -> List[Statement]:
    """Return a new renumbered statement list with *transformation* applied."""
    statements = list(statements)
    if transformation.kind == DELETE:
        if not 0 <= transformation.position < len(statements):
            raise IndexError(
                f"delete position {transformation.position} out of range "
                f"for {len(statements)} statements"
            )
        target = statements[transformation.position]
        if target.protected:
            raise ScriptError(f"cannot delete protected statement: {target.source!r}")
        del statements[transformation.position]
    else:
        if not 0 <= transformation.position <= len(statements):
            raise IndexError(
                f"insert position {transformation.position} out of range "
                f"for {len(statements)} statements"
            )
        new_stmt = Statement.from_source(
            transformation.position, transformation.statement_source
        )
        statements.insert(transformation.position, new_stmt)
    return _renumber(statements)


def enumerate_transformations(
    statements: Sequence[Statement],
    vocabulary: CorpusVocabulary,
    frontier: int = 0,
    max_onegram_adds: int = 24,
    forbidden_adds: Optional[set] = None,
    forbidden_deletes: Optional[set] = None,
    operation_groups=None,
) -> List[Transformation]:
    """All legal next-step transformations.

    Monotonicity (Section 5.2 (3)) applies to insertions: they land at
    index ≥ *frontier*.  Deletes act anywhere — with early execution
    checking, removing an earlier statement can never resurrect a broken
    script (the failure mode monotonicity guards against), while
    restricting them would block removal of multi-line nonstandard
    snippets whose per-line scores are flat (Section 6.6).

    ``forbidden_adds``/``forbidden_deletes`` prevent oscillation: a
    sequence never re-adds a signature it deleted or deletes one it added.

    ``operation_groups`` (an :class:`~repro.core.grouping.OperationGroups`)
    restricts 1-gram adds to group representatives — the Section 6.5
    search-space reduction.
    """
    statements = list(statements)
    candidates: List[Transformation] = []
    present_ngrams = {s.ngram.signature for s in statements}
    forbidden_adds = forbidden_adds or set()
    forbidden_deletes = forbidden_deletes or set()
    tail_start = _split_tail_start(statements)

    # -- deletes -----------------------------------------------------------
    for stmt in statements:
        if stmt.protected or stmt.ngram.signature in forbidden_deletes:
            continue
        candidates.append(
            Transformation(
                kind=DELETE,
                gram=NGRAM,
                signature=stmt.ngram.signature,
                position=stmt.index,
            )
        )

    # -- n-gram adds: place after observed predecessors ---------------------
    seen_adds = set()
    for stmt in statements:
        insert_at = stmt.index + 1
        if insert_at < frontier:
            continue
        for successor_sig, _count in vocabulary.ngram_successors(stmt.ngram.signature):
            if successor_sig in present_ngrams or successor_sig in forbidden_adds:
                continue  # already in the script (or deleted by this sequence)
            key = (successor_sig, insert_at)
            if key in seen_adds:
                continue
            seen_adds.add(key)
            candidates.append(
                Transformation(
                    kind=ADD,
                    gram=NGRAM,
                    signature=successor_sig,
                    position=insert_at,
                    statement_source=successor_sig,
                )
            )

    # -- 1-gram adds: frequent invocations rendered via their templates -----
    present_onegrams = {
        a.signature for s in statements for a in s.onegrams
    }
    added = 0
    for signature, _count in vocabulary.onegram_counts.most_common():
        if added >= max_onegram_adds:
            break
        if signature in present_onegrams:
            continue
        if operation_groups is not None and not operation_groups.is_representative(
            signature
        ):
            continue
        template = vocabulary.render_statement(ONEGRAM, signature)
        if template is None or template in present_ngrams or template in forbidden_adds:
            continue
        position = _position_from_relative(
            vocabulary.relative_positions.get(template, 0.75), len(statements)
        )
        # data-prep steps belong before the conventional y/X split tail
        if position > tail_start:
            position = tail_start
        if position < frontier:
            position = frontier
        key = (template, position)
        if key in seen_adds:
            continue
        seen_adds.add(key)
        candidates.append(
            Transformation(
                kind=ADD,
                gram=ONEGRAM,
                signature=signature,
                position=position,
                statement_source=template,
            )
        )
        added += 1

    return candidates


def _split_tail_start(statements: Sequence[Statement]) -> int:
    """Index where the conventional ``y = ...`` / ``X = ...`` tail begins."""
    start = len(statements)
    for stmt in reversed(statements):
        if stmt.source.startswith(("y = ", "X = ")):
            start = stmt.index
        else:
            break
    return start


def _position_from_relative(relative: float, n_statements: int) -> int:
    """Map a corpus-observed relative position onto an insertion index."""
    relative = min(max(relative, 0.0), 1.0)
    return min(int(round(relative * n_statements)), n_statements)
