"""Transformation explanations (the paper's Section 8 extension).

For every transformation in a standardization result, report the evidence
behind the recommendation: how prevalent the step is in the corpus, how
much it moved the relative-entropy objective, and a human-readable
rationale — "the explanation would inform the user about the frequency of
this operation in the corpus, its impact on the user intent, and the
rationale behind it."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..lang import CorpusVocabulary, parse_script
from .entropy import RelativeEntropyScorer
from .standardizer import StandardizationResult
from .transformations import ADD, DELETE, apply_transformation

__all__ = ["TransformationExplanation", "explain_result"]


@dataclass(frozen=True)
class TransformationExplanation:
    """Evidence for one recommended transformation."""

    description: str
    kind: str
    statement: str
    #: fraction of corpus scripts containing this statement
    corpus_prevalence: float
    #: RE before and after this step of the sequence
    re_before: float
    re_after: float
    rationale: str

    @property
    def re_delta(self) -> float:
        return self.re_after - self.re_before

    def render(self) -> str:
        prevalence_pct = f"{self.corpus_prevalence * 100:.0f}%"
        return (
            f"{self.description}\n"
            f"    corpus prevalence: {prevalence_pct} of scripts | "
            f"RE {self.re_before:.3f} -> {self.re_after:.3f} "
            f"({self.re_delta:+.3f})\n"
            f"    {self.rationale}"
        )


def _rationale(kind: str, prevalence: float) -> str:
    if kind == ADD:
        if prevalence >= 0.5:
            return (
                "this step is majority practice for this dataset; most peer "
                "scripts apply it"
            )
        if prevalence >= 0.2:
            return "this step is an established convention among peer scripts"
        return (
            "this step follows your existing steps in peer scripts, aligning "
            "the script's data flow with the corpus"
        )
    if prevalence == 0.0:
        return (
            "no peer script uses this step; it is out-of-the-ordinary for "
            "this dataset (possible error or leakage)"
        )
    if prevalence < 0.2:
        return "only a small minority of peer scripts use this step"
    return (
        "removing this step lets the script follow the more common "
        "alternative present in the corpus"
    )


def explain_result(
    result: StandardizationResult,
    vocabulary: CorpusVocabulary,
) -> List[TransformationExplanation]:
    """Explain every transformation in *result*, in application order.

    Replays the transformation sequence over the input script, scoring the
    working script before and after each step against *vocabulary* (the
    corpus the result was produced with).
    """
    scorer = RelativeEntropyScorer(vocabulary)
    statements = list(parse_script(result.input_script, lemmatized=True).statements)
    explanations: List[TransformationExplanation] = []
    score = scorer.score_statements(statements)
    for transformation in result.transformations:
        statements = apply_transformation(statements, transformation)
        new_score = scorer.score_statements(statements)
        statement_text = (
            transformation.statement_source
            if transformation.kind == ADD
            else transformation.signature
        )
        prevalence = vocabulary.statement_frequency(statement_text)
        explanations.append(
            TransformationExplanation(
                description=transformation.describe(),
                kind=transformation.kind,
                statement=statement_text,
                corpus_prevalence=prevalence,
                re_before=score,
                re_after=new_score,
                rationale=_rationale(transformation.kind, prevalence),
            )
        )
        score = new_score
    return explanations
