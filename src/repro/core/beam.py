"""The online search framework (Section 5.2, Algorithms 1-3).

Beam search over transformation sequences: each candidate holds a working
statement list, the transformations applied so far, and a monotonicity
frontier.  ``GetSteps`` ranks legal next transformations by the relative
entropy of the script they would produce; ``GetTopKBeams`` (optionally with
the diversity clustering of Algorithm 3) extends the beam set; constraint
verification happens early (α = on) or late.

The execution-constraint hot path (Figure 7's dominant cost) runs through
two engines layered under :meth:`BeamSearch.check_if_executes`:

* an :class:`~repro.sandbox.IncrementalExecutor` resumes each candidate
  from the longest snapshotted statement prefix — beam candidates share
  prefixes by construction, because the monotone frontier moves edits
  left-to-right;
* with ``LSConfig.parallel_workers > 1``, each extension wave's checks are
  speculatively fired as one batch over a process pool before admission,
  which then proceeds serially in rank order (deterministic results).

Both engines run under optional execution budgets
(``LSConfig.exec_timeout_s`` / ``statement_timeout_s``): a candidate that
exceeds its budget fails ``CheckIfExecutes`` and is skipped — counted in
``SearchStats.breakdown()`` (``ExecTimeouts``, ``WorkerRespawns``,
``DegradedWaves``) but never fatal to the search.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._lru import LRUCache
from ..lang.errors import ScriptError
from ..lang.parser import EdgeDelta, EdgeState, Statement, compute_edge_counts
from ..lang.vocabulary import CorpusVocabulary
from ..sandbox import (
    BatchReport,
    IncrementalExecutor,
    check_executes_batch,
    run_script,
)
from .config import LSConfig
from .diversity import cluster_transformations
from .entropy import REStats, RelativeEntropyScorer
from .transformations import (
    ADD,
    DELETE,
    Transformation,
    apply_transformation,
    enumerate_transformations,
)

__all__ = ["Candidate", "ScoringMismatchError", "SearchStats", "BeamSearch"]


class ScoringMismatchError(RuntimeError):
    """Raised by ``LSConfig.verify_scoring`` when the O(Δ) incremental
    score diverges from the full recount (a delta-engine bug, never a
    legitimate runtime condition — hence not a swallowed ``ValueError``)."""


@dataclass(frozen=True)
class Candidate:
    """One in-progress transformation sequence and its working script."""

    statements: Tuple[Statement, ...]
    applied: Tuple[Transformation, ...]
    frontier: int
    score: float

    def source(self) -> str:
        # memoized: the join is re-requested by ranking, prefetch waves,
        # archive keys, and both verification walks for the same
        # immutable candidate
        cached = self.__dict__.get("_source")
        if cached is None:
            cached = "\n".join(s.source for s in self.statements)
            object.__setattr__(self, "_source", cached)
        return cached

    @property
    def n_transformations(self) -> int:
        return len(self.applied)


@dataclass
class SearchStats:
    """Runtime breakdown of one search (drives the Figure 7 reproduction).

    Besides the four component timings, the stats expose the execution
    engine's cache behaviour: prefix-snapshot hit rate and mean resumed
    depth (the incremental executor), batch counts (the parallel path),
    wall vs CPU time of the check loop, and the sizes/hit rates of the
    per-search memo caches.
    """

    get_steps_s: float = 0.0
    get_top_k_s: float = 0.0
    check_executes_s: float = 0.0
    verify_constraints_s: float = 0.0
    check_executes_cpu_s: float = 0.0
    n_steps_enumerated: int = 0
    n_delta_scores: int = 0
    n_full_recounts: int = 0
    get_steps_speedup: float = 0.0
    n_exec_checks: int = 0
    n_intent_checks: int = 0
    n_intent_cache_hits: int = 0
    n_column_set_reuse: int = 0
    n_intent_short_circuits: int = 0
    intent_speedup: float = 0.0
    n_corpus_index_hits: int = 0
    n_corpus_script_hits: int = 0
    n_corpus_reparses: int = 0
    n_retrieval_queries: int = 0
    n_retrieval_candidates: int = 0
    n_retrieval_fallbacks: int = 0
    n_iterations: int = 0
    n_exec_batches: int = 0
    n_batched_checks: int = 0
    n_exec_timeouts: int = 0
    n_worker_respawns: int = 0
    n_degraded_waves: int = 0
    n_shard_hits: int = 0
    n_shard_migrations: int = 0
    bytes_shipped: int = 0
    max_beam_width: int = 0
    prefix_cache_hits: int = 0
    prefix_cache_misses: int = 0
    prefix_mean_resume_depth: float = 0.0
    prefix_fallbacks: int = 0
    exec_cache_size: int = 0
    exec_cache_hit_rate: float = 0.0
    statement_cache_size: int = 0
    statement_cache_hit_rate: float = 0.0

    @property
    def prefix_cache_hit_rate(self) -> float:
        probes = self.prefix_cache_hits + self.prefix_cache_misses
        return self.prefix_cache_hits / probes if probes else 0.0

    def total_s(self) -> float:
        return (
            self.get_steps_s
            + self.get_top_k_s
            + self.check_executes_s
            + self.verify_constraints_s
        )

    def breakdown(self) -> Dict[str, float]:
        return {
            "GetSteps": self.get_steps_s,
            "DeltaScoreHits": float(self.n_delta_scores),
            "FullRecountFallbacks": float(self.n_full_recounts),
            "GetStepsSpeedup": self.get_steps_speedup,
            "GetTopKBeams": self.get_top_k_s,
            "CheckIfExecutes": self.check_executes_s,
            "VerifyConstraints": self.verify_constraints_s,
            "IntentChecks": float(self.n_intent_checks),
            "IntentCacheHits": float(self.n_intent_cache_hits),
            "ColumnSetReuse": float(self.n_column_set_reuse),
            "IntentShortCircuits": float(self.n_intent_short_circuits),
            "IntentSpeedup": self.intent_speedup,
            "CorpusIndexHits": float(self.n_corpus_index_hits),
            "CorpusScriptHits": float(self.n_corpus_script_hits),
            "CorpusReparses": float(self.n_corpus_reparses),
            "RetrievalQueries": float(self.n_retrieval_queries),
            "RetrievalCandidates": float(self.n_retrieval_candidates),
            "RetrievalFallbacks": float(self.n_retrieval_fallbacks),
            "CheckIfExecutesCPU": self.check_executes_cpu_s,
            "ExecBatches": float(self.n_exec_batches),
            "BatchedChecks": float(self.n_batched_checks),
            "ExecTimeouts": float(self.n_exec_timeouts),
            "WorkerRespawns": float(self.n_worker_respawns),
            "DegradedWaves": float(self.n_degraded_waves),
            "ShardHits": float(self.n_shard_hits),
            "ShardMigrations": float(self.n_shard_migrations),
            "BytesShipped": float(self.bytes_shipped),
            "PrefixCacheHitRate": self.prefix_cache_hit_rate,
            "PrefixMeanResumeDepth": self.prefix_mean_resume_depth,
            "ExecCacheSize": float(self.exec_cache_size),
            "ExecCacheHitRate": self.exec_cache_hit_rate,
            "StatementCacheSize": float(self.statement_cache_size),
            "StatementCacheHitRate": self.statement_cache_hit_rate,
        }


class BeamSearch:
    """Algorithm 1's meta-level framework over a fixed corpus vocabulary."""

    def __init__(
        self,
        vocabulary: CorpusVocabulary,
        scorer: RelativeEntropyScorer,
        config: LSConfig,
        data_dir: Optional[str] = None,
        exec_checker: Optional[Callable[[str], bool]] = None,
        executor: Optional[IncrementalExecutor] = None,
    ):
        self.vocabulary = vocabulary
        self.scorer = scorer
        self.config = config
        self.data_dir = data_dir
        self.operation_groups = None
        if config.operation_groups is not None:
            from .grouping import group_operations

            self.operation_groups = group_operations(
                vocabulary, config.operation_groups, random_state=config.random_state
            )
        self._exec_checker = exec_checker
        # the lang layer takes None for the historical pandas surface
        if config.dialect == "pandas":
            self._lang_dialect = None
        else:
            from ..dialects import get_dialect

            self._lang_dialect = get_dialect(config.dialect)
        self._executor = executor
        if (
            self._executor is None
            and exec_checker is None
            and config.incremental_exec
        ):
            self._executor = IncrementalExecutor(
                data_dir=data_dir,
                sample_rows=config.sample_rows,
                snapshot_budget=config.snapshot_budget,
                exec_timeout_s=config.exec_timeout_s,
                statement_timeout_s=config.statement_timeout_s,
                dialect=config.dialect,
            )
        # executors may be shared across searches; stats report deltas
        self._executor_baseline = (
            dict(self._executor.stats.as_dict()) if self._executor else {}
        )
        # timeouts observed outside the shared executor (cold checks, pool
        # batches); sync_cache_stats adds the executor's delta on top
        self._direct_timeouts = 0
        self._exec_cache: LRUCache = LRUCache(self.EXEC_CACHE_LIMIT)
        self._statement_cache: LRUCache = LRUCache(self.STATEMENT_CACHE_LIMIT)
        #: source -> (EdgeState, REStats): per-candidate scoring state for
        #: the O(Δ) incremental path; a miss rebuilds via a full recount.
        self._score_state_cache: LRUCache = LRUCache(self.SCORE_STATE_CACHE_LIMIT)
        #: deltas of the current GetSteps wave, so admission can derive
        #: the child's scoring state from the parent's without recounting
        # keyed by id(transformation): proposals are unique objects per wave
        # and stay alive in the ranked list, and identity lookups skip the
        # frozen dataclass's field-tuple hashing on the hot path
        self._wave_deltas: Dict[int, EdgeDelta] = {}
        self._wave_parent_key: Optional[str] = None
        # verify_scoring timing accumulators (drive GetStepsSpeedup)
        self._delta_score_s = 0.0
        self._full_score_s = 0.0
        self._archive: Dict[str, Candidate] = {}
        self.stats = SearchStats()

    #: Upper bound on archived candidates handed to constraint verification.
    ARCHIVE_LIMIT = 64

    #: Capacity of the per-search memo caches.  A search touches a few
    #: hundred distinct sources/statements; the bound only matters for
    #: long-lived searches (large seq × beam × corpus), which previously
    #: grew these dicts without limit.
    EXEC_CACHE_LIMIT = 4096
    STATEMENT_CACHE_LIMIT = 2048
    SCORE_STATE_CACHE_LIMIT = 256

    # ------------------------------------------------------------- components
    def _band(self, score: float) -> int:
        """Quantize a score so near-equal candidates compare equal.

        Within a band, ties break toward earlier positions/frontiers: a
        monotone search that edits left-to-right keeps every later line
        reachable, whereas editing the tail first locks the prefix.  This
        matters for multi-line nonstandard snippets (e.g. target leakage,
        Section 6.6) whose per-line deletions score almost identically.
        """
        if self.config.score_band <= 0:
            return int(score * 1e12)
        return int(round(score / self.config.score_band))

    def check_if_executes(self, source: str) -> bool:
        """CheckIfExecutes() with memoization across the whole search."""
        cached = self._exec_cache.get(source)
        if cached is not None:
            return cached
        wall = time.perf_counter()
        cpu = time.process_time()
        if self._exec_checker is not None:
            ok = self._exec_checker(source)
        elif self._executor is not None:
            ok = self._executor.check_executes(source)
        else:
            result = run_script(
                source,
                data_dir=self.data_dir,
                sample_rows=self.config.sample_rows,
                timeout_s=self.config.exec_timeout_s,
                dialect=self.config.dialect,
            )
            ok = result.ok and result.output is not None
            if result.timed_out:
                self._direct_timeouts += 1
        self.stats.check_executes_s += time.perf_counter() - wall
        self.stats.check_executes_cpu_s += time.process_time() - cpu
        self.stats.n_exec_checks += 1
        self._exec_cache[source] = ok
        return ok

    def _parsed_statement(self, source: str) -> Statement:
        """Parse-once cache for add-candidate statements."""
        statement = self._statement_cache.get(source)
        if statement is None:
            statement = Statement.from_source(0, source, dialect=self._lang_dialect)
            self._statement_cache[source] = statement
        return statement

    def _projected_score(
        self, statements: Sequence[Statement], transformation: Transformation
    ) -> float:
        """Score a transformation via the marginal P(x) update (Sec. 5.2):
        splice a virtual sequence view and recount edges positionally,
        without materializing new Statement objects."""
        virtual = list(statements)
        if transformation.kind == DELETE:
            if not 0 <= transformation.position < len(virtual):
                raise IndexError(transformation.position)
            del virtual[transformation.position]
        else:
            if not 0 <= transformation.position <= len(virtual):
                raise IndexError(transformation.position)
            virtual.insert(
                transformation.position,
                self._parsed_statement(transformation.statement_source),
            )
        return self.scorer.score_edge_counts(compute_edge_counts(virtual))

    def _score_state(self, candidate: Candidate) -> Tuple[EdgeState, REStats]:
        """The candidate's (edge state, sufficient statistics) pair.

        Cache misses — the root candidate, or an entry evicted from the
        bounded LRU — rebuild via one full recount, counted in
        ``SearchStats.n_full_recounts``; everything else is either a hit
        or derived from its parent by :meth:`_derive_child_state`.
        """
        key = candidate.source()
        state = self._score_state_cache.get(key)
        if state is None:
            edge_state = EdgeState.from_statements(candidate.statements)
            state = (edge_state, self.scorer.stats_from_counts(edge_state.counts))
            self._score_state_cache[key] = state
            self.stats.n_full_recounts += 1
        return state

    def _delta_for(
        self, edge_state: EdgeState, transformation: Transformation
    ) -> EdgeDelta:
        if transformation.kind == DELETE:
            return edge_state.delta_delete(transformation.position)
        return edge_state.delta_insert(
            transformation.position,
            self._parsed_statement(transformation.statement_source),
        )

    def _delta_score(
        self,
        candidate: Candidate,
        edge_state: EdgeState,
        re_stats: REStats,
        transformation: Transformation,
    ) -> float:
        """Score one transformation off the parent's state in O(Δ).

        With ``verify_scoring`` on, the full recount runs alongside and
        any divergence — in value *or* in raised-exception behaviour —
        raises :class:`ScoringMismatchError` (bit-identity is the delta
        engine's contract, so the comparison is exact, not approximate).
        """
        if not self.config.verify_scoring:
            delta = self._delta_for(edge_state, transformation)
            score = self.scorer.score_delta(re_stats, edge_state.counts, delta)
            self._wave_deltas[id(transformation)] = delta
            return score
        started = time.perf_counter()
        try:
            delta = self._delta_for(edge_state, transformation)
            score: Optional[float] = self.scorer.score_delta(
                re_stats, edge_state.counts, delta
            )
            delta_error: Optional[BaseException] = None
        except (ScriptError, IndexError, ValueError) as exc:
            score, delta, delta_error = None, None, exc
        self._delta_score_s += time.perf_counter() - started
        started = time.perf_counter()
        try:
            full: Optional[float] = self._projected_score(
                candidate.statements, transformation
            )
            full_error: Optional[BaseException] = None
        except (ScriptError, IndexError, ValueError) as exc:
            full, full_error = None, exc
        self._full_score_s += time.perf_counter() - started
        if (delta_error is None) != (full_error is None) or (
            score is not None and score != full
        ):
            raise ScoringMismatchError(
                f"incremental score {score!r} (error={delta_error!r}) != "
                f"full recount {full!r} (error={full_error!r}) for "
                f"{transformation.describe()} on:\n{candidate.source()}"
            )
        if delta_error is not None:
            raise delta_error
        self._wave_deltas[id(transformation)] = delta
        return score  # type: ignore[return-value]

    def get_steps(self, candidate: Candidate) -> List[Tuple[Transformation, float]]:
        """GetSteps(): rank legal next transformations by projected RE.

        With ``LSConfig.incremental_scoring`` (the default), every
        proposal is scored by the marginal-update engine: the candidate's
        cached edge state yields an O(Δ) edge delta, and the sufficient-
        statistics representation turns that into the new RE without
        touching untouched edges.  The deltas are kept for the wave so a
        winning extension's state derives from its parent's.
        """
        start = time.perf_counter()
        added = {t.signature for t in candidate.applied if t.kind == ADD}
        deleted = {t.signature for t in candidate.applied if t.kind == DELETE}
        raw = enumerate_transformations(
            candidate.statements,
            self.vocabulary,
            frontier=candidate.frontier,
            forbidden_adds=deleted,
            forbidden_deletes=added,
            operation_groups=self.operation_groups,
        )
        incremental = self.config.incremental_scoring
        if incremental:
            edge_state, re_stats = self._score_state(candidate)
            self._wave_deltas = {}
            self._wave_parent_key = candidate.source()
        ranked: List[Tuple[Transformation, float]] = []
        for transformation in raw:
            try:
                if incremental:
                    score = self._delta_score(
                        candidate, edge_state, re_stats, transformation
                    )
                    self.stats.n_delta_scores += 1
                else:
                    score = self._projected_score(candidate.statements, transformation)
            except (ScriptError, IndexError, ValueError):
                continue
            ranked.append((transformation, score))
        ranked.sort(key=lambda pair: (self._band(pair[1]), pair[0].position, pair[1]))
        ranked = ranked[: self.config.max_step_candidates]
        self.stats.get_steps_s += time.perf_counter() - start
        self.stats.n_steps_enumerated += len(ranked)
        return ranked

    def _extend(self, candidate: Candidate, transformation: Transformation,
                score: float) -> Candidate:
        statements = apply_transformation(candidate.statements, transformation)
        if transformation.kind == ADD:
            frontier = transformation.position + 1
        elif transformation.position < candidate.frontier:
            # a delete before the add-frontier shifts later lines down
            frontier = candidate.frontier - 1
        else:
            frontier = candidate.frontier
        return Candidate(
            statements=tuple(statements),
            applied=candidate.applied + (transformation,),
            frontier=frontier,
            score=score,
        )

    def _derive_child_state(
        self, parent: Candidate, transformation: Transformation, child: Candidate
    ) -> None:
        """Seed the child's scoring state by applying the winning delta.

        Only called for candidates admitted to a beam (the ones GetSteps
        will visit next iteration).  If the wave's delta or the parent's
        state is gone (LRU eviction, different wave), the child simply
        rebuilds lazily on its first GetSteps — a counted fallback, never
        an error.
        """
        if not self.config.incremental_scoring:
            return
        key = child.source()
        if key in self._score_state_cache:
            return
        if self._wave_parent_key != parent.source():
            return
        delta = self._wave_deltas.get(id(transformation))
        parent_state = self._score_state_cache.peek(parent.source())
        if delta is None or parent_state is None:
            return
        edge_state, re_stats = parent_state
        self._score_state_cache[key] = (
            edge_state.apply(delta),
            self.scorer.apply_delta(re_stats, edge_state.counts, delta),
        )

    def _prefetch_exec_checks(
        self,
        candidate: Candidate,
        ranked: Sequence[Tuple[Transformation, float]],
        known_sources: set,
    ) -> None:
        """Speculatively batch the wave's execution checks over the pool.

        Builds every extension the admission loop may consider, fires the
        uncached checks as one :func:`check_executes_batch`, and seeds the
        memo cache.  Admission then runs serially in rank order against
        cached verdicts, so the admitted set is identical to the serial
        path — the batch only moves the sandbox work off the clock.
        """
        wave: List[str] = []
        seen = set(known_sources)
        for transformation, score in ranked:
            try:
                extended = self._extend(candidate, transformation, score)
            except (ScriptError, IndexError, ValueError):
                continue
            source = extended.source()
            if source in seen or source in self._exec_cache:
                continue
            seen.add(source)
            wave.append(source)
        if not wave:
            return
        wall = time.perf_counter()
        cpu = time.process_time()
        report = BatchReport()
        verdicts = check_executes_batch(
            wave,
            data_dir=self.data_dir,
            sample_rows=self.config.sample_rows,
            workers=self.config.parallel_workers,
            timeout_s=self.config.exec_timeout_s,
            respawn_limit=self.config.pool_respawn_limit,
            report=report,
            statement_timeout_s=self.config.statement_timeout_s,
            snapshot_budget=self.config.snapshot_budget,
            shard_affinity=self.config.shard_affinity,
            source_cache_limit=self.config.worker_source_cache_limit,
            affinity_base=candidate.source(),
            dialect=self.config.dialect,
        )
        self.stats.check_executes_s += time.perf_counter() - wall
        self.stats.check_executes_cpu_s += time.process_time() - cpu
        self.stats.n_exec_checks += len(wave)
        self.stats.n_exec_batches += 1
        self.stats.n_batched_checks += len(wave)
        self._direct_timeouts += report.timeouts
        self.stats.n_worker_respawns += report.respawns
        self.stats.n_degraded_waves += report.degraded
        self.stats.n_shard_hits += report.shard_hits
        self.stats.n_shard_migrations += report.shard_migrations
        self.stats.bytes_shipped += report.bytes_shipped
        if self.config.verify_parallel:
            # audit the engine's bit-identity claim: the serial loop must
            # return exactly these verdicts in exactly this order
            serial = check_executes_batch(
                wave,
                data_dir=self.data_dir,
                sample_rows=self.config.sample_rows,
                workers=1,
                timeout_s=self.config.exec_timeout_s,
                dialect=self.config.dialect,
            )
            if serial != verdicts:
                from ..sandbox.shards import ParallelMismatchError

                raise ParallelMismatchError(
                    f"verify_parallel: sharded verdicts {verdicts!r} != "
                    f"serial verdicts {serial!r}"
                )
        for source, ok in zip(wave, verdicts):
            self._exec_cache[source] = ok

    def get_top_k_beams(
        self,
        beams: List[Candidate],
        candidate: Candidate,
        ranked: Sequence[Tuple[Transformation, float]],
        k: int,
    ) -> List[Candidate]:
        """Algorithm 2: extend *candidate* by each ranked transformation,
        admitting a new script when it beats the current worst beam (or the
        beam set is not yet full), after the optional early execution check.

        The beam set never exceeds ``beam_size``: when full, a newcomer
        either replaces the evicted worst member or — if it *is* the worst
        — goes straight to the archive without entering the beam set.

        The beam set is kept sorted by the eviction key throughout, so
        each admission decision reads the worst member in O(1) and each
        insertion costs O(log K) comparisons (``insort``) instead of the
        former per-candidate ``sort`` + ``max`` scan.  The stable upfront
        sort preserves the legacy order among key-ties (both paths keep
        equal-key members in insertion order), so admissions and
        evictions are unchanged.
        """
        start = time.perf_counter()
        beams = sorted(beams, key=self._beam_key)
        sources = {b.source() for b in beams}
        if (
            self.config.early_check
            and self.config.parallel_workers > 1
            and self._exec_checker is None
        ):
            self.stats.get_top_k_s += time.perf_counter() - start
            self._prefetch_exec_checks(candidate, ranked, sources)
            start = time.perf_counter()
        admitted = 0
        for transformation, score in ranked:
            if admitted >= k:
                break
            # the tail of the kept-sorted beam set maximizes (band,
            # frontier, score); band is monotone in score, so its band
            # equals the band of the former max-score scan
            if beams and not (
                self._band(score) <= self._band(beams[-1].score)
                or len(beams) < self.config.beam_size
            ):
                continue
            extended = self._extend(candidate, transformation, score)
            source = extended.source()
            if source in sources:
                continue
            if self.config.early_check:
                # pause the top-k clock while the sandbox runs
                self.stats.get_top_k_s += time.perf_counter() - start
                valid = self.check_if_executes(source)
                start = time.perf_counter()
                if not valid:
                    continue
            self._archive.setdefault(source, extended)
            admitted += 1
            if len(beams) >= self.config.beam_size:
                if self._beam_key(extended) >= self._beam_key(beams[-1]):
                    continue  # would be evicted immediately; archive only
                dropped = beams.pop()
                sources.discard(dropped.source())
            insort(beams, extended, key=self._beam_key)
            sources.add(source)
            self._derive_child_state(candidate, transformation, extended)
            self.stats.max_beam_width = max(self.stats.max_beam_width, len(beams))
        self.stats.get_top_k_s += time.perf_counter() - start
        return beams

    def _beam_key(self, candidate: Candidate):
        """Eviction/order key: banded score, then the lower frontier wins."""
        return (self._band(candidate.score), candidate.frontier, candidate.score)

    def get_diverse_top_k_beams(
        self,
        beams: List[Candidate],
        candidate: Candidate,
        ranked: Sequence[Tuple[Transformation, float]],
    ) -> List[Candidate]:
        """Algorithm 3: iterate clusters, drawing K/M beams from each."""
        transformations = [t for t, _ in ranked]
        score_by_transformation = {t: s for t, s in ranked}
        clusters = cluster_transformations(
            transformations, self.config.clusters, random_state=self.config.random_state
        )
        per_cluster = max(1, self.config.beam_size // max(len(clusters), 1))
        for cluster in clusters:
            cluster_ranked = [(t, score_by_transformation[t]) for t in cluster]
            beams = self.get_top_k_beams(beams, candidate, cluster_ranked, per_cluster)
        return beams

    def sync_cache_stats(self) -> None:
        """Fold cache/executor counters into :attr:`stats`.

        Incremental executors may be shared across searches (the
        standardizer reuses one so constraint verification resumes from
        prefixes the beam search already snapshotted), so prefix counters
        report the delta since this search started.
        """
        stats = self.stats
        stats.exec_cache_size = len(self._exec_cache)
        stats.exec_cache_hit_rate = self._exec_cache.hit_rate
        stats.statement_cache_size = len(self._statement_cache)
        stats.statement_cache_hit_rate = self._statement_cache.hit_rate
        if self._delta_score_s > 0:
            # verify_scoring timed both paths on identical proposals
            stats.get_steps_speedup = self._full_score_s / self._delta_score_s
        stats.n_exec_timeouts = self._direct_timeouts
        if self._executor is None:
            return
        current = self._executor.stats.as_dict()
        base = self._executor_baseline
        hits = current["prefix_hits"] - base.get("prefix_hits", 0.0)
        misses = current["prefix_misses"] - base.get("prefix_misses", 0.0)
        resumed = current["resumed_statements"] - base.get("resumed_statements", 0.0)
        stats.prefix_cache_hits = int(hits)
        stats.prefix_cache_misses = int(misses)
        stats.prefix_mean_resume_depth = resumed / hits if hits else 0.0
        stats.prefix_fallbacks = int(
            current["fallbacks"] - base.get("fallbacks", 0.0)
        )
        stats.n_exec_timeouts = self._direct_timeouts + int(
            current["timeouts"] - base.get("timeouts", 0.0)
        )

    # ----------------------------------------------------------------- search
    def search(self, statements: Sequence[Statement]) -> List[Candidate]:
        """Run the beam search and return candidates sorted by RE score.

        Besides the final beams, the result includes an *archive* of every
        candidate admitted to a beam at any iteration (capped at
        ``ARCHIVE_LIMIT`` best by score).  Constraint verification walks
        this list in score order, so when the most standard candidates
        violate a strict user-intent threshold, milder intermediate
        candidates are still available instead of falling straight back to
        the original.  The unmodified script is always a member.
        """
        initial = Candidate(
            statements=tuple(statements),
            applied=(),
            frontier=0,
            score=self.scorer.score_statements(list(statements)),
        )
        self._archive = {initial.source(): initial}
        beams = [initial]
        self.stats.max_beam_width = max(self.stats.max_beam_width, len(beams))
        for _ in range(self.config.seq):
            self.stats.n_iterations += 1
            frontier_beams = list(beams)
            for candidate in beams:
                ranked = self.get_steps(candidate)
                if not ranked:
                    continue
                if self.config.diversity:
                    frontier_beams = self.get_diverse_top_k_beams(
                        frontier_beams, candidate, ranked
                    )
                else:
                    frontier_beams = self.get_top_k_beams(
                        frontier_beams, candidate, ranked, self.config.beam_size
                    )
            frontier_beams.sort(key=self._beam_key)
            frontier_beams = frontier_beams[: max(self.config.beam_size, 1)]
            if [b.source() for b in frontier_beams] == [b.source() for b in beams]:
                break  # converged: no transformation improved any beam
            beams = frontier_beams

        candidates = sorted(self._archive.values(), key=lambda b: b.score)
        candidates = candidates[: self.ARCHIVE_LIMIT]
        if all(c.source() != initial.source() for c in candidates):
            candidates.append(initial)  # the guaranteed fallback
        self.sync_cache_stats()
        return candidates
