"""Transformation diversity via k-means clustering (Algorithm 3).

Top-ranked transformations tend to target the same atom, so plain beam
search explores a narrow slice of the space.  ClusterSteps() groups the
ranked transformations into M clusters over a hashed bag-of-tokens
embedding of each transformation, and the search then draws beams from
every cluster.

scikit-learn is unavailable offline, so the k-means here is a small,
deterministic (seeded) Lloyd's-algorithm implementation.
"""

from __future__ import annotations

import re
import zlib
from typing import List, Sequence

import numpy as np

from .transformations import Transformation

__all__ = ["kmeans", "transformation_features", "cluster_transformations"]

_TOKEN_RE = re.compile(r"[A-Za-z_]+|[<>=!+\-*/%&|^~]+")


def transformation_features(
    transformations: Sequence[Transformation], dim: int = 32
) -> np.ndarray:
    """Hashed bag-of-tokens embedding of each transformation.

    Tokens come from the atom signature plus the transformation kind, so
    e.g. every ``fillna`` add lands near every other ``fillna`` variant.
    """
    if dim < 2:
        raise ValueError(f"dim must be >= 2, got {dim}")
    X = np.zeros((len(transformations), dim))
    for row, t in enumerate(transformations):
        tokens = _TOKEN_RE.findall(t.signature) + [t.kind, t.gram]
        for token in tokens:
            # zlib.crc32 is stable across processes (Python's hash() is not)
            X[row, zlib.crc32(token.encode()) % dim] += 1.0
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return X / norms


def kmeans(
    X: np.ndarray, k: int, random_state: int = 0, n_iter: int = 25
) -> np.ndarray:
    """Deterministic Lloyd's k-means; returns a label per row."""
    n = X.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n == 0:
        return np.zeros(0, dtype=int)
    k = min(k, n)
    rng = np.random.default_rng(random_state)
    centers = X[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for _ in range(n_iter):
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(k):
            members = X[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


def cluster_transformations(
    ranked: Sequence[Transformation],
    n_clusters: int,
    random_state: int = 0,
) -> List[List[Transformation]]:
    """ClusterSteps(): split a ranked transformation list into M clusters.

    Within each cluster the input ranking (by RE score) is preserved, and
    clusters are ordered by their best-ranked member so the most promising
    cluster is explored first.
    """
    if not ranked:
        return []
    if n_clusters <= 1 or len(ranked) <= n_clusters:
        return [list(ranked)]
    X = transformation_features(ranked)
    labels = kmeans(X, n_clusters, random_state=random_state)
    clusters: dict[int, List[Transformation]] = {}
    for t, label in zip(ranked, labels):
        clusters.setdefault(int(label), []).append(t)
    # order clusters by the global rank of their best member
    first_rank = {
        label: min(ranked.index(t) for t in members)
        for label, members in clusters.items()
    }
    ordered = sorted(clusters.items(), key=lambda kv: first_rank[kv[0]])
    return [members for _, members in ordered]
