"""Search-framework configuration and the paper's Table 2 defaults."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LSConfig", "recommend_parameters"]

#: Table 2 thresholds: a corpus is "large" above 10 scripts and "diverse"
#: above 300 unique edges.
LARGE_CORPUS_SCRIPTS = 10
DIVERSE_CORPUS_EDGES = 300


@dataclass
class LSConfig:
    """Tunable parameters of the LucidScript search (Section 5.2).

    Attributes
    ----------
    seq:
        Maximum transformation-sequence length (the stopping criterion).
    beam_size:
        K — number of in-progress candidate scripts retained.
    diversity:
        Cluster candidate transformations (Algorithm 3) so beams explore
        different parts of the search space.
    diversity_clusters:
        M — number of k-means clusters; defaults to ``beam_size``.
    early_check:
        α — verify the execution constraint after every transformation
        (True) or only once sequences are complete (False).
    max_step_candidates:
        Cap on ranked next-step transformations returned by GetSteps().
    score_band:
        RE scores within this tolerance compare equal during ranking and
        beam eviction; ties break toward earlier script positions (lower
        frontiers), which preserves the monotone search's future options.
    sample_rows:
        Row cap applied when loading D_IN inside constraint checks; None
        disables sampling.
    operation_groups:
        When set, cluster the corpus's 1-gram atoms into this many
        semantic operation families and only propose each family's most
        frequent representative for 1-gram adds (the Section 6.5
        search-space reduction); None disables grouping.
    random_state:
        Seed for the diversity clustering and any sampling decisions.
    parallel_workers:
        Process-pool width for batched constraint checks.  1 (the
        default) keeps the fully serial, bit-identical execution order;
        larger values speculatively check candidate waves in parallel
        while still admitting in rank order, so results stay
        deterministic for a fixed seed.
    incremental_exec:
        Route CheckIfExecutes/VerifyConstraints through the
        prefix-resumable :class:`repro.sandbox.IncrementalExecutor`
        instead of cold re-execution from line 1.
    incremental_scoring:
        Score GetSteps proposals with the O(Δ) delta engine — the
        candidate's cached edge state plus sufficient-statistics KL
        updates (:meth:`repro.core.entropy.RelativeEntropyScorer
        .score_delta`) — instead of recounting the whole script's edges
        per proposal.  Bit-identical to the full recount by
        construction; on (the default) it only changes speed.
    verify_scoring:
        Debug mode: run the full recount alongside every delta score and
        raise :class:`repro.core.beam.ScoringMismatchError` on any
        divergence (exact comparison).  Also times both paths, surfacing
        the measured ratio as ``SearchStats.get_steps_speedup``.  Off by
        default — it exists to audit the delta engine, not for
        production.
    incremental_intent:
        Verify the user-intent constraint through the content-addressed
        :class:`repro.core.intent.PreparedIntent` engine — the original
        output's per-mode state is frozen once per search (and cached
        worker-side by fingerprint on the pool path), and each candidate
        check pays O(changed columns) via per-column content
        fingerprints, an exact disjoint-column Jaccard decomposition for
        ``mode='cells'``, and a whole-table short-circuit.  Bit-identical
        to the naive pairwise measures by construction; on (the default)
        it only changes speed.
    verify_intent:
        Debug mode: recompute every prepared intent delta through the
        naive cache-free path alongside and raise
        :class:`repro.core.intent.IntentMismatchError` on any float
        divergence (exact comparison).  Also times both paths, surfacing
        the measured ratio as ``SearchStats.intent_speedup``.  Off by
        default — it exists to audit the intent engine, not for
        production.
    snapshot_budget:
        LRU capacity of the incremental executor's namespace-snapshot
        store; 0 disables prefix resumption even when
        ``incremental_exec`` is on.
    exec_timeout_s:
        Wall-clock budget (seconds) for one candidate script inside
        CheckIfExecutes/VerifyConstraints.  A candidate that exceeds it
        fails the execution constraint (it is skipped and counted in
        ``SearchStats.breakdown()``, never fatal).  None — the default —
        disables the watchdog entirely, preserving the bit-identical
        serial path.
    statement_timeout_s:
        Wall-clock budget for each individual statement on the
        incremental execution path; tighter than ``exec_timeout_s`` when
        a single statement is the pathology.  None disables it.
    pool_respawn_limit:
        How many times one batched check may hard-kill and respawn a
        shard worker (hung or broken) before degrading to the serial
        loop.  0 degrades on the first engine fault.
    verify_parallel:
        Debug mode: re-run the serial VerifyAllConstraints walk alongside
        every speculative parallel verification and raise
        :class:`repro.sandbox.shards.ParallelMismatchError` if the sharded
        engine's winner diverges (and likewise audit batched exec-check
        verdicts against the serial loop where exercised by tests).  Off
        by default — it exists to audit the shard engine's bit-identical
        claim, not for production.
    shard_affinity:
        Route each candidate to the shard addressed by the hash of its
        prefix fingerprint (longest leading-line run shared with the
        wave's base script), so a shard's resident incremental executor
        sees the prefixes it has already snapshotted across waves.
        Placement is load-capped and deterministic either way; off sends
        every task to the least-loaded shard.  Affinity only changes
        which worker runs a task — never the result.
    worker_output_cache_limit:
        LRU bound on each shard worker's resident original-output table
        cache (distinct run fingerprints retained per worker).
    worker_intent_cache_limit:
        LRU bound on each shard worker's resident prepared-intent cache
        (distinct ``(run fingerprint, intent identity)`` pairs retained
        per worker).
    worker_source_cache_limit:
        Capacity of each shard worker's content-addressed source store
        (and of the parent's per-shard mirror of it).  Larger values let
        more candidates ship as ``ref``/O(delta) splices instead of full
        texts; the store holds script texts, so memory cost is modest.
    corpus_cache:
        Route corpus construction through the process-wide
        content-addressed warm cache (:mod:`repro.corpus.cache`): each
        unique corpus script is lemmatized and parsed at most once per
        process, and a repeated ``LucidScript`` construction over the
        same corpus sequence reuses the assembled index outright.
        Bit-identical to ``CorpusVocabulary.from_scripts`` by
        construction; on (the default) it only changes speed.
    verify_index:
        Debug mode: audit the corpus index backing this search against
        a from-scratch offline-phase rebuild at construction time and
        raise :class:`repro.corpus.IndexMismatchError` on any
        divergence (exact comparison, including successor tie order and
        relative-position float means).  Off by default — it exists to
        audit the corpus engine, not for production.
    retrieval_k:
        How many pool scripts ``top_k`` retrieval assembles into the
        working corpus when the system is constructed over a
        :class:`repro.corpus.RetrievalIndex` (the retrieve-then-compute
        service path).  The working corpus is a deterministic function
        of (pool, query, k) — ties break on content address — and the
        search over it is bit-identical to a search over the same
        scripts curated by hand.  Ignored when the corpus is given
        directly as scripts, an index, or a vocabulary.
    verify_retrieval:
        Debug mode: cross-check every LSH top-k retrieval against
        brute-force signature similarity over the whole pool and raise
        :class:`repro.corpus.RetrievalMismatchError` on any divergence
        (exact comparison, including scores and tie order).  O(pool)
        per query — it exists to audit the retrieval engine, not for
        production.
    verify_kernels:
        Debug mode: shadow-run the naive row-at-a-time reference
        implementation alongside every minipandas columnar kernel
        (``fillna``/``dropna``/``duplicated``/``take``/``get_dummies``/
        groupby aggregation) touched during ``standardize()`` and raise
        :class:`repro.minipandas.KernelMismatchError` on any divergence
        (bit-exact comparison, including missingness flavour and cell
        types).  Scoped to the serial in-process path — shard workers
        run unaudited.  Off by default — it exists to audit the kernel
        engine, not for production.
    dialect:
        Name of the registered :class:`~repro.dialects.ApiDialect` this
        search standardizes against — the recognized call surface,
        sandbox shim, and output convention.  ``"pandas"`` (the default)
        is bit-identical to the pre-dialect pipeline; corpus and input
        scripts must all belong to this dialect.  Unknown names raise
        :class:`~repro.dialects.UnknownDialectError` listing what is
        registered.
    """

    seq: int = 16
    beam_size: int = 3
    diversity: bool = True
    diversity_clusters: Optional[int] = None
    early_check: bool = True
    max_step_candidates: int = 48
    score_band: float = 0.02
    sample_rows: Optional[int] = 500
    operation_groups: Optional[int] = None
    random_state: int = 0
    parallel_workers: int = 1
    incremental_exec: bool = True
    incremental_scoring: bool = True
    verify_scoring: bool = False
    incremental_intent: bool = True
    verify_intent: bool = False
    snapshot_budget: int = 64
    exec_timeout_s: Optional[float] = None
    statement_timeout_s: Optional[float] = None
    pool_respawn_limit: int = 1
    verify_parallel: bool = False
    shard_affinity: bool = True
    worker_output_cache_limit: int = 4
    worker_intent_cache_limit: int = 4
    worker_source_cache_limit: int = 256
    corpus_cache: bool = True
    verify_index: bool = False
    retrieval_k: int = 20
    verify_retrieval: bool = False
    verify_kernels: bool = False
    dialect: str = "pandas"

    def __post_init__(self):
        from ..dialects import get_dialect

        get_dialect(self.dialect)  # unknown names fail fast, listing options
        if self.seq < 1:
            raise ValueError(f"seq must be >= 1, got {self.seq}")
        if self.beam_size < 1:
            raise ValueError(f"beam_size must be >= 1, got {self.beam_size}")
        if self.diversity_clusters is not None and self.diversity_clusters < 1:
            raise ValueError("diversity_clusters must be >= 1 when set")
        if self.max_step_candidates < 1:
            raise ValueError("max_step_candidates must be >= 1")
        if self.score_band < 0:
            raise ValueError("score_band must be non-negative")
        if self.operation_groups is not None and self.operation_groups < 1:
            raise ValueError("operation_groups must be >= 1 when set")
        if self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        if self.snapshot_budget < 0:
            raise ValueError(
                f"snapshot_budget must be >= 0, got {self.snapshot_budget}"
            )
        if self.exec_timeout_s is not None and self.exec_timeout_s <= 0:
            raise ValueError(
                f"exec_timeout_s must be positive when set, got {self.exec_timeout_s}"
            )
        if self.statement_timeout_s is not None and self.statement_timeout_s <= 0:
            raise ValueError(
                "statement_timeout_s must be positive when set, "
                f"got {self.statement_timeout_s}"
            )
        if self.pool_respawn_limit < 0:
            raise ValueError(
                f"pool_respawn_limit must be >= 0, got {self.pool_respawn_limit}"
            )
        if self.worker_output_cache_limit < 1:
            raise ValueError(
                "worker_output_cache_limit must be >= 1, "
                f"got {self.worker_output_cache_limit}"
            )
        if self.worker_intent_cache_limit < 1:
            raise ValueError(
                "worker_intent_cache_limit must be >= 1, "
                f"got {self.worker_intent_cache_limit}"
            )
        if self.retrieval_k < 1:
            raise ValueError(f"retrieval_k must be >= 1, got {self.retrieval_k}")
        if self.worker_source_cache_limit < 1:
            raise ValueError(
                "worker_source_cache_limit must be >= 1, "
                f"got {self.worker_source_cache_limit}"
            )

    @property
    def clusters(self) -> int:
        return self.diversity_clusters or self.beam_size


def recommend_parameters(n_scripts: int, uniq_edges: int) -> LSConfig:
    """Reproduce Table 2: default (seq, K) from corpus size and diversity.

    ============  ==================  ====  ===
    corpus size   edge diversity      seq   K
    ============  ==================  ====  ===
    > 10 scripts  > 300 uniq. edges    16    3
    > 10 scripts  ≤ 300 uniq. edges    16    1
    ≤ 10 scripts  > 300 uniq. edges     8    3
    ≤ 10 scripts  ≤ 300 uniq. edges     8    1
    ============  ==================  ====  ===
    """
    if n_scripts < 0 or uniq_edges < 0:
        raise ValueError("corpus statistics must be non-negative")
    seq = 16 if n_scripts > LARGE_CORPUS_SCRIPTS else 8
    beam = 3 if uniq_edges > DIVERSE_CORPUS_EDGES else 1
    return LSConfig(seq=seq, beam_size=beam)
