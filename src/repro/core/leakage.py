"""Target-leakage detection via standardization (Section 6.6).

Target leakage — features derived from the prediction target — is an
out-of-the-ordinary data-preparation step.  Because leakage snippets never
appear in the corpus, their data-flow edges are heavily penalized by the
relative-entropy objective, and the search removes them.  A leakage
snippet counts as *detected* when the standardized output script no longer
contains it and the output satisfies all constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang import lemmatize
from .standardizer import LucidScript, StandardizationError, StandardizationResult

__all__ = ["LeakageDetection", "detect_target_leakage"]


@dataclass
class LeakageDetection:
    """Outcome of one leakage-detection run."""

    detected: bool
    removed_ground_truth: List[str]
    missed_ground_truth: List[str]
    result: Optional[StandardizationResult]

    @property
    def recall(self) -> float:
        total = len(self.removed_ground_truth) + len(self.missed_ground_truth)
        if total == 0:
            return 1.0
        return len(self.removed_ground_truth) / total


def _lemmatized_lines(snippet: str) -> List[str]:
    return [line for line in lemmatize(snippet).splitlines() if line]


def detect_target_leakage(
    system: LucidScript,
    script: str,
    injected_snippets: Sequence[str],
) -> LeakageDetection:
    """Standardize *script* and check whether the injected leakage vanished.

    Parameters
    ----------
    system:
        A configured :class:`LucidScript` whose corpus is leakage-free.
    script:
        The (leakage-injected) input script.
    injected_snippets:
        The ground-truth leakage code snippets (each possibly multi-line).
    """
    ground_truth: List[str] = []
    for snippet in injected_snippets:
        ground_truth.extend(_lemmatized_lines(snippet))
    if not ground_truth:
        raise ValueError("injected_snippets must contain at least one statement")

    try:
        result = system.standardize(script)
    except StandardizationError:
        return LeakageDetection(
            detected=False,
            removed_ground_truth=[],
            missed_ground_truth=list(ground_truth),
            result=None,
        )

    output_lines = set(result.output_script.splitlines())
    removed = [line for line in ground_truth if line not in output_lines]
    missed = [line for line in ground_truth if line in output_lines]
    detected = bool(removed) and not missed and result.intent_satisfied
    return LeakageDetection(
        detected=detected,
        removed_ground_truth=removed,
        missed_ground_truth=missed,
        result=result,
    )
