"""Semantic operation grouping (the paper's Section 6.5 future work).

"Future work will focus on reducing the search space, possibly by
grouping semantically similar operations."  This module clusters the
corpus's 1-gram atoms by a token-level embedding of their signatures —
``fillna(df,@)`` variants land together, subscript filters land together
— and exposes one *representative* (the most frequent member) per group.
When enabled, transformation enumeration only proposes group
representatives for 1-gram adds, shrinking the candidate set while
keeping one exemplar of every operation family reachable.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..lang.vocabulary import CorpusVocabulary
from .diversity import kmeans

__all__ = ["OperationGroups", "group_operations"]

_TOKEN_RE = re.compile(r"[A-Za-z_]+|[<>=!+\-*/%&|^~]+")


def _signature_features(signatures: Sequence[str], dim: int = 48) -> np.ndarray:
    X = np.zeros((len(signatures), dim))
    for row, signature in enumerate(signatures):
        # weight the operation name (prefix before '(') double: grouping is
        # about *what operation* an atom performs, not its operands
        name = signature.split("(", 1)[0]
        tokens = _TOKEN_RE.findall(signature) + [name, name]
        for token in tokens:
            X[row, zlib.crc32(token.encode()) % dim] += 1.0
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return X / norms


@dataclass
class OperationGroups:
    """A clustering of 1-gram atom signatures into operation families."""

    group_of: Dict[str, int]
    representatives: Dict[int, str]

    @property
    def n_groups(self) -> int:
        return len(self.representatives)

    def representative_for(self, signature: str) -> Optional[str]:
        group = self.group_of.get(signature)
        if group is None:
            return None
        return self.representatives[group]

    def is_representative(self, signature: str) -> bool:
        group = self.group_of.get(signature)
        return group is not None and self.representatives[group] == signature

    def members(self, group: int) -> List[str]:
        return [sig for sig, g in self.group_of.items() if g == group]


def group_operations(
    vocabulary: CorpusVocabulary,
    n_groups: int,
    random_state: int = 0,
) -> OperationGroups:
    """Cluster the vocabulary's 1-gram atoms into *n_groups* families.

    The representative of each group is its most frequent member, so the
    reduced search space proposes the most standard exemplar of every
    operation family.
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be >= 1, got {n_groups}")
    signatures = [sig for sig, _ in vocabulary.onegram_counts.most_common()]
    if not signatures:
        return OperationGroups(group_of={}, representatives={})
    labels = kmeans(
        _signature_features(signatures), min(n_groups, len(signatures)),
        random_state=random_state,
    )
    group_of = {sig: int(label) for sig, label in zip(signatures, labels)}
    representatives: Dict[int, str] = {}
    for sig in signatures:  # most_common order: first seen = most frequent
        group = group_of[sig]
        representatives.setdefault(group, sig)
    return OperationGroups(group_of=group_of, representatives=representatives)
