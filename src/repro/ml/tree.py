"""A CART-style decision tree classifier (Gini impurity, binary splits)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    prediction: Any
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeClassifier:
    """Deterministic binary-split decision tree over numeric features."""

    def __init__(self, max_depth: int = 5, min_samples_split: int = 10):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(list(y))
        if len(y) != X.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._root = self._grow(X, y, depth=0)
        return self

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return np.array([self._predict_one(row) for row in X])

    # ------------------------------------------------------------------ internals
    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        prediction = self._majority(y)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or len(np.unique(y)) == 1
        ):
            return _Node(prediction=prediction)

        feature, threshold = self._best_split(X, y)
        if feature is None:
            return _Node(prediction=prediction)

        mask = X[:, feature] <= threshold
        if not mask.any() or mask.all():
            return _Node(prediction=prediction)
        return _Node(
            prediction=prediction,
            feature=feature,
            threshold=threshold,
            left=self._grow(X[mask], y[mask], depth + 1),
            right=self._grow(X[~mask], y[~mask], depth + 1),
        )

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        best_gain, best_feature, best_threshold = 0.0, None, None
        parent_impurity = _gini(y)
        n = len(y)
        for feature in range(X.shape[1]):
            column = X[:, feature]
            candidates = np.unique(np.quantile(column, np.linspace(0.1, 0.9, 9)))
            for threshold in candidates:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == n:
                    continue
                gain = parent_impurity - (
                    n_left / n * _gini(y[mask]) + (n - n_left) / n * _gini(y[~mask])
                )
                if gain > best_gain + 1e-12:
                    best_gain, best_feature, best_threshold = gain, feature, float(threshold)
        return best_feature, best_threshold

    @staticmethod
    def _majority(y: np.ndarray):
        values, counts = np.unique(y, return_counts=True)
        return values[int(np.argmax(counts))]

    def _predict_one(self, row: np.ndarray):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction


def _gini(y: np.ndarray) -> float:
    if len(y) == 0:
        return 0.0
    _, counts = np.unique(y, return_counts=True)
    p = counts / counts.sum()
    return float(1.0 - np.sum(p * p))
