"""Linear models trained with deterministic full-batch gradient descent.

These stand in for scikit-learn (unavailable offline) inside the
downstream-model user-intent measure Δ_M.  Determinism matters: LucidScript
compares accuracies between the user's script output and each candidate
script output, so run-to-run noise would corrupt the constraint check.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["LogisticRegression", "LinearRegression"]


def _as_matrix(X) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {arr.shape}")
    return arr


def _standardize(X: np.ndarray, mean: np.ndarray, scale: np.ndarray) -> np.ndarray:
    return (X - mean) / scale


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Features are standardized internally so the fixed learning rate behaves
    across datasets with very different scales (ages vs. sale prices).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iter: int = 300,
        l2: float = 1e-3,
    ):
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.classes_: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, X, y) -> "LogisticRegression":
        X = _as_matrix(X)
        y = np.asarray(list(y))
        if len(y) != X.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        self.classes_ = np.unique(y)
        if len(self.classes_) == 1:
            # degenerate but legal: always predict the single class
            self.coef_ = np.zeros(X.shape[1])
            self.intercept_ = np.inf if self.classes_[0] == self.classes_[-1] else 0.0
            self._mean = np.zeros(X.shape[1])
            self._scale = np.ones(X.shape[1])
            return self
        if len(self.classes_) != 2:
            raise ValueError(
                f"LogisticRegression is binary; got {len(self.classes_)} classes"
            )
        target = (y == self.classes_[1]).astype(float)

        self._mean = X.mean(axis=0)
        self._scale = X.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        Z = _standardize(X, self._mean, self._scale)

        n, d = Z.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            logits = Z @ w + b
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -35, 35)))
            error = probs - target
            grad_w = Z.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.coef_ = w
        self.intercept_ = b
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        Z = _standardize(_as_matrix(X), self._mean, self._scale)
        logits = Z @ self.coef_ + self.intercept_
        p1 = 1.0 / (1.0 + np.exp(-np.clip(logits, -35, 35)))
        return np.column_stack([1 - p1, p1])

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        if len(self.classes_) == 1:
            return np.full(_as_matrix(X).shape[0], self.classes_[0])
        proba = self.predict_proba(X)[:, 1]
        return np.where(proba >= 0.5, self.classes_[1], self.classes_[0])

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")


class LinearRegression:
    """Ordinary least squares via the normal equations (ridge-stabilized)."""

    def __init__(self, l2: float = 1e-6):
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = _as_matrix(X)
        y = np.asarray(list(y), dtype=float)
        if len(y) != X.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        n, d = X.shape
        Xb = np.column_stack([np.ones(n), X])
        gram = Xb.T @ Xb + self.l2 * np.eye(d + 1)
        theta = np.linalg.solve(gram, Xb.T @ y)
        self.intercept_ = float(theta[0])
        self.coef_ = theta[1:]
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return _as_matrix(X) @ self.coef_ + self.intercept_
