"""Deterministic dataset splitting for downstream-model evaluation."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["train_test_split"]


def train_test_split(
    X,
    y,
    test_size: float = 0.25,
    random_state: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split arrays into train/test partitions.

    The default ``random_state=0`` is intentional: LucidScript's Δ_M measure
    compares two accuracies and needs the split to be identical across the
    two evaluations.
    """
    X = np.asarray(X)
    y = np.asarray(list(y))
    if X.shape[0] != len(y):
        raise ValueError("X and y have different numbers of rows")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 rows to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    n_test = max(1, int(round(n * test_size)))
    n_test = min(n_test, n - 1)
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
