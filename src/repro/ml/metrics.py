"""Evaluation metrics for the downstream-model substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["accuracy_score", "f1_score", "mean_squared_error", "rmse", "r2_score"]


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = np.asarray(list(y_true)), np.asarray(list(y_pred))
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("accuracy is undefined on empty inputs")
    return float(np.mean(y_true == y_pred))


def f1_score(y_true: Sequence, y_pred: Sequence, positive=1) -> float:
    """Binary F1 with the given positive label."""
    y_true, y_pred = np.asarray(list(y_true)), np.asarray(list(y_pred))
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def mean_squared_error(y_true: Sequence, y_pred: Sequence) -> float:
    y_true = np.asarray(list(y_true), dtype=float)
    y_pred = np.asarray(list(y_pred), dtype=float)
    if y_true.size == 0:
        raise ValueError("MSE is undefined on empty inputs")
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true: Sequence, y_pred: Sequence) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Coefficient of determination; 0 when the target has zero variance."""
    y_true = np.asarray(list(y_true), dtype=float)
    y_pred = np.asarray(list(y_pred), dtype=float)
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0:
        return 0.0
    residual = float(np.sum((y_true - y_pred) ** 2))
    return 1.0 - residual / total
