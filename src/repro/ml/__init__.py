"""repro.ml — a from-scratch model substrate for the Δ_M intent measure.

Stands in for scikit-learn (unavailable offline): deterministic linear and
tree models plus the :func:`evaluate_downstream` oracle that scores a
script's emitted dataset by training a downstream predictor on it.
"""

from .linear import LinearRegression, LogisticRegression
from .metrics import accuracy_score, f1_score, mean_squared_error, r2_score, rmse
from .model_selection import train_test_split
from .pipeline import (
    DownstreamEvaluationError,
    DownstreamResult,
    evaluate_downstream,
    prepare_features,
)
from .tree import DecisionTreeClassifier

__all__ = [
    "DecisionTreeClassifier",
    "DownstreamEvaluationError",
    "DownstreamResult",
    "LinearRegression",
    "LogisticRegression",
    "accuracy_score",
    "evaluate_downstream",
    "f1_score",
    "mean_squared_error",
    "prepare_features",
    "r2_score",
    "rmse",
    "train_test_split",
]
