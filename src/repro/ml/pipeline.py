"""End-to-end downstream-model evaluation over a minipandas DataFrame.

This is the quality oracle behind the paper's Δ_M user-intent measure:
given the dataset a script emitted and the prediction target, return a
single accuracy-like score in [0, 1].  Classification targets use holdout
accuracy; regression targets use clipped R² so both task types share a
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..minipandas import DataFrame, Series, is_missing
from ..minipandas.ops import get_dummies
from .linear import LinearRegression, LogisticRegression
from .metrics import accuracy_score, r2_score
from .model_selection import train_test_split
from .tree import DecisionTreeClassifier

__all__ = [
    "DownstreamEvaluationError",
    "DownstreamResult",
    "evaluate_downstream",
    "prepare_features",
]

#: Object columns with more than this many categories are dropped rather
#: than dummy-encoded (IDs, free text) — matching common notebook practice.
_MAX_DUMMY_CARDINALITY = 20

#: Rows beyond this cap are deterministically subsampled before training.
_MAX_TRAIN_ROWS = 2000


class DownstreamEvaluationError(ValueError):
    """The emitted dataset cannot support the downstream task."""


def prepare_features(frame: DataFrame, target: str) -> tuple[np.ndarray, list]:
    """Build a dense numeric feature matrix from everything except *target*.

    Object columns are dummy-encoded when low-cardinality and dropped
    otherwise; missing values are mean-imputed; constant columns survive
    (models tolerate them).  Returns (matrix, target_values).
    """
    if target not in frame.columns:
        raise DownstreamEvaluationError(
            f"target column {target!r} is missing from the script output"
        )
    y = [v for v in frame[target]]
    keep_rows = [pos for pos, v in enumerate(y) if not is_missing(v)]
    if len(keep_rows) < 10:
        raise DownstreamEvaluationError(
            f"only {len(keep_rows)} rows with a non-missing target remain"
        )
    frame = frame.take(keep_rows)
    y = [y[pos] for pos in keep_rows]

    features = frame.drop(target, axis=1)
    numeric_cols, dummy_cols, drop_cols = [], [], []
    for col in features.columns:
        dtype = features[col].dtype
        if dtype in ("int64", "float64", "bool"):
            numeric_cols.append(col)
        elif features[col].nunique() <= _MAX_DUMMY_CARDINALITY:
            dummy_cols.append(col)
        else:
            drop_cols.append(col)

    encoded = features[numeric_cols + dummy_cols]
    if dummy_cols:
        encoded = get_dummies(encoded, columns=dummy_cols)
    if not encoded.columns:
        raise DownstreamEvaluationError("no usable feature columns remain")

    columns = []
    for col in encoded.columns:
        raw = encoded[col].tolist()
        values = np.array(
            [np.nan if is_missing(v) else float(v) for v in raw], dtype=float
        )
        if np.isnan(values).all():
            continue
        mean = float(np.nanmean(values))
        values = np.where(np.isnan(values), mean, values)
        columns.append(values)
    if not columns:
        raise DownstreamEvaluationError("all feature columns are empty")
    return np.column_stack(columns), y


def _infer_task(y: list) -> str:
    distinct = {v for v in y}
    if len(distinct) <= 2:
        return "classification"
    if all(isinstance(v, str) for v in distinct):
        raise DownstreamEvaluationError(
            f"multiclass string target with {len(distinct)} classes is unsupported"
        )
    if len(distinct) <= 10 and all(float(v).is_integer() for v in distinct):
        return "classification" if len(distinct) <= 2 else "regression"
    return "regression"


@dataclass
class DownstreamResult:
    """Outcome of one downstream evaluation."""

    accuracy: float
    task: str
    n_rows: int
    n_features: int


def evaluate_downstream(
    frame: DataFrame,
    target: str,
    task: Optional[str] = None,
    model: str = "logistic",
    random_state: int = 0,
) -> DownstreamResult:
    """Train a model on *frame* and return its holdout score.

    Parameters
    ----------
    frame:
        Dataset emitted by a data-preparation script.
    target:
        Prediction target column name (the competition's label).
    task:
        'classification' or 'regression'; inferred from the target when None.
    model:
        'logistic' or 'tree' for classification; regression always uses OLS.
    random_state:
        Seed for the train/test split and row subsampling (keep it fixed when
        comparing two script outputs).
    """
    X, y = prepare_features(frame, target)
    resolved_task = task or _infer_task(y)

    if X.shape[0] > _MAX_TRAIN_ROWS:
        rng = np.random.default_rng(random_state)
        pick = np.sort(rng.choice(X.shape[0], size=_MAX_TRAIN_ROWS, replace=False))
        X = X[pick]
        y = [y[i] for i in pick]

    if resolved_task == "classification":
        labels = np.array(y)
        X_train, X_test, y_train, y_test = train_test_split(
            X, labels, test_size=0.25, random_state=random_state
        )
        if len(np.unique(y_train)) < 2:
            # degenerate split: score the majority-class predictor
            majority = y_train[0]
            return DownstreamResult(
                accuracy=accuracy_score(y_test, np.full(len(y_test), majority)),
                task=resolved_task,
                n_rows=X.shape[0],
                n_features=X.shape[1],
            )
        if model == "tree":
            clf = DecisionTreeClassifier(max_depth=5)
        else:
            clf = LogisticRegression()
        clf.fit(X_train, y_train)
        score = accuracy_score(y_test, clf.predict(X_test))
    elif resolved_task == "regression":
        values = np.array([float(v) for v in y])
        X_train, X_test, y_train, y_test = train_test_split(
            X, values, test_size=0.25, random_state=random_state
        )
        reg = LinearRegression()
        reg.fit(X_train, y_train)
        score = float(np.clip(r2_score(y_test, reg.predict(X_test)), 0.0, 1.0))
    else:
        raise ValueError(f"unknown task: {resolved_task!r}")

    return DownstreamResult(
        accuracy=score, task=resolved_task, n_rows=X.shape[0], n_features=X.shape[1]
    )
