"""Reproduce the Table 4 case study: RE vs. user-intent on Titanic.

The paper's metric-validation case study: an input script that merely
loads the data, and two increasingly standard candidate outputs — s1 adds
the conventional target split, s2 additionally imputes Age/Embarked.  RE
should drop monotonically (more standard) while both intent measures stay
within the defaults (Δ_J ≥ 0.9, Δ_M ≤ 1%).

Run:  python examples/titanic_case_study.py
"""

import tempfile

from repro import build_competition
from repro.core import ModelPerformanceIntent, TableJaccardIntent
from repro.core.entropy import RelativeEntropyScorer
from repro.harness import render_table
from repro.lang import CorpusVocabulary, parse_script
from repro.sandbox import run_script

S_U = (
    "import pandas as pd\n"
    "import numpy as np\n"
    "df = pd.read_csv('train.csv')"
)

S_1 = S_U + (
    "\ny = df['Survived']"
    "\nX = df.drop('Survived', axis=1)"
)

S_2 = (
    "import pandas as pd\n"
    "import numpy as np\n"
    "df = pd.read_csv('train.csv')\n"
    "df['Age'] = df['Age'].fillna(df['Age'].mean())\n"
    "df['Embarked'] = df['Embarked'].fillna('S')\n"
    "y = df['Survived']\n"
    "X = df.drop('Survived', axis=1)"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        print("building the Titanic competition...")
        competition = build_competition("titanic", root, seed=0, n_scripts=30)
        scorer = RelativeEntropyScorer(
            CorpusVocabulary.from_scripts(competition.scripts)
        )
        jaccard = TableJaccardIntent(tau=0.9)
        model = ModelPerformanceIntent(
            target=competition.target, tau=1.0, task=competition.task
        )

        baseline_output = run_script(
            S_U, data_dir=competition.data_dir, sample_rows=400
        ).output

        rows = []
        for label, script in [("s_u", S_U), ("s_1", S_1), ("s_2", S_2)]:
            re_score = scorer.score_dag(parse_script(script))
            output = run_script(
                script, data_dir=competition.data_dir, sample_rows=400
            ).output
            delta_j = jaccard.delta(baseline_output, output)
            delta_m = model.delta(baseline_output, output)
            rows.append(
                [label, f"{re_score:.2f}", f"{delta_j:.2f}", f"{delta_m:.1f}%"]
            )

        print()
        print(
            render_table(
                ["script", "RE", "delta_J", "delta_M"],
                rows,
                title="Table 4 case study (paper: RE 3.02 -> 2.49 -> 1.37)",
            )
        )
        print(
            "\nRE decreases as conventional steps are added, while both "
            "intent measures stay near identity — the paper's claim that "
            "the metric tracks meaningful standardization."
        )


if __name__ == "__main__":
    main()
