import tablereport as tr
blk = tr.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.dedupe_cells()
blk = blk.drop_unplaced()
report = blk.timing_report()
