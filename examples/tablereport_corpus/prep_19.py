import tablereport as tr
top = tr.load_design('design.csv')
top = top.fill_missing_caps()
top = top.drop_high_fanout(12)
top = top.drop_unplaced()
top = top.dedupe_cells()
rpt = top.timing_report()
