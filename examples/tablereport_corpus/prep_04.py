import tablereport as tr
blk = tr.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.drop_high_fanout(12)
blk = blk.dedupe_cells()
blk = blk.drop_unplaced()
timing = blk.timing_report()
