import tablereport
chip = tablereport.load_design('design.csv')
chip = chip.fill_missing_caps()
chip = chip.keep_layer('m1')
chip = chip.drop_unplaced()
chip = chip.dedupe_cells()
report = chip.timing_report()
