import tablereport as tr
chip = tr.load_design('design.csv')
chip = chip.fill_missing_caps()
chip = chip.drop_unplaced()
chip = chip.dedupe_cells()
timing = chip.timing_report()
