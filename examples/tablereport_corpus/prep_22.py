import tablereport as tr
layout = tr.load_design('design.csv')
layout = layout.fill_missing_caps()
layout = layout.drop_unplaced()
layout = layout.dedupe_cells()
report = layout.timing_report()
