import tablereport as tr
blk = tr.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.drop_unplaced()
blk = blk.keep_layer('m2')
blk = blk.dedupe_cells()
rpt = blk.timing_report()
