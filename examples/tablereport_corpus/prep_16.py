import tablereport
layout = tablereport.load_design('design.csv')
layout = layout.fill_missing_caps()
layout = layout.prune_slack(0.25)
layout = layout.drop_unplaced()
layout = layout.dedupe_cells()
report = layout.timing_report()
