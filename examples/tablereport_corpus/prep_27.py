import tablereport as tr
design = tr.load_design('design.csv')
design = design.fill_missing_caps()
design = design.drop_unplaced()
design = design.drop_high_fanout(8)
design = design.dedupe_cells()
report = design.timing_report()
