import tablereport as tr
design = tr.load_design('design.csv')
design = design.fill_missing_caps()
design = design.keep_layer('m2')
design = design.dedupe_cells()
design = design.drop_unplaced()
report = design.timing_report()
