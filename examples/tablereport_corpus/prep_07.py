import tablereport as tr
d = tr.load_design('design.csv')
d = d.fill_missing_caps()
d = d.drop_unplaced()
d = d.dedupe_cells()
rpt = d.timing_report()
