import tablereport as tr
chip = tr.load_design('design.csv')
chip = chip.fill_missing_caps()
chip = chip.keep_layer('m2')
chip = chip.dedupe_cells()
chip = chip.drop_unplaced()
report = chip.timing_report()
