import tablereport as tr
blk = tr.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.drop_unplaced()
blk = blk.prune_slack(0.25)
blk = blk.dedupe_cells()
report = blk.timing_report()
