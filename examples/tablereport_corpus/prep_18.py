import tablereport as tr
design = tr.load_design('design.csv')
design = design.fill_missing_caps()
design = design.drop_unplaced()
design = design.dedupe_cells()
report = design.timing_report()
