import tablereport as tr
blk = tr.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.drop_unplaced()
blk = blk.dedupe_cells()
report = blk.timing_report()
