import tablereport
top = tablereport.load_design('design.csv')
top = top.fill_missing_caps()
top = top.drop_unplaced()
top = top.dedupe_cells()
report = top.timing_report()
