import tablereport
blk = tablereport.load_design('design.csv')
blk = blk.fill_missing_caps()
blk = blk.drop_unplaced()
blk = blk.dedupe_cells()
timing = blk.timing_report()
