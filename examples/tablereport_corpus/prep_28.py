import tablereport as tr
layout = tr.load_design('design.csv')
layout = layout.fill_missing_caps()
layout = layout.drop_unplaced()
layout = layout.drop_high_fanout(12)
layout = layout.dedupe_cells()
report = layout.timing_report()
