import tablereport as tr
die = tr.load_design('design.csv')
die = die.fill_missing_caps()
die = die.drop_unplaced()
die = die.dedupe_cells()
timing = die.timing_report()
