import tablereport as tr
d = tr.load_design('design.csv')
d = d.fill_missing_caps()
d = d.prune_slack(0.0)
d = d.drop_unplaced()
d = d.dedupe_cells()
report = d.timing_report()
