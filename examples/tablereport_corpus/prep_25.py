import tablereport as tr
die = tr.load_design('design.csv')
die = die.fill_missing_caps()
die = die.drop_unplaced()
die = die.keep_layer('m2')
die = die.dedupe_cells()
report = die.timing_report()
