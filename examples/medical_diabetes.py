"""Standardize scripts against a full synthetic Medical competition.

Builds the Medical (Pima diabetes) workload — dataset plus a
corpus of executable peer scripts — then standardizes one held-out user
script under both user-intent measures the paper supports: table Jaccard
(τ_J) and downstream model performance (τ_M).

Run:  python examples/medical_diabetes.py
"""

import tempfile

from repro import LSConfig, LucidScript, ModelPerformanceIntent, TableJaccardIntent
from repro import build_competition, recommend_parameters
from repro.lang import CorpusVocabulary


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        print("building the Medical competition (dataset + script corpus)...")
        competition = build_competition("medical", root, seed=0, n_scripts=20)
        user_script, corpus = next(competition.leave_one_out())

        stats = CorpusVocabulary.from_scripts(corpus).stats()
        print(f"corpus: {stats.n_scripts} scripts, "
              f"{stats.uniq_onegrams} unique 1-grams, {stats.uniq_edges} unique edges")

        # Table 2: pick (seq, K) from the corpus properties.
        config = recommend_parameters(stats.n_scripts, stats.uniq_edges)
        config.sample_rows = 200
        print(f"Table 2 parameters: seq={config.seq}, K={config.beam_size}\n")

        print("== user script ==")
        print(user_script)

        for label, intent in [
            ("table Jaccard, tau_J = 0.9", TableJaccardIntent(tau=0.9)),
            (
                "model performance, tau_M = 1%",
                ModelPerformanceIntent(target=competition.target, tau=1.0,
                                       task=competition.task),
            ),
        ]:
            system = LucidScript(
                corpus, data_dir=competition.data_dir, intent=intent, config=config
            )
            result = system.standardize(user_script)
            print(f"\n== standardized under {label} ==")
            print(result.output_script)
            print(result.summary())


if __name__ == "__main__":
    main()
