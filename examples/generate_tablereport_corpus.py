#!/usr/bin/env python
"""Regenerate the committed tablereport example corpus.

Writes ``examples/tablereport_corpus/``: one deterministic ``design.csv``
plus ~30 stylistically varied preparation scripts in the ``tablereport``
dialect (see ``repro.dialects.tablereport``).  The generator is a pure
LCG, so re-running this script always reproduces the committed files
byte-for-byte.

Usage::

    PYTHONPATH=src python examples/generate_tablereport_corpus.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dialects.tablereport_corpus import write_corpus  # noqa: E402


def main() -> int:
    directory = os.path.join(os.path.dirname(__file__), "tablereport_corpus")
    paths = write_corpus(directory)
    print(f"wrote {len(paths)} files -> {directory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
