"""Detect injected target leakage via standardization (Section 6.6).

Takes a clean Medical competition script, injects a leakage snippet from
the paper's Figure 8 family (a noisy copy of the target column), then
standardizes it.  Because the leakage steps never appear in the corpus,
their data-flow edges are heavily penalized by the RE objective and the
search deletes them — detection falls out of standardization for free.

Run:  python examples/leakage_detection.py
"""

import tempfile

import numpy as np

from repro import LSConfig, LucidScript, TableJaccardIntent, detect_target_leakage
from repro import build_competition
from repro.workloads import inject_target_leakage


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        print("building the Medical competition...")
        competition = build_competition("medical", root, seed=0, n_scripts=20)
        rng = np.random.default_rng(42)

        clean_script = next(
            s for s in competition.scripts if f"'{competition.target}'" in s
        )
        injected, snippets = inject_target_leakage(
            clean_script, competition.target, rng
        )

        print("== injected script (leakage marked) ==")
        snippet_lines = {line for s in snippets for line in s.splitlines()}
        for line in injected.splitlines():
            marker = "  <-- LEAKAGE" if line in snippet_lines else ""
            print(f"  {line}{marker}")

        system = LucidScript(
            [s for s in competition.scripts if s != clean_script],
            data_dir=competition.data_dir,
            intent=TableJaccardIntent(tau=0.7),
            config=LSConfig(seq=8, beam_size=3, sample_rows=200),
        )
        detection = detect_target_leakage(system, injected, snippets)

        print("\n== standardized output ==")
        print(detection.result.output_script)
        print(f"\nleakage detected: {detection.detected}")
        print(f"ground-truth lines removed: {detection.removed_ground_truth}")
        if detection.missed_ground_truth:
            print(f"missed: {detection.missed_ground_truth}")
        print(f"recall: {detection.recall:.2f}")


if __name__ == "__main__":
    main()
