"""Explore the intent-vs-standardness trade-off (Section 8 extension).

Sweeps the table-Jaccard threshold tau_J and reports, per threshold, how
much standardization was achieved and how much of the original intent was
preserved — then prints the Pareto-efficient frontier the paper proposes
as future work, with per-transformation explanations for the most
aggressive frontier point.

Run:  python examples/pareto_exploration.py
"""

import tempfile

from repro import LSConfig, build_competition
from repro.core import (
    LucidScript,
    explain_result,
    explore_intent_thresholds,
    pareto_frontier,
)
from repro.harness import render_table


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        print("building the Medical competition...")
        competition = build_competition("medical", root, seed=0, n_scripts=20)
        user_script, corpus = next(competition.leave_one_out())

        taus = [1.0, 0.9, 0.8, 0.6, 0.4]
        points = explore_intent_thresholds(
            corpus,
            user_script,
            taus=taus,
            intent_kind="jaccard",
            data_dir=competition.data_dir,
            config=LSConfig(seq=8, beam_size=2, sample_rows=200),
        )

        rows = [
            [f"{p.tau:.1f}", f"{p.improvement:.1f}%", f"{p.preservation():.3f}"]
            for p in points
        ]
        print()
        print(render_table(
            ["tau_J", "% improvement", "intent preserved"],
            rows,
            title="Threshold sweep",
        ))

        frontier = pareto_frontier(points)
        print("\nPareto frontier (safe -> aggressive):")
        for p in frontier:
            print(
                f"  tau={p.tau:.1f}: {p.improvement:.1f}% improvement at "
                f"{p.preservation():.3f} preservation"
            )

        aggressive = frontier[-1]
        print("\nWhy the most aggressive frontier point changed what it did:")
        system = LucidScript(
            corpus, data_dir=competition.data_dir,
            config=LSConfig(seq=8, beam_size=2, sample_rows=200),
        )
        result = system.standardize(user_script)
        for explanation in explain_result(result, system.vocabulary):
            print(explanation.render())


if __name__ == "__main__":
    main()
