"""Quickstart: standardize the paper's running example (Figure 1).

Alex writes a diabetes data-preparation script using median imputation and
an age filter.  The corpus of peer scripts prefers mean imputation and
also filters SkinThickness outliers (domain knowledge Alex lacks).
LucidScript rewrites her script to match the corpus conventions while
keeping its output within her intent threshold.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

import repro.minipandas as pd
from repro import LSConfig, LucidScript, TableJaccardIntent


def make_dataset(data_dir: str) -> None:
    """Write a small Pima-diabetes-like CSV (the paper's Medical dataset)."""
    rng = np.random.default_rng(0)
    n = 400
    frame = pd.DataFrame(
        {
            "Pregnancies": rng.poisson(3.8, n).tolist(),
            "Glucose": np.clip(rng.normal(121, 31, n), 0, 199).round(0).tolist(),
            "SkinThickness": rng.integers(5, 120, n).tolist(),
            "Age": [int(a) if a > 0 else None for a in rng.integers(-3, 80, n)],
            "Outcome": rng.integers(0, 2, n).tolist(),
        }
    )
    frame.to_csv(os.path.join(data_dir, "diabetes.csv"))


# Peer scripts found online for the same dataset (Table 1: s1, s2, s3).
CORPUS = [
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['SkinThickness'] < 80]\n"
    "df = pd.get_dummies(df)",
    "import pandas as pd\n"
    "train = pd.read_csv('diabetes.csv')\n"
    "train = train.fillna(train.mean())\n"
    "train = train[train['SkinThickness'] < 80]\n"
    "train = pd.get_dummies(train)",
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = pd.get_dummies(df)",
]

# Alex's draft (Figure 1a): median imputation + age filter.
USER_SCRIPT = (
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.median())\n"
    "df = df[df['Age'].between(18, 25)]\n"
    "df = pd.get_dummies(df)"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as data_dir:
        make_dataset(data_dir)

        system = LucidScript(
            CORPUS,
            data_dir=data_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=8, beam_size=3),
        )
        result = system.standardize(USER_SCRIPT)

        print("== input script (lemmatized) ==")
        print(result.input_script)
        print("\n== standardized output script ==")
        print(result.output_script)
        print("\n== what changed ==")
        for line in result.removed_statements():
            print(f"  - {line}")
        for line in result.added_statements():
            print(f"  + {line}")
        print(
            f"\nrelative entropy: {result.re_before:.3f} -> {result.re_after:.3f} "
            f"({result.improvement:.1f}% improvement)"
        )
        print(f"table Jaccard vs original output: {result.intent_delta:.3f}")


if __name__ == "__main__":
    main()
