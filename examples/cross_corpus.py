"""The "different corpus" scenario (Section 6.3.3).

No corpus exists for your dataset?  Use one from a similar dataset.  Here
a Spaceship-Titanic script is standardized against the Titanic corpus —
the two competitions share column names (Age) and conventions (target
split), so transplanted steps that execute still standardize the script,
though less than an on-topic corpus would (Table 5: 11% vs 33%).

Run:  python examples/cross_corpus.py
"""

import tempfile

from repro import LSConfig, LucidScript, TableJaccardIntent, build_competition


SPACESHIP_USER_SCRIPT = (
    "import pandas as pd\n"
    "df = pd.read_csv('train.csv')\n"
    "df = df[df['Age'] > 5]\n"
    "df = df.drop('Cabin', axis=1)"
)


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        print("building the Titanic (corpus) and Spaceship (data) competitions...")
        titanic = build_competition("titanic", root, seed=0, n_scripts=25)
        spaceship = build_competition("spaceship", root, seed=0, n_scripts=4)

        # on-topic: spaceship corpus on spaceship data
        on_topic = LucidScript(
            spaceship.scripts,
            data_dir=spaceship.data_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=8, beam_size=3, sample_rows=200),
        )
        # cross-corpus: titanic corpus, spaceship data
        cross = LucidScript(
            titanic.scripts,
            data_dir=spaceship.data_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=8, beam_size=3, sample_rows=200),
        )

        result_on = on_topic.standardize(SPACESHIP_USER_SCRIPT)
        result_cross = cross.standardize(SPACESHIP_USER_SCRIPT)

        print("\n== user script ==")
        print(SPACESHIP_USER_SCRIPT)
        print("\n== standardized with the on-topic Spaceship corpus ==")
        print(result_on.output_script)
        print(f"improvement: {result_on.improvement:.1f}%")
        print("\n== standardized with the foreign Titanic corpus ==")
        print(result_cross.output_script)
        print(f"improvement: {result_cross.improvement:.1f}%")
        print(
            "\nAs in the paper, a similar-schema corpus still yields gains — "
            "only steps that execute on the new dataset survive the search."
        )


if __name__ == "__main__":
    main()
