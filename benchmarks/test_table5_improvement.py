"""Table 5 — % improvement on the six competitions, all methods and
corpus setups.

The paper's headline result: LS ~33%/26% mean improvement under tau_J /
tau_M with a hard floor at 0, GPT-4 ~3% with heavy tails, GPT-3.5 slightly
negative, and Sourcery / Auto-Suggest / Auto-Tables at exactly 0.  The
corpus-robustness block (small / different / low-ranked corpus) degrades
gracefully but stays positive.
"""

import numpy as np
import pytest

from repro.harness import ImprovementStats, evaluate_lucidscript, render_table

from _shared import (
    MAX_SCRIPTS,
    all_competitions,
    baseline_run,
    bench_config,
    competition,
    ls_run,
    publish,
)

BASELINES = ("Sourcery", "GPT-3.5", "GPT-4", "Auto-Suggest", "Auto-Tables")


def _pooled(runs):
    values = [v for run in runs for v in run.improvements]
    return ImprovementStats.from_values(values)


def _row(label, stats):
    r = stats.row()
    return [label, r["min"], r["median"], r["max"], r["mean"]]


def test_table5_full_corpus(benchmark):
    datasets = list(all_competitions())
    ls_j = _pooled([ls_run(d, "jaccard") for d in datasets])
    ls_m = _pooled([ls_run(d, "model") for d in datasets])
    baseline_stats = {
        b: _pooled([baseline_run(d, b) for d in datasets]) for b in BASELINES
    }

    rows = [_row("LS (tau_J)", ls_j), _row("LS (tau_M)", ls_m)]
    rows += [_row(b, baseline_stats[b]) for b in BASELINES]
    publish(
        "table5_full_corpus",
        render_table(
            ["Method", "min", "median", "max", "mean"],
            rows,
            title=(
                "Table 5 (full-size corpus): % improvement, "
                f"{MAX_SCRIPTS} user scripts per dataset"
            ),
        ),
    )

    # --- the paper's shape claims ----------------------------------------
    # LS guarantees non-negative improvement and a solidly positive mean
    assert ls_j.minimum >= 0.0
    assert ls_m.minimum >= 0.0
    assert ls_j.mean > 10.0
    assert ls_m.mean > 5.0
    # syntax/structural baselines achieve exactly 0
    for method in ("Sourcery", "Auto-Suggest", "Auto-Tables"):
        assert baseline_stats[method].minimum == 0.0
        assert baseline_stats[method].maximum == 0.0
    # GPT models: near-zero medians, tails both ways, far below LS
    assert abs(baseline_stats["GPT-4"].median) < 10.0
    assert baseline_stats["GPT-3.5"].minimum < 0.0
    assert ls_j.mean > baseline_stats["GPT-4"].mean + 10.0
    # GPT-4 is the stronger of the two GPTs, as in the paper
    assert baseline_stats["GPT-4"].mean >= baseline_stats["GPT-3.5"].mean

    medical = competition("medical")
    user, rest = next(medical.leave_one_out())
    from repro.core import LucidScript, TableJaccardIntent

    system = LucidScript(
        rest, data_dir=medical.data_dir,
        intent=TableJaccardIntent(tau=0.9), config=bench_config(),
    )
    benchmark.pedantic(lambda: system.standardize(user), rounds=1, iterations=1)


def test_table5_small_corpus(benchmark):
    """Small corpus (10 scripts): the same user scripts as the full-size
    run, standardized against a 10-script corpus drawn from the
    remainder (so the comparison is apples-to-apples)."""
    datasets = list(all_competitions())
    runs_j, runs_m = [], []
    for name in datasets:
        corpus = competition(name)
        small_reference = corpus.scripts[MAX_SCRIPTS : MAX_SCRIPTS + 10]
        runs_j.append(
            evaluate_lucidscript(
                corpus, intent_kind="jaccard", config=bench_config(),
                max_scripts=MAX_SCRIPTS, corpus_override=small_reference,
            )
        )
        runs_m.append(
            evaluate_lucidscript(
                corpus, intent_kind="model", config=bench_config(),
                max_scripts=MAX_SCRIPTS, corpus_override=small_reference,
            )
        )
    small_j, small_m = _pooled(runs_j), _pooled(runs_m)
    full_j = _pooled([ls_run(d, "jaccard") for d in datasets])

    publish(
        "table5_small_corpus",
        render_table(
            ["Method", "min", "median", "max", "mean"],
            [_row("LS (tau_J)", small_j), _row("LS (tau_M)", small_m)],
            title="Table 5 (small corpus, 10 scripts)",
        )
        + f"\n(full-size corpus mean for reference: {full_j.mean:.1f})",
    )

    assert small_j.minimum >= 0.0
    assert small_j.mean > 0.0
    # smaller corpus -> less headroom than the full corpus (paper: 33.6 -> 20.3)
    assert small_j.mean <= full_j.mean + 5.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table5_different_corpus(benchmark):
    """Titanic corpus standardizing Spaceship scripts (shared schema)."""
    spaceship = competition("spaceship")
    titanic = competition("titanic")
    run_j = evaluate_lucidscript(
        spaceship, intent_kind="jaccard", config=bench_config(),
        max_scripts=MAX_SCRIPTS, corpus_override=titanic.scripts,
    )
    run_m = evaluate_lucidscript(
        spaceship, intent_kind="model", config=bench_config(),
        max_scripts=MAX_SCRIPTS, corpus_override=titanic.scripts,
    )
    stats_j = run_j.stats()
    stats_m = run_m.stats()
    on_topic = ls_run("spaceship", "jaccard").stats()

    publish(
        "table5_different_corpus",
        render_table(
            ["Method", "min", "median", "max", "mean"],
            [_row("LS (tau_J)", stats_j), _row("LS (tau_M)", stats_m)],
            title="Table 5 (different corpus: Titanic corpus on Spaceship)",
        )
        + f"\n(on-topic Spaceship corpus mean for reference: {on_topic.mean:.1f})",
    )

    # a similar-schema foreign corpus still yields non-negative gains
    # (the paper's takeaway); with 6-script samples the cross-vs-on-topic
    # magnitudes are too noisy to order, so only the floor and the
    # does-it-help-at-all properties are asserted
    assert stats_j.minimum >= 0.0
    assert stats_m.minimum >= 0.0
    assert stats_j.maximum > 0.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table5_low_ranked_corpus(benchmark):
    """Bottom-30%-by-votes corpus: smallest but still non-negative gains."""
    runs = []
    for name in all_competitions():
        low = competition(name).low_ranked(fraction=0.3)
        runs.append(
            evaluate_lucidscript(
                low, intent_kind="jaccard", config=bench_config(),
                max_scripts=MAX_SCRIPTS,
            )
        )
    stats = _pooled(runs)
    full = _pooled([ls_run(d, "jaccard") for d in all_competitions()])

    publish(
        "table5_low_ranked_corpus",
        render_table(
            ["Method", "min", "median", "max", "mean"],
            [_row("LS (tau_J)", stats)],
            title="Table 5 (low-ranked corpus: bottom 30% by votes)",
        ),
    )

    assert stats.minimum >= 0.0
    assert stats.mean >= 0.0
    # low-quality corpus gives the least headroom (paper: 33.6 -> 7.8)
    assert stats.mean <= full.mean + 5.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
