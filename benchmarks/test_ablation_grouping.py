"""Extra ablation — semantic operation grouping (Section 6.5 future work).

The paper proposes shrinking the search space by grouping semantically
similar operations.  This benchmark measures the trade: candidate-set
size and search latency with grouping on vs. off, against the improvement
each achieves.
"""

import time

import numpy as np

from repro.core import LSConfig, LucidScript, TableJaccardIntent
from repro.harness import render_table

from _shared import bench_config, competition, publish


def _run(dataset: str, operation_groups):
    corpus = competition(dataset)
    improvements, latencies, enumerated = [], [], []
    for user_script, rest in list(corpus.leave_one_out())[:4]:
        system = LucidScript(
            rest,
            data_dir=corpus.data_dir,
            intent=TableJaccardIntent(tau=0.9),
            config=bench_config(operation_groups=operation_groups),
        )
        started = time.perf_counter()
        result = system.standardize(user_script)
        latencies.append(time.perf_counter() - started)
        improvements.append(result.improvement)
        enumerated.append(result.stats.n_steps_enumerated)
    return (
        float(np.mean(improvements)),
        float(np.mean(latencies)),
        float(np.mean(enumerated)),
    )


def test_ablation_operation_grouping(benchmark):
    rows = []
    outcomes = {}
    for dataset in ("medical", "titanic"):
        for label, groups in (("off", None), ("on (8 groups)", 8)):
            improvement, latency, enumerated = _run(dataset, groups)
            outcomes[(dataset, label)] = (improvement, latency, enumerated)
            rows.append(
                [dataset, label, f"{improvement:.1f}%", f"{latency:.2f}s",
                 f"{enumerated:.0f}"]
            )

    publish(
        "ablation_operation_grouping",
        render_table(
            ["dataset", "grouping", "mean improvement", "mean latency",
             "steps enumerated"],
            rows,
            title="Ablation: semantic operation grouping (Sec. 6.5)",
        ),
    )

    for dataset in ("medical", "titanic"):
        off = outcomes[(dataset, "off")]
        on = outcomes[(dataset, "on (8 groups)")]
        # grouping must shrink the enumerated candidate stream...
        assert on[2] <= off[2]
        # ...while preserving the bulk of the improvement
        assert on[0] >= 0.5 * off[0] - 1e-9

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
