"""Figure 9 — target-leakage detection accuracy vs. sequence length.

Section 6.6 study: leakage snippets are injected into corpus scripts; a
detection is correct when the standardized output satisfies all
constraints and no longer contains the injected snippet.  The paper finds
detection accuracy grows with the transformation budget, exceeding 66%
within 8 steps on most datasets.
"""

import numpy as np

from repro.core import LSConfig, LucidScript, TableJaccardIntent, detect_target_leakage
from repro.harness import render_series, render_table
from repro.workloads import inject_target_leakage

from _shared import bench_config, competition, publish

SEQ_GRID = (2, 4, 8)
DATASETS = ("medical", "nlp", "titanic")
N_INJECTED = 4


def _leakage_cases(corpus, n):
    rng = np.random.default_rng(0)
    cases = []
    for script in corpus.scripts:
        if len(cases) >= n:
            break
        if f"'{corpus.target}'" not in script:
            continue
        injected, snippets = inject_target_leakage(script, corpus.target, rng)
        rest = [s for s in corpus.scripts if s != script]
        cases.append((injected, snippets, rest))
    return cases


def _accuracy(dataset: str, seq: int) -> float:
    corpus = competition(dataset)
    cases = _leakage_cases(corpus, N_INJECTED)
    assert cases, f"no target-referencing scripts in {dataset}"
    hits = 0
    for injected, snippets, rest in cases:
        system = LucidScript(
            rest,
            data_dir=corpus.data_dir,
            intent=TableJaccardIntent(tau=0.7),
            config=LSConfig(seq=seq, beam_size=2, sample_rows=200),
        )
        hits += detect_target_leakage(system, injected, snippets).detected
    return hits / len(cases)


def test_fig9_leakage_detection(benchmark):
    accuracy = {
        dataset: {seq: _accuracy(dataset, seq) for seq in SEQ_GRID}
        for dataset in DATASETS
    }

    rows = [
        [dataset] + [f"{accuracy[dataset][seq]:.2f}" for seq in SEQ_GRID]
        for dataset in DATASETS
    ]
    publish(
        "fig9_leakage_detection",
        render_table(
            ["dataset"] + [f"seq={s}" for s in SEQ_GRID],
            rows,
            title="Figure 9: leakage detection accuracy vs sequence length",
        ),
    )

    for dataset in DATASETS:
        # a longer transformation budget never detects less
        assert accuracy[dataset][8] >= accuracy[dataset][2] - 1e-9
    # the paper's headline: most datasets exceed 2/3 accuracy within 8 steps
    strong = sum(1 for dataset in DATASETS if accuracy[dataset][8] >= 0.5)
    assert strong >= len(DATASETS) - 1

    benchmark.pedantic(
        lambda: _accuracy("medical", 4), rounds=1, iterations=1
    )
