"""Figure 7 — median runtime breakdown of the search components.

Per dataset, the time spent in GetSteps / GetTopKBeams / CheckIfExecutes /
VerifyConstraints.  The paper's findings, reproduced as shape checks:

* constraint checking (execution + intent verification) dominates the
  pure search bookkeeping, because it actually runs scripts on D_IN;
* the size of D_IN drives latency — Sales (the largest table by 20x+)
  is far slower than Medical when the sampling optimization is off, and
  sampling closes most of that gap.
"""

import time

from repro.core import LSConfig, LucidScript, TableJaccardIntent
from repro.harness import render_table

from _shared import all_competitions, bench_config, competition, ls_run, publish


def _standardize_once(dataset: str, sample_rows) -> float:
    corpus = competition(dataset)
    user, rest = next(corpus.leave_one_out())
    system = LucidScript(
        rest,
        data_dir=corpus.data_dir,
        intent=TableJaccardIntent(tau=0.9),
        config=LSConfig(seq=4, beam_size=1, sample_rows=sample_rows),
    )
    started = time.perf_counter()
    system.standardize(user)
    return time.perf_counter() - started


def test_fig7_runtime_breakdown(benchmark):
    rows = []
    checks_vs_search = []
    for name in all_competitions():
        run = ls_run(name, "jaccard")
        breakdown = run.median_breakdown()
        search_s = breakdown["GetSteps"] + breakdown["GetTopKBeams"]
        checking_s = breakdown["CheckIfExecutes"] + breakdown["VerifyConstraints"]
        checks_vs_search.append((name, search_s, checking_s))
        rows.append(
            [
                name,
                f"{breakdown['GetSteps']*1000:.0f}",
                f"{breakdown['GetTopKBeams']*1000:.0f}",
                f"{breakdown['CheckIfExecutes']*1000:.0f}",
                f"{breakdown['VerifyConstraints']*1000:.0f}",
            ]
        )
    publish(
        "fig7_runtime_breakdown",
        render_table(
            ["dataset", "GetSteps(ms)", "GetTopKBeams(ms)",
             "CheckIfExecutes(ms)", "VerifyConstraints(ms)"],
            rows,
            title="Figure 7: median runtime breakdown (sampled D_IN)",
        ),
    )
    # constraint checking dominates the search bookkeeping on most datasets
    dominated = sum(1 for _, search_s, check_s in checks_vs_search if check_s > search_s)
    assert dominated >= len(checks_vs_search) - 1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig7_sampling_effect_on_sales(benchmark):
    """The paper: Sales is ~20x slower before sampling; sampling fixes it."""
    sampled_sales = _standardize_once("sales", sample_rows=500)
    unsampled_sales = _standardize_once("sales", sample_rows=None)
    sampled_medical = _standardize_once("medical", sample_rows=500)
    unsampled_medical = _standardize_once("medical", sample_rows=None)

    publish(
        "fig7_sampling_effect",
        render_table(
            ["dataset", "sampled (s)", "unsampled (s)", "slowdown"],
            [
                ["medical", f"{sampled_medical:.2f}", f"{unsampled_medical:.2f}",
                 f"{unsampled_medical / max(sampled_medical, 1e-9):.1f}x"],
                ["sales", f"{sampled_sales:.2f}", f"{unsampled_sales:.2f}",
                 f"{unsampled_sales / max(sampled_sales, 1e-9):.1f}x"],
            ],
            title="Sampling optimization: latency with/without row sampling",
        ),
    )

    # large D_IN is the latency driver when sampling is off...
    assert unsampled_sales > unsampled_medical
    # ...and sampling recovers most of it
    assert sampled_sales < unsampled_sales

    benchmark.pedantic(
        lambda: _standardize_once("medical", sample_rows=500),
        rounds=1, iterations=1,
    )
