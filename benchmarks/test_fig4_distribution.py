"""Figure 4 — % improvement distribution per dataset.

The paper plots per-dataset improvement distributions: LS mass sits at
x >= 0 (peaked to the right), GPT distributions center near 0 and extend
left.  This benchmark renders ASCII histograms of the same series and
checks those shape properties.
"""

import numpy as np

from repro.harness import render_histogram

from _shared import all_competitions, baseline_run, ls_run, publish

BINS = [-150, -100, -50, -25, 0.0001, 25, 50, 75, 100]


def test_fig4_improvement_distribution(benchmark):
    sections = []
    for name in all_competitions():
        ls = ls_run(name, "jaccard").improvements
        g4 = baseline_run(name, "GPT-4").improvements
        g35 = baseline_run(name, "GPT-3.5").improvements
        sections.append(
            render_histogram(ls, BINS, title=f"[{name}] LS (tau_J)")
            + "\n"
            + render_histogram(g4, BINS, title=f"[{name}] GPT-4")
            + "\n"
            + render_histogram(g35, BINS, title=f"[{name}] GPT-3.5")
        )

        # shape: LS never degrades standardness...
        assert min(ls) >= 0.0
        # ...while the GPT distributions straddle zero overall

    all_gpt = [
        v
        for name in all_competitions()
        for v in baseline_run(name, "GPT-4").improvements
        + baseline_run(name, "GPT-3.5").improvements
    ]
    assert min(all_gpt) < 0.0, "GPT tail must extend left of zero"
    all_ls = [
        v for name in all_competitions() for v in ls_run(name, "jaccard").improvements
    ]
    # the LS distribution sits to the right of the GPT one: never negative,
    # and with strictly more mass above zero
    assert np.median(all_ls) >= np.median(all_gpt)
    assert np.mean(all_ls) > np.mean(all_gpt)

    publish("fig4_distribution", "\n\n".join(sections))

    benchmark.pedantic(
        lambda: np.histogram(all_ls, bins=BINS), rounds=10, iterations=1
    )
