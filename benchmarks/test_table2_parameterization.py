"""Table 2 — default (seq, K) parameterization by corpus properties.

Regenerates the paper's parameter table and checks the recommended
configuration for each of the six built corpora.
"""

from repro.core import recommend_parameters
from repro.harness import render_table
from repro.lang import CorpusVocabulary

from _shared import all_competitions, publish


def test_table2_parameterization(benchmark):
    grid = [
        (">10 scripts", ">300 uniq. edges", 11, 301),
        (">10 scripts", "<=300 uniq. edges", 11, 300),
        ("<=10 scripts", ">300 uniq. edges", 10, 301),
        ("<=10 scripts", "<=300 uniq. edges", 10, 300),
    ]
    rows = []
    for large, diverse, n_scripts, uniq_edges in grid:
        config = benchmark_target(n_scripts, uniq_edges)
        rows.append([large, diverse, config.seq, config.beam_size])

    # paper's Table 2, verbatim
    assert [r[2:] for r in rows] == [[16, 3], [16, 1], [8, 3], [8, 1]]

    corpus_rows = []
    for name, corpus in all_competitions().items():
        stats = CorpusVocabulary.from_scripts(corpus.scripts).stats()
        config = recommend_parameters(stats.n_scripts, stats.uniq_edges)
        corpus_rows.append(
            [name, stats.n_scripts, stats.uniq_edges, config.seq, config.beam_size]
        )

    publish(
        "table2_parameterization",
        render_table(
            ["Large", "Diverse", "seq", "K"], rows,
            title="Table 2: parameterization by corpus properties",
        )
        + "\n\n"
        + render_table(
            ["dataset", "# scripts", "uniq edges", "seq", "K"], corpus_rows,
            title="Recommended parameters for the six built corpora",
        ),
    )

    benchmark(recommend_parameters, 62, 748)


def benchmark_target(n_scripts, uniq_edges):
    return recommend_parameters(n_scripts, uniq_edges)
