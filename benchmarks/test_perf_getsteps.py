"""GetSteps scoring-engine throughput: full recount vs O(Δ) incremental.

A Figure-7-shaped search workload — a long user script standardized
against a peer corpus — run twice: ``incremental_scoring`` off (every
proposal re-walks the whole script: ``compute_edge_counts`` +
``score_edge_counts``) and on (every proposal scored off the candidate's
cached edge state in O(Δ)).  The execution constraint is stubbed out so
the measurement isolates the scoring engine; the bit-identity contract is
asserted before any speed number counts.

Results are published to ``benchmarks/results/`` and the machine-readable
speedups to the repo-root ``BENCH_getsteps.json``.  The acceptance bar:
the incremental engine makes the GetSteps component at least 5x faster
(median of rounds) on the long-script workload.
"""

import json
import os
import random
import statistics
import time

import pytest

from repro.core import BeamSearch, LSConfig, RelativeEntropyScorer
from repro.harness import render_table
from repro.lang import CorpusVocabulary, parse_script

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_getsteps.json")

ROUNDS = 5
CORPUS_SCRIPTS = 18
USER_BODY_STATEMENTS = 90
SEQ = 6
BEAM_SIZE = 3

#: The usual data-preparation step shapes (fill/filter/encode/derive …).
STEP_POOL = [
    "df = df.fillna(df.mean())",
    "df = df.fillna(df.median())",
    "df = df.dropna()",
    "df = df[df['x'] < 80]",
    "df = pd.get_dummies(df)",
    "df['y'] = df['x'] * 2",
    "df = df.drop('z', axis=1)",
    "df = df.sort_values('x')",
    "df = df.reset_index(drop=True)",
    "df = df.drop_duplicates()",
    "df['z'] = df['y'] - 1",
    "df = df.rename(columns={'a': 'b'})",
]


def _build(body):
    return "\n".join(["import pandas as pd", "df = pd.read_csv('t.csv')"] + body)


def _workload():
    rng = random.Random(7)
    corpus = [
        _build([rng.choice(STEP_POOL) for _ in range(rng.randint(3, 8))])
        for _ in range(CORPUS_SCRIPTS)
    ]
    user = _build([rng.choice(STEP_POOL) for _ in range(USER_BODY_STATEMENTS)])
    return corpus, user


def _run_search(vocabulary, user, incremental):
    scorer = RelativeEntropyScorer(vocabulary)
    config = LSConfig(
        seq=SEQ, beam_size=BEAM_SIZE, incremental_scoring=incremental
    )
    search = BeamSearch(vocabulary, scorer, config, exec_checker=lambda s: True)
    statements = list(parse_script(user).statements)
    started = time.perf_counter()
    result = search.search(statements)
    wall_s = time.perf_counter() - started
    search.sync_cache_stats()
    return (
        [(c.source(), c.score) for c in result],
        search.stats.breakdown()["GetSteps"],
        wall_s,
        search.stats,
    )


def test_perf_getsteps_incremental_scoring():
    corpus, user = _workload()
    vocabulary = CorpusVocabulary.from_scripts(corpus)

    on_getsteps, off_getsteps, on_walls, off_walls = [], [], [], []
    for _ in range(ROUNDS):
        on_result, on_g, on_w, on_stats = _run_search(vocabulary, user, True)
        off_result, off_g, off_w, _ = _run_search(vocabulary, user, False)
        # bit-identity first: same candidates, same order, same scores
        assert on_result == off_result
        on_getsteps.append(on_g)
        off_getsteps.append(off_g)
        on_walls.append(on_w)
        off_walls.append(off_w)

    on_ms = statistics.median(on_getsteps) * 1000
    off_ms = statistics.median(off_getsteps) * 1000
    getsteps_speedup = off_ms / on_ms
    wall_speedup = statistics.median(off_walls) / statistics.median(on_walls)

    report = {
        "workload": {
            "corpus_scripts": CORPUS_SCRIPTS,
            "user_statements": USER_BODY_STATEMENTS + 2,
            "seq": SEQ,
            "beam_size": BEAM_SIZE,
            "rounds": ROUNDS,
        },
        "median_getsteps_ms": {
            "full_recount": round(off_ms, 3),
            "incremental": round(on_ms, 3),
        },
        "getsteps_speedup": round(getsteps_speedup, 2),
        "search_wall_speedup": round(wall_speedup, 2),
        "delta_scores": on_stats.n_delta_scores,
        "full_recount_fallbacks": on_stats.n_full_recounts,
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_getsteps_scoring",
        render_table(
            ["scoring engine", "median GetSteps (ms)", "speedup"],
            [
                ["full recount per proposal", f"{off_ms:.1f}", "1.0x"],
                ["incremental O(Δ) deltas", f"{on_ms:.1f}",
                 f"{getsteps_speedup:.1f}x"],
            ],
            title=(
                f"GetSteps scoring on a {USER_BODY_STATEMENTS + 2}-statement "
                f"script ({CORPUS_SCRIPTS}-script corpus, seq={SEQ}, "
                f"K={BEAM_SIZE})"
            ),
        )
        + f"\n[speedups recorded in {BENCH_JSON}]",
    )

    # the acceptance bar: delta scoring at least quintuples GetSteps
    # throughput on the long-script workload
    assert getsteps_speedup >= 5.0, report
    # the engine really ran incrementally: one full recount (the root)
    # per search, everything else delta-scored
    assert on_stats.n_delta_scores > 0
    assert on_stats.n_full_recounts <= SEQ


def test_perf_getsteps_verify_mode_is_clean():
    """Self-audit: verify mode cross-checks every delta score against the
    full recount and raises on any divergence; a clean pass on the bench
    workload plus a measured in-situ speedup is the engine's receipt."""
    corpus, user = _workload()
    vocabulary = CorpusVocabulary.from_scripts(corpus)
    scorer = RelativeEntropyScorer(vocabulary)
    config = LSConfig(
        seq=3, beam_size=2, incremental_scoring=True, verify_scoring=True
    )
    search = BeamSearch(vocabulary, scorer, config, exec_checker=lambda s: True)
    search.search(list(parse_script(user).statements))
    search.sync_cache_stats()
    assert search.stats.get_steps_speedup > 0.0
