"""Table 3 — examined datasets and their DAG statistics.

Regenerates the corpus-statistics table over the six synthetic
competitions and checks the relative structure the paper reports:
Titanic is the most script-rich and atom-diverse corpus, NLP among the
smallest, and Sales by far the largest data file.
"""

import os

from repro.harness import render_table
from repro.lang import CorpusVocabulary

from _shared import all_competitions, publish

import repro.minipandas as pd


def _stats_row(name, corpus):
    vocab = CorpusVocabulary.from_scripts(corpus.scripts)
    stats = vocab.stats()
    frame = pd.read_csv(os.path.join(corpus.data_dir, corpus.data_file))
    return {
        "dataset": name,
        "scripts": stats.n_scripts,
        "tuples_k": round(len(frame) / 1000, 1),
        "features": len(frame.columns),
        "avg_lines": round(stats.avg_code_lines, 1),
        "uniq_1grams": stats.uniq_onegrams,
        "uniq_ngrams": stats.uniq_ngrams,
        "uniq_edges": stats.uniq_edges,
    }


def test_table3_corpus_stats(benchmark):
    rows = {name: _stats_row(name, c) for name, c in all_competitions().items()}

    # Table 3 shape checks -------------------------------------------------
    # corpus sizes are the paper's, by construction
    assert rows["titanic"]["scripts"] == 62
    assert rows["nlp"]["scripts"] == 24
    # Titanic has the most unique atoms and edges (richest conventions)
    for other in ("house", "nlp", "spaceship", "medical", "sales"):
        assert rows["titanic"]["uniq_edges"] >= rows[other]["uniq_edges"]
        assert rows["titanic"]["uniq_1grams"] >= rows[other]["uniq_1grams"]
    # Sales is the largest data file by an order of magnitude
    second = max(
        rows[n]["tuples_k"] for n in rows if n != "sales"
    )
    assert rows["sales"]["tuples_k"] > 10 * second

    order = ["titanic", "house", "nlp", "spaceship", "medical", "sales"]
    publish(
        "table3_corpus_stats",
        render_table(
            ["Statistics"] + order,
            [
                ["Scripts"] + [rows[n]["scripts"] for n in order],
                ["Data tuples (k)"] + [rows[n]["tuples_k"] for n in order],
                ["Data features"] + [rows[n]["features"] for n in order],
                ["Avg # code lines"] + [rows[n]["avg_lines"] for n in order],
                ["Uniq. 1-grams"] + [rows[n]["uniq_1grams"] for n in order],
                ["Uniq. n-grams"] + [rows[n]["uniq_ngrams"] for n in order],
                ["Uniq. edges"] + [rows[n]["uniq_edges"] for n in order],
            ],
            title="Table 3: examined datasets and their DAG statistics",
        ),
    )

    medical = all_competitions()["medical"]
    benchmark.pedantic(
        lambda: CorpusVocabulary.from_scripts(medical.scripts).stats(),
        rounds=3,
        iterations=1,
    )
