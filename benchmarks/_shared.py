"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure from the paper's
Section 6.  Heavy computations (corpus builds, leave-one-out runs) are
cached at module scope so overlapping benchmarks (e.g. Table 5 and
Figure 4 both need the per-dataset improvement distributions) share work.

Rendered artifacts are written to ``benchmarks/results/`` *and* printed,
so the reproduced numbers survive pytest's output capture.
"""

from __future__ import annotations

import functools
import os
from typing import Dict, List, Optional, Sequence

from repro.core import LSConfig
from repro.harness import MethodRun, evaluate_baseline, evaluate_lucidscript
from repro.workloads import ScriptCorpus, build_competition, competition_names

#: Where competitions are materialized for the benchmark session.
BENCH_ROOT = os.environ.get("REPRO_BENCH_DIR", "/tmp/repro-bench-comps")

#: Where rendered tables/series are written.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Leave-one-out evaluations are capped at this many user scripts per
#: (dataset, method) cell so the full suite finishes in minutes.  The
#: corpus itself is always built at the paper's full Table 3 size.
MAX_SCRIPTS = 6

#: The benchmark search configuration: the paper's LS-default shape
#: (diversity on, early-checking on) with seq/K reduced one notch and
#: sampling tightened, for bounded runtimes.
BENCH_CONFIG = dict(seq=8, beam_size=2, sample_rows=200)


def bench_config(**overrides) -> LSConfig:
    params = dict(BENCH_CONFIG)
    params.update(overrides)
    return LSConfig(**params)


@functools.lru_cache(maxsize=None)
def competition(name: str) -> ScriptCorpus:
    """Full-size (Table 3 scale) competition, built once per session."""
    return build_competition(name, BENCH_ROOT, seed=0)


def all_competitions() -> Dict[str, ScriptCorpus]:
    return {name: competition(name) for name in competition_names()}


@functools.lru_cache(maxsize=None)
def ls_run(
    dataset: str,
    intent_kind: str = "jaccard",
    tau: Optional[float] = None,
    seq: int = BENCH_CONFIG["seq"],
    beam_size: int = BENCH_CONFIG["beam_size"],
    diversity: bool = True,
    max_scripts: int = MAX_SCRIPTS,
) -> MethodRun:
    """Cached leave-one-out LucidScript evaluation."""
    return evaluate_lucidscript(
        competition(dataset),
        intent_kind=intent_kind,
        tau=tau,
        config=bench_config(seq=seq, beam_size=beam_size, diversity=diversity),
        max_scripts=max_scripts,
    )


@functools.lru_cache(maxsize=None)
def baseline_run(dataset: str, method: str, max_scripts: int = MAX_SCRIPTS) -> MethodRun:
    """Cached leave-one-out baseline evaluation."""
    from repro.baselines import AutoSuggest, AutoTables, SyntaxCleaner, gpt35, gpt4

    corpus = competition(dataset)
    factories = {
        "Sourcery": SyntaxCleaner,
        "GPT-3.5": lambda: gpt35(seed=0),
        "GPT-4": lambda: gpt4(seed=0),
        "Auto-Suggest": lambda: AutoSuggest(data_dir=corpus.data_dir),
        "Auto-Tables": lambda: AutoTables(data_dir=corpus.data_dir),
    }
    return evaluate_baseline(factories[method](), corpus, max_scripts=max_scripts)


def publish(name: str, content: str) -> None:
    """Print a rendered artifact and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(content + "\n")
    print(f"\n{content}\n[written to {path}]")


def effective_cores() -> int:
    """CPU cores actually available to this process (not the machine total).

    ``sched_getaffinity`` respects cgroup/taskset restrictions — the number
    that decides whether a parallel speedup is even achievable.  Every
    BENCH_*.json records this so a parallel number measured on an
    oversubscribed box (e.g. the seed's 0.64x "regression" measured with 2
    workers on 1 core) can never masquerade as an engine property.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def bench_environment() -> Dict[str, int]:
    """The standard environment block every BENCH_*.json embeds."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "effective_cores": effective_cores(),
    }
