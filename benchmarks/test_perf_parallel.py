"""Parallel-engine throughput: the persistent sharded worker engine vs
the serial check loop, on the BENCH_getsteps workload shape executed for
real (waves of beam candidates sharing a growing prefix over a CSV).

This is the benchmark that retires the seed's recorded ``parallel_x2:
0.64`` — a number measured with 2 workers on a 1-core box and published
without the core count that explained it.  Here every figure lands in
``BENCH_parallel.json`` next to ``environment.effective_cores``, and the
speedup assertions are **skipped with an explanatory marker** whenever
workers would be oversubscribed (more workers than effective cores):
an oversubscribed "speedup" measures the scheduler, not the engine.

What always runs, on any host, is the bit-identity audit: every wave's
sharded verdicts must equal the serial loop's, in order, for every
worker count measured — the ``verify_parallel`` contract.

Acceptance bar (enforced only when ``effective_cores >= 2``): the engine
at 2 workers beats the serial loop by >= 1.5x, and at ``min(4, cores)``
workers reaches >= 0.8x per core.
"""

import json
import os
import random
import statistics
import time

import numpy as np
import pytest

import repro.minipandas as mp
from repro.harness import render_table
from repro.sandbox import check_executes_batch, kill_worker_pool

from _shared import bench_environment, effective_cores, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_parallel.json")

ROUNDS = 3
WAVES = 4
WAVE_SIZE = 10
SAMPLE_ROWS = 200
CSV_ROWS = 4000
SPEEDUP_X2_FLOOR = 1.5
PER_CORE_FLOOR = 0.8

#: The BENCH_getsteps step shapes, executed for real against the CSV.
STEP_POOL = [
    "df = df.fillna(df.mean())",
    "df = df.fillna(df.median())",
    "df = df.dropna()",
    "df = df[df['B'] < 150]",
    "df = pd.get_dummies(df)",
    "df['E'] = df['A'] * 2",
    "df = df.sort_values('B')",
    "df = df.reset_index(drop=True)",
    "df = df.drop_duplicates()",
    "df['F'] = df['D'] - 1",
    "df = df.rename(columns={'A': 'a'})",
    "df = df.drop('NoSuchColumn', axis=1)",  # failing candidates are data too
]

BASE = "import pandas as pd\ndf = pd.read_csv('bench.csv')"


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel-bench")
    rng = np.random.default_rng(23)
    frame = mp.DataFrame(
        {
            "A": rng.integers(0, 12, CSV_ROWS).tolist(),
            "B": rng.normal(120, 30, CSV_ROWS).round(1).tolist(),
            "C": [int(v) if v > 0 else None for v in rng.integers(-3, 80, CSV_ROWS)],
            "D": rng.normal(0, 1, CSV_ROWS).round(3).tolist(),
        }
    )
    frame.to_csv(str(root / "bench.csv"))
    return str(root)


def _beam_waves():
    """WAVES waves of WAVE_SIZE candidates; each wave's prefix extends the
    previous wave's winner, exactly the shape GetTopKBeams dispatches."""
    rng = random.Random(13)
    waves = []
    prefix = BASE
    for _ in range(WAVES):
        suffixes = rng.sample(STEP_POOL, WAVE_SIZE) if WAVE_SIZE <= len(
            STEP_POOL
        ) else [rng.choice(STEP_POOL) for _ in range(WAVE_SIZE)]
        waves.append((prefix, [f"{prefix}\n{s}" for s in suffixes]))
        prefix = f"{prefix}\n{rng.choice(suffixes[:3])}"
    return waves


def _timed_pass(waves, bench_dir, workers):
    """One full pass over all waves; returns (total_s, all_verdicts)."""
    verdicts = []
    started = time.perf_counter()
    for prefix, sources in waves:
        verdicts.append(
            check_executes_batch(
                sources,
                data_dir=bench_dir,
                sample_rows=SAMPLE_ROWS,
                workers=workers,
                affinity_base=prefix,
            )
        )
    return time.perf_counter() - started, verdicts


def test_perf_parallel_engine(bench_dir):
    waves = _beam_waves()
    cores = effective_cores()
    worker_counts = sorted({2, min(4, max(2, cores))})

    # serial baseline (the always-correct loop the engine must beat)
    serial_times = []
    for _ in range(ROUNDS):
        elapsed, serial_verdicts = _timed_pass(waves, bench_dir, workers=1)
        serial_times.append(elapsed)
    serial_s = statistics.median(serial_times)

    results = {}
    for workers in worker_counts:
        kill_worker_pool()
        # warmup pass: spawn shards, ship bases, fill resident caches —
        # steady-state is what the search actually sees
        _, warm_verdicts = _timed_pass(waves, bench_dir, workers=workers)
        times = []
        for _ in range(ROUNDS):
            elapsed, verdicts = _timed_pass(waves, bench_dir, workers=workers)
            times.append(elapsed)
            # the verify_parallel contract, asserted on every pass: the
            # engine's verdicts are bit-identical to the serial loop's
            assert verdicts == serial_verdicts, f"workers={workers}"
        assert warm_verdicts == serial_verdicts
        parallel_s = statistics.median(times)
        results[workers] = {
            "median_pass_ms": round(parallel_s * 1000, 3),
            "speedup_vs_serial": round(serial_s / parallel_s, 2),
        }
    kill_worker_pool()

    oversubscribed = cores < 2
    assertion = {
        "floor_at_2_workers": SPEEDUP_X2_FLOOR,
        "per_core_floor": PER_CORE_FLOOR,
        "checked": not oversubscribed,
    }
    if oversubscribed:
        assertion["skipped_reason"] = (
            f"only {cores} effective core(s): every measured worker count is "
            "oversubscribed, so wall-clock speedup measures the OS scheduler, "
            "not the engine; bit-identity was still asserted on every pass"
        )

    report = {
        "workload": {
            "waves": WAVES,
            "wave_size": WAVE_SIZE,
            "rounds": ROUNDS,
            "sample_rows": SAMPLE_ROWS,
            "csv_rows": CSV_ROWS,
            "shape": "BENCH_getsteps steps executed over beam-shaped waves",
        },
        "serial_median_pass_ms": round(serial_s * 1000, 3),
        "parallel": {str(w): r for w, r in results.items()},
        "verify_parallel_audit": "pass",
        "speedup_assertion": assertion,
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rows = [["serial loop", f"{serial_s * 1000:.1f}", "1.0x"]]
    for workers, entry in sorted(results.items()):
        rows.append(
            [
                f"shard engine ({workers} workers)",
                f"{entry['median_pass_ms']:.1f}",
                f"{entry['speedup_vs_serial']:.2f}x",
            ]
        )
    note = (
        "[assertions skipped: " + assertion["skipped_reason"] + "]"
        if oversubscribed
        else f"[floors enforced: {SPEEDUP_X2_FLOOR}x @2w, "
        f"{PER_CORE_FLOOR}x/core @{max(worker_counts)}w]"
    )
    publish(
        "perf_parallel_engine",
        render_table(
            ["engine", "median pass (ms)", "speedup vs serial"],
            rows,
            title=(
                f"Sharded engine on {WAVES} beam waves x {WAVE_SIZE} candidates "
                f"({cores} effective core(s))"
            ),
        )
        + f"\n{note}\n[recorded in {BENCH_JSON}]",
    )

    if not oversubscribed:
        assert results[2]["speedup_vs_serial"] >= SPEEDUP_X2_FLOOR, report
        top = max(worker_counts)
        usable = min(top, cores)
        assert (
            results[top]["speedup_vs_serial"] >= PER_CORE_FLOOR * usable
        ), report


def test_perf_parallel_resident_state_amortizes(bench_dir):
    """The engine's perf story is resident state: a repeated pass over the
    same waves must ship (almost) nothing — refs and deltas, not texts."""
    from repro.sandbox import BatchReport

    waves = _beam_waves()
    kill_worker_pool()
    first = BatchReport()
    second = BatchReport()
    for report in (first, second):
        for prefix, sources in waves:
            check_executes_batch(
                sources,
                data_dir=bench_dir,
                sample_rows=SAMPLE_ROWS,
                workers=2,
                affinity_base=prefix,
                report=report,
            )
    kill_worker_pool()
    assert first.bytes_shipped > 0
    assert second.bytes_shipped == 0  # everything resident: pure refs
    assert first.shard_hits > 0
