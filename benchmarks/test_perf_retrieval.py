"""Retrieval-engine throughput: top-k corpus assembly vs brute force.

A standing-pool workload — 1,000 distinct preparation scripts in 50
dataset clusters, indexed once by :class:`repro.corpus.RetrievalIndex` —
queried for a k=20 working corpus.  The sub-linear path (LSH band
lookups + schema postings → ``top_k`` → ``assemble_from_hits``) is
raced against the brute-force path the retrieval engine replaces:
curating the *entire* pool into a :class:`CorpusIndex` and
materializing its vocabulary.  Both paths run against the same warm
``ScriptStore``, so the race measures corpus assembly, not parsing.

Correctness gates before any speed number counts:

- every timed query re-runs with ``verify=True`` — the audit raises
  :class:`RetrievalMismatchError` if the banded top-k misses any member
  of the brute-force top-k (exactness, not approximation);
- the retrieval-assembled corpus passes ``CorpusIndex.verify()``
  (bit-identical to a from-scratch build over the same winners);
- one full standardization through the retrieval pool is asserted
  bit-identical (output script, RE before/after) to the same search
  over the hand-curated winner scripts.

Results are published to ``benchmarks/results/`` and the machine-
readable speedup to the repo-root ``BENCH_retrieval.json``.  The
acceptance bar: ≥10x over brute-force assembly at the 1k pool.
"""

import json
import os
import random
import shutil
import statistics
import tempfile
import time

import pytest

from repro.core import LucidScript
from repro.corpus import CorpusIndex, RetrievalIndex, ScriptStore
from repro.harness import render_table

from _shared import bench_config, bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_retrieval.json")

N_CLUSTERS = 50
VARIANTS = 20
N_SCRIPTS = N_CLUSTERS * VARIANTS
K = 20
N_QUERIES = 5
ROUNDS = 3


def _pool(rng):
    """1,000 distinct scripts in dataset clusters (shared read + columns)."""
    scripts = []
    for c in range(N_CLUSTERS):
        cols = [f"c{c}_{j}" for j in range(3)]
        for v in range(VARIANTS):
            serial = c * VARIANTS + v
            lines = [
                "import pandas as pd",
                f"df = pd.read_csv('data_{c}.csv')",
                # a unique constant keeps every variant lemma-distinct
                f"df = df.fillna({serial})",
            ]
            for column in rng.sample(cols, rng.randrange(1, 3)):
                lines.append(f"df = df[df['{column}'] < {rng.randrange(40, 200)}]")
            if rng.random() < 0.5:
                lines.append(f"df['{cols[0]}'] = df['{cols[0]}'].astype(int)")
            if rng.random() < 0.5:
                lines.append("df = df.drop_duplicates()")
            if rng.random() < 0.4:
                lines.append("df = df.dropna()")
            lines.append("df")
            scripts.append("\n".join(lines) + "\n")
    return scripts


def _write_query_data(directory):
    """The CSV read by cluster 0's scripts (for the end-to-end parity run)."""
    rng = random.Random(5)
    rows = ["c0_0,c0_1,c0_2"]
    for _ in range(80):
        cells = [
            "" if rng.random() < 0.15 else str(rng.randrange(100)) for _ in range(3)
        ]
        rows.append(",".join(cells))
    with open(os.path.join(directory, "data_0.csv"), "w") as handle:
        handle.write("\n".join(rows) + "\n")


def test_perf_retrieval_topk_assembly():
    rng = random.Random(23)
    scripts = _pool(rng)
    store = ScriptStore()

    started = time.perf_counter()
    pool = RetrievalIndex.from_scripts(scripts, store=store)
    index_build_s = time.perf_counter() - started
    assert pool.n_scripts == N_SCRIPTS
    assert pool.n_unique_scripts == N_SCRIPTS  # every variant lemma-distinct

    queries = [scripts[c * VARIANTS] for c in range(0, N_CLUSTERS, N_CLUSTERS // N_QUERIES)]

    # -------------------------------------------------- correctness gates
    for query in queries:
        hits = pool.top_k(query, K, verify=True)  # audit raises on any miss
        assert len(hits) == K
        corpus = pool.assemble_from_hits(hits)
        corpus.verify()

    # end-to-end parity: retrieval pool vs hand-curated winner scripts
    data_dir = tempfile.mkdtemp(prefix="repro-bench-retrieval-")
    try:
        _write_query_data(data_dir)
        query = queries[0]
        winners = [hit.record.source for hit in pool.top_k(query, K)]
        config = bench_config(retrieval_k=K, verify_retrieval=True)
        retrieved = LucidScript(pool, data_dir=data_dir, config=config).standardize(
            query
        )
        curated = LucidScript(
            winners, data_dir=data_dir, config=bench_config()
        ).standardize(query)
        assert retrieved.output_script == curated.output_script
        assert retrieved.re_before == curated.re_before
        assert retrieved.re_after == curated.re_after
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    # -------------------------------------------------------- the race
    brute_s, topk_s = [], []
    for _ in range(ROUNDS):
        for query in queries:
            started = time.perf_counter()
            hits = pool.top_k(query, K)
            pool.assemble_from_hits(hits).to_vocabulary()
            topk_s.append(time.perf_counter() - started)

            started = time.perf_counter()
            CorpusIndex.from_scripts(scripts, store=store).to_vocabulary()
            brute_s.append(time.perf_counter() - started)

    counters = pool.counters
    candidates_per_query = counters.candidates / max(1, counters.queries)

    brute_ms = statistics.median(brute_s) * 1000
    topk_ms = statistics.median(topk_s) * 1000
    speedup = brute_ms / topk_ms
    report = {
        "workload": {
            "pool_scripts": N_SCRIPTS,
            "clusters": N_CLUSTERS,
            "k": K,
            "queries": N_QUERIES,
            "rounds": ROUNDS,
        },
        "brute_assembly_ms": round(brute_ms, 3),
        "topk_assembly_ms": round(topk_ms, 3),
        "index_build_ms": round(index_build_s * 1000, 3),
        "candidates_per_query": round(candidates_per_query, 1),
        "retrieval_fallbacks": counters.fallbacks,
        "retrieval_assembly_speedup": round(speedup, 2),
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_retrieval",
        render_table(
            ["path", "wall (ms)", "scripts touched"],
            [
                ["brute-force corpus assembly", f"{brute_ms:.1f}", str(N_SCRIPTS)],
                [
                    f"top-{K} retrieval + assembly",
                    f"{topk_ms:.1f}",
                    f"{candidates_per_query:.0f} cand -> {K}",
                ],
            ],
            title=(
                f"Working-corpus assembly over a {N_SCRIPTS}-script pool "
                f"(median of {ROUNDS}x{N_QUERIES} queries, audited): "
                f"{speedup:.1f}x"
            ),
        )
        + f"\n[speedup recorded in {BENCH_JSON}]",
    )

    # the acceptance bar: no exactness fallbacks on a clustered pool, and
    # at least an order of magnitude over brute-force assembly
    assert counters.fallbacks == 0, report
    assert speedup >= 10.0, report
