"""Table 4 — metric-evaluation case study on Titanic.

An input script that only loads the data, and two increasingly standard
candidate outputs (s1 adds the conventional target split; s2 additionally
imputes Age/Embarked).  The paper reports RE 3.02 -> 2.49 -> 1.37 with
both intent measures effectively at identity.

Shape check here: the fully standardized s2 scores clearly below the bare
s_u, and every candidate stays within the default intent thresholds.
(s1's middle rank is corpus-sensitive: in our synthetic corpora the
read->split edge is rarer than on Kaggle, so s1 may score above s_u; see
EXPERIMENTS.md.)
"""

from repro.core import ModelPerformanceIntent, TableJaccardIntent
from repro.core.entropy import RelativeEntropyScorer
from repro.harness import render_table
from repro.lang import CorpusVocabulary, parse_script
from repro.sandbox import run_script

from _shared import competition, publish

S_U = "import pandas as pd\nimport numpy as np\ndf = pd.read_csv('train.csv')"
S_1 = S_U + "\ny = df['Survived']\nX = df.drop('Survived', axis=1)"
S_2 = (
    "import pandas as pd\n"
    "import numpy as np\n"
    "df = pd.read_csv('train.csv')\n"
    "df['Age'] = df['Age'].fillna(df['Age'].mean())\n"
    "df['Embarked'] = df['Embarked'].fillna('S')\n"
    "y = df['Survived']\n"
    "X = df.drop('Survived', axis=1)"
)


def test_table4_case_study(benchmark):
    titanic = competition("titanic")
    scorer = RelativeEntropyScorer(CorpusVocabulary.from_scripts(titanic.scripts))
    jaccard = TableJaccardIntent(tau=0.9)
    model = ModelPerformanceIntent(target="Survived", tau=1.0, task="classification")

    def output_of(script):
        result = run_script(script, data_dir=titanic.data_dir, sample_rows=500)
        assert result.ok
        return result.output

    base_output = output_of(S_U)
    rows, scores = [], {}
    for label, script in [("s_u", S_U), ("s_1", S_1), ("s_2", S_2)]:
        re_score = scorer.score_dag(parse_script(script))
        out = output_of(script)
        delta_j = jaccard.delta(base_output, out)
        delta_m = model.delta(base_output, out)
        scores[label] = (re_score, delta_j, delta_m)
        rows.append([label, f"{re_score:.2f}", f"{delta_j:.2f}", f"{delta_m:.1f}%"])

    publish(
        "table4_case_study",
        render_table(
            ["script", "RE", "delta_J", "delta_M"],
            rows,
            title="Table 4: case study (paper: RE 3.02 / 2.49 / 1.37)",
        ),
    )

    # shape: the fully standardized script is clearly more standard...
    assert scores["s_2"][0] < scores["s_u"][0]
    assert scores["s_2"][0] < scores["s_1"][0]
    # ...while preserving intent within the paper's default thresholds
    for label in ("s_1", "s_2"):
        assert scores[label][1] >= 0.9   # table Jaccard
        assert scores[label][2] <= 5.0   # model accuracy shift (%)

    benchmark.pedantic(
        lambda: scorer.score_dag(parse_script(S_2)), rounds=5, iterations=1
    )
