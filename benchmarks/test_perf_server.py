"""Serving throughput: warm request engine vs cold per-request processes.

The server's pitch is that one-shot CLI economics are wrong for a
standing standardization service: every request pays interpreter start,
imports, corpus curation, and worker spawn, then throws the warm state
away.  This benchmark races the two deployment shapes over the same
mixed 50-request workload (score / standardize / explain /
detect_leakage across two corpora):

- **cold** — each request runs ``python -m repro.server.oneshot`` in a
  fresh process, the per-request cost a CLI user pays today;
- **warm** — all requests pipelined over one socket to a live
  :class:`~repro.server.StandardizationServer`, which coalesces
  same-corpus jobs into shared dispatch waves against registry-pinned
  systems.

Correctness gates before any speed number counts: every cold response
doubles as the ``verify_server`` ground truth, and every warm response
must match it byte-for-byte on the deterministic payload
(:func:`repro.server.protocol.parity_payload`).  A speedup over a wrong
answer is worthless, so parity is asserted for all 50 requests.

Results go to ``benchmarks/results/`` and the machine-readable numbers
to the repo-root ``BENCH_server.json``.  Acceptance bar: ≥3x sustained
warm requests/sec over the cold per-process baseline.
"""

import json
import os
import random
import shutil
import tempfile
import time

import pytest

from repro.corpus import clear_corpus_cache
from repro.harness import render_table
from repro.sandbox import kill_worker_pool
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.jobs import normalize_job
from repro.server.oneshot import run_oneshot_process
from repro.server.protocol import canonical, parity_payload

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_server.json")

N_REQUESTS = 50
#: tiny search budget — the benchmark measures *serving* overhead
#: (process launch, curation, dispatch), not beam-search wall-clock
TINY = {"seq": 2, "beam_size": 1, "sample_rows": 50}

CORPUS_A = [
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = pd.get_dummies(df)",
    "import pandas as pd\n"
    "train = pd.read_csv('diabetes.csv')\n"
    "train = train.fillna(train.mean())\n"
    "train = pd.get_dummies(train)",
]
CORPUS_B = [
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.dropna()\n"
    "df = df.drop_duplicates()\n"
    "df = pd.get_dummies(df)",
    "import pandas as pd\n"
    "data = pd.read_csv('diabetes.csv')\n"
    "data = data.dropna()\n"
    "data = data.drop_duplicates()\n"
    "data = pd.get_dummies(data)",
]
INPUT_SCRIPT = (
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.median())\n"
    "df = pd.get_dummies(df)"
)


def _write_data(directory):
    rng = random.Random(7)
    rows = ["Glucose,Age,Outcome"]
    for _ in range(60):
        age = rng.randrange(-3, 80)
        rows.append(
            f"{rng.randrange(70, 200)},{age if age > 0 else ''},{rng.randrange(2)}"
        )
    with open(os.path.join(directory, "diabetes.csv"), "w") as handle:
        handle.write("\n".join(rows) + "\n")


def _workload(data_dir):
    """The mixed 50-request workload: ~60% score, the rest search ops,
    alternating between two corpora so waves and warm entries interleave."""
    corpora = [CORPUS_A, CORPUS_B]
    ops = ["score", "score", "score", "standardize", "explain", "detect_leakage"]
    requests = []
    for position in range(N_REQUESTS):
        op = ops[position % len(ops)]
        params = {
            "script": INPUT_SCRIPT,
            "corpus": corpora[position % 2],
            "config": dict(TINY),
        }
        if op != "score":
            params["data_dir"] = data_dir
        requests.append({"id": position, "op": op, "params": params})
    return requests


def test_perf_server_throughput():
    clear_corpus_cache()
    kill_worker_pool()
    work_dir = tempfile.mkdtemp(prefix="repro-bench-server-")
    try:
        _write_data(work_dir)
        requests = _workload(work_dir)

        # ------------------------------------------- cold: process per request
        # (each response doubles as the verify_server audit ground truth)
        cold_responses = []
        started = time.perf_counter()
        for message in requests:
            job = normalize_job(message)
            cold_responses.append(
                run_oneshot_process(job, request_id=message["id"])
            )
        cold_s = time.perf_counter() - started

        # --------------------------------------------- warm: one live server
        sock = os.path.join(work_dir, "repro.sock")
        with ServerThread(ServerConfig(socket_path=sock)) as handle:
            with ServerClient(socket_path=sock, timeout=600.0) as client:
                client.ping()  # connection established outside the clock
                started = time.perf_counter()
                ids = client.submit_jobs(requests)
                warm_responses = client.collect_jobs(ids)
                warm_s = time.perf_counter() - started
                stats = client.stats()

        # ------------------------------------------------- correctness gates
        assert all(response["ok"] for response in warm_responses)
        mismatches = [
            message["id"]
            for message, warm, cold in zip(requests, warm_responses, cold_responses)
            if canonical(parity_payload(warm)) != canonical(parity_payload(cold))
        ]
        assert mismatches == [], f"warm/cold divergence on requests {mismatches}"

        cold_rps = N_REQUESTS / cold_s
        warm_rps = N_REQUESTS / warm_s
        speedup = warm_rps / cold_rps
        report = {
            "workload": {
                "requests": N_REQUESTS,
                "corpora": 2,
                "ops": ["score", "standardize", "explain", "detect_leakage"],
                "config": TINY,
            },
            "cold_total_s": round(cold_s, 3),
            "warm_total_s": round(warm_s, 3),
            "cold_requests_per_s": round(cold_rps, 2),
            "warm_requests_per_s": round(warm_rps, 2),
            "warm_over_cold_speedup": round(speedup, 2),
            "audited_requests": N_REQUESTS,
            "audit_mismatches": 0,
            "server_stats": {
                "waves": stats["waves"],
                "coalesced_waves": stats["coalesced_waves"],
                "coalesced_jobs": stats["coalesced_jobs"],
                "warm_hits": stats["warm_hits"],
                "warm_misses": stats["warm_misses"],
                "latency_p50_ms": stats["latency_p50_ms"],
                "latency_p95_ms": stats["latency_p95_ms"],
                "queue_peak_depth": stats["queue_peak_depth"],
            },
            "environment": bench_environment(),
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

        publish(
            "perf_server",
            render_table(
                ["deployment", "total (s)", "req/s"],
                [
                    [
                        "cold: process per request",
                        f"{cold_s:.2f}",
                        f"{cold_rps:.2f}",
                    ],
                    [
                        "warm: pipelined server",
                        f"{warm_s:.2f}",
                        f"{warm_rps:.2f}",
                    ],
                ],
                title=(
                    f"Mixed {N_REQUESTS}-request workload, every response "
                    f"audited bit-identical: {speedup:.1f}x"
                ),
            )
            + (
                f"\nwaves={stats['waves']} "
                f"(coalesced={stats['coalesced_waves']}, "
                f"jobs sharing a wave={stats['coalesced_jobs']}), "
                f"warm hits={stats['warm_hits']}/"
                f"{stats['warm_hits'] + stats['warm_misses']}, "
                f"p50={stats['latency_p50_ms']}ms "
                f"p95={stats['latency_p95_ms']}ms"
                f"\n[recorded in {BENCH_JSON}]"
            ),
        )

        # warm reuse must actually be happening, not 50 cold builds inside
        # the server
        assert stats["warm_hits"] >= N_REQUESTS - 12, report
        # the acceptance bar: sustained warm throughput ≥3x the cold
        # per-request process baseline
        assert speedup >= 3.0, report
    finally:
        kill_worker_pool()
        clear_corpus_cache()
        shutil.rmtree(work_dir, ignore_errors=True)
