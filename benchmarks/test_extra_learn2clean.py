"""Extra experiment (beyond the paper) — Learn2Clean vs. LucidScript.

The paper's related work positions Learn2Clean as the closest multi-step
system, solving "a different problem": it reinforcement-learns the
pipeline that maximizes downstream model performance, with no corpus and
no user intent.  This benchmark runs both systems on the same Medical
user scripts and measures both objectives:

* standardness (% RE improvement against the corpus) — LucidScript's
  objective, where Learn2Clean has no advantage;
* downstream accuracy of the emitted dataset — Learn2Clean's objective,
  which it must not degrade.
"""

import numpy as np

from repro.baselines import Learn2Clean
from repro.core import LucidScript, TableJaccardIntent, percent_improvement
from repro.core.entropy import RelativeEntropyScorer
from repro.harness import render_table
from repro.lang import CorpusVocabulary, ScriptError, parse_script
from repro.ml import DownstreamEvaluationError, evaluate_downstream
from repro.sandbox import run_script

from _shared import bench_config, competition, publish

N_SCRIPTS = 4


def _accuracy_of(script: str, corpus) -> float:
    result = run_script(script, data_dir=corpus.data_dir, sample_rows=400)
    if not result.ok or result.output is None:
        return 0.0
    try:
        return evaluate_downstream(
            result.output, corpus.target, task=corpus.task
        ).accuracy
    except DownstreamEvaluationError:
        return 0.0


def test_extra_learn2clean_objectives(benchmark):
    corpus = competition("medical")
    ls_re, l2c_re = [], []
    input_acc, ls_acc, l2c_acc = [], [], []

    for user_script, rest in list(corpus.leave_one_out())[:N_SCRIPTS]:
        scorer = RelativeEntropyScorer(CorpusVocabulary.from_scripts(rest))
        re_before = scorer.score_dag(parse_script(user_script))

        system = LucidScript(
            rest, data_dir=corpus.data_dir,
            intent=TableJaccardIntent(tau=0.9), config=bench_config(),
        )
        ls_result = system.standardize(user_script)
        ls_re.append(ls_result.improvement)
        ls_acc.append(_accuracy_of(ls_result.output_script, corpus))

        cleaner = Learn2Clean(
            data_dir=corpus.data_dir, target=corpus.target, task=corpus.task,
            n_episodes=10,
        )
        rewritten = cleaner.rewrite(user_script, rest)
        try:
            re_after = scorer.score_dag(parse_script(rewritten))
            l2c_re.append(percent_improvement(re_before, re_after))
        except ScriptError:
            l2c_re.append(0.0)
        l2c_acc.append(_accuracy_of(rewritten, corpus))

        input_acc.append(_accuracy_of(user_script, corpus))

    rows = [
        ["LucidScript", f"{np.mean(ls_re):.1f}%", f"{np.mean(ls_acc):.3f}"],
        ["Learn2Clean", f"{np.mean(l2c_re):.1f}%", f"{np.mean(l2c_acc):.3f}"],
        ["(input scripts)", "0.0%", f"{np.mean(input_acc):.3f}"],
    ]
    publish(
        "extra_learn2clean",
        render_table(
            ["system", "mean RE improvement", "mean downstream accuracy"],
            rows,
            title="Extra: accuracy-seeking (Learn2Clean) vs standardness-"
                  "seeking (LS) on Medical",
        ),
    )

    # different objectives, different winners:
    # LS dominates on standardness...
    assert np.mean(ls_re) > np.mean(l2c_re)
    # ...while neither system wrecks the downstream task
    assert np.mean(l2c_acc) >= np.mean(input_acc) - 0.05
    assert np.mean(ls_acc) >= np.mean(input_acc) - 0.05

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
