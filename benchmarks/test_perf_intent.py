"""Intent-verification throughput: naive pairwise vs content-addressed.

A VerifyAllConstraints-shaped workload — one wide, NA-heavy original
output checked against a simulated 200-candidate wave in which most
candidates perturb only 0-3 columns and about a fifth are content-
identical to the original — run through the naive pairwise measure
(both cell sets rebuilt per check) and the prepared
:class:`repro.core.intent.PreparedTableJaccard` engine (original frozen
once, per-column fingerprint memo shared across the wave).  Bit-identity
of every delta is asserted before any speed number counts.

Results are published to ``benchmarks/results/`` and the machine-readable
speedups to the repo-root ``BENCH_intent.json``.  The acceptance bar:
the prepared engine makes the median intent check at least 5x faster on
the decomposed ``cells`` mode.
"""

import json
import os
import random
import statistics
import time

import pytest

from repro.core import IntentStats, TableJaccardIntent
from repro.harness import render_table
from repro.minipandas import NA, DataFrame

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_intent.json")

ROUNDS = 3
N_ROWS = 600
N_COLS = 44
WAVE = 200
NA_RATE = 0.3
IDENTICAL_SHARE = 0.2
MODES = ("cells", "values", "rows")


def _original(rng):
    data = {}
    for c in range(N_COLS):
        if c % 3 == 0:
            pool = lambda: rng.randrange(0, 40)
        elif c % 3 == 1:
            pool = lambda: round(rng.uniform(-5.0, 5.0), 2)
        else:
            pool = lambda: rng.choice(["low", "mid", "high", "n/a", ""])
        data[f"col_{c:02d}"] = [
            NA if rng.random() < NA_RATE else pool() for _ in range(N_ROWS)
        ]
    return DataFrame(data)


def _wave(rng, original):
    """200 candidates: ~20% identical, the rest perturb 0-3 columns."""
    names = list(original.columns)
    base = {name: original[name].tolist() for name in names}
    candidates = []
    for _ in range(WAVE):
        if rng.random() < IDENTICAL_SHARE:
            candidates.append(original.copy())
            continue
        data = {name: values for name, values in base.items()}
        for name in rng.sample(names, rng.randrange(0, 4)):
            values = list(data[name])
            for _ in range(rng.randrange(1, 6)):
                values[rng.randrange(N_ROWS)] = rng.choice(
                    [NA, "perturbed", -1, 9.99]
                )
            data[name] = values
        candidates.append(DataFrame(data))
    return candidates


def _time_naive(intent, original, candidates):
    started = time.perf_counter()
    results = [intent.check(original, candidate) for candidate in candidates]
    return results, time.perf_counter() - started


def _time_prepared(intent, original, candidates, counters):
    started = time.perf_counter()
    prepared = intent.prepare(original, counters=counters)
    results = [prepared.check(candidate) for candidate in candidates]
    return results, time.perf_counter() - started


def test_perf_intent_prepared_wave():
    rng = random.Random(11)
    original = _original(rng)

    per_mode = {}
    counters = {mode: IntentStats() for mode in MODES}
    for mode in MODES:
        intent = TableJaccardIntent(tau=0.5, mode=mode)
        naive_s, prepared_s = [], []
        for round_no in range(ROUNDS):
            wave = _wave(random.Random(100 + round_no), original)
            naive_results, naive_wall = _time_naive(intent, original, wave)
            prepared_results, prepared_wall = _time_prepared(
                intent, original, wave, counters[mode]
            )
            # bit-identity first: every (delta, verdict) pair must match
            assert prepared_results == naive_results
            naive_s.append(naive_wall)
            prepared_s.append(prepared_wall)
        naive_ms = statistics.median(naive_s) / WAVE * 1000
        prepared_ms = statistics.median(prepared_s) / WAVE * 1000
        per_mode[mode] = {
            "naive_check_ms": round(naive_ms, 4),
            "prepared_check_ms": round(prepared_ms, 4),
            "speedup": round(naive_ms / prepared_ms, 2),
        }

    headline = per_mode["cells"]["speedup"]
    cells = counters["cells"]
    report = {
        "workload": {
            "rows": N_ROWS,
            "columns": N_COLS,
            "wave_candidates": WAVE,
            "na_rate": NA_RATE,
            "identical_share": IDENTICAL_SHARE,
            "rounds": ROUNDS,
        },
        "modes": per_mode,
        "intent_check_speedup": headline,
        "cells_counters": {
            "checks": cells.checks,
            "column_set_reuse": cells.column_set_reuse,
            "short_circuits": cells.short_circuits,
        },
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_intent_engine",
        render_table(
            ["mode", "naive check (ms)", "prepared check (ms)", "speedup"],
            [
                [
                    mode,
                    f"{per_mode[mode]['naive_check_ms']:.2f}",
                    f"{per_mode[mode]['prepared_check_ms']:.2f}",
                    f"{per_mode[mode]['speedup']:.1f}x",
                ]
                for mode in MODES
            ],
            title=(
                f"Intent checks on a {N_ROWS}x{N_COLS} NA-heavy table, "
                f"{WAVE}-candidate wave (median of {ROUNDS} rounds)"
            ),
        )
        + f"\n[speedups recorded in {BENCH_JSON}]",
    )

    # the acceptance bar: the decomposed cells mode at least quintuples
    # per-check throughput on the wide-table wave
    assert headline >= 5.0, report
    # the engine really ran incrementally: unchanged columns answered from
    # the memo and identical candidates short-circuited
    assert cells.column_set_reuse > 0
    assert cells.short_circuits > 0


def test_perf_intent_verify_mode_is_clean():
    """Self-audit: verify mode recomputes every prepared delta through the
    naive path and raises on any float divergence; a clean pass over a
    candidate wave plus measured timings is the engine's receipt."""
    rng = random.Random(23)
    original = _original(rng)
    counters = IntentStats()
    prepared = TableJaccardIntent(tau=0.5, mode="cells").prepare(
        original, counters=counters, verify=True
    )
    for candidate in _wave(random.Random(5), original)[:40]:
        prepared.check(candidate)
    assert counters.checks == 40
    assert counters.naive_s > 0.0 and counters.prepared_s > 0.0
