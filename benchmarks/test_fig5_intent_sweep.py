"""Figure 5 — median % improvement vs the user-intent thresholds.

Left panel: sweep the table-Jaccard threshold tau_J in [0.5, 1.0] — as the
constraint relaxes (smaller tau_J) LS standardizes more.  Right panel:
sweep the model-performance threshold tau_M in [0%, 5%] — improvement
grows (weakly) as the constraint relaxes.
"""

import numpy as np

from repro.harness import render_series

from _shared import competition, ls_run, publish

# two representative datasets keep the sweep affordable; the paper's
# qualitative finding (monotone relaxation benefit) is per-dataset anyway
SWEEP_DATASETS = ("medical", "nlp")
TAU_J_GRID = (1.0, 0.9, 0.7, 0.5)
TAU_M_GRID = (0.0, 1.0, 2.0, 5.0)


def _median_improvement(dataset, intent_kind, tau):
    return float(np.median(ls_run(dataset, intent_kind, tau=tau).improvements))


def test_fig5_jaccard_threshold_sweep(benchmark):
    sections = []
    for dataset in SWEEP_DATASETS:
        points = [
            (tau, _median_improvement(dataset, "jaccard", tau)) for tau in TAU_J_GRID
        ]
        sections.append(
            render_series(
                points, "tau_J", "median % improvement",
                title=f"Figure 5 (left) — {dataset}",
            )
        )
        by_tau = dict(points)
        # relaxing the constraint never hurts (weak monotonicity)
        assert by_tau[0.5] >= by_tau[1.0] - 1e-9
        assert by_tau[0.7] >= by_tau[1.0] - 1e-9
        # all thresholds keep the non-degradation floor
        assert all(v >= 0.0 for v in by_tau.values())
    publish("fig5_tau_j_sweep", "\n\n".join(sections))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig5_model_threshold_sweep(benchmark):
    sections = []
    for dataset in SWEEP_DATASETS:
        points = [
            (tau, _median_improvement(dataset, "model", tau)) for tau in TAU_M_GRID
        ]
        sections.append(
            render_series(
                points, "tau_M (%)", "median % improvement",
                title=f"Figure 5 (right) — {dataset}",
            )
        )
        by_tau = dict(points)
        assert by_tau[5.0] >= by_tau[0.0] - 1e-9
        assert all(v >= 0.0 for v in by_tau.values())
    publish("fig5_tau_m_sweep", "\n\n".join(sections))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
