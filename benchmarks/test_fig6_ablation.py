"""Figure 6 — ablations: sequence length and beam size.

Left: median % improvement grows with the maximum sequence length
(fast at first, plateauing from seq=8 to seq=16).  Right: improvement
grows (weakly) with beam size K.  A third series ablates the diversity
clustering (Algorithm 3), which the paper lists as one of its five
optimizations.
"""

import numpy as np

from repro.harness import render_series

from _shared import all_competitions, ls_run, publish

SEQ_GRID = (2, 4, 8, 16)
BEAM_GRID = (1, 2, 3)
ABLATION_DATASETS = ("medical", "titanic")


def _mean_median_improvement(datasets, **params):
    values = [
        float(np.median(ls_run(d, "jaccard", **params).improvements))
        for d in datasets
    ]
    return float(np.mean(values))


def test_fig6_sequence_length(benchmark):
    points = [
        (seq, _mean_median_improvement(ABLATION_DATASETS, seq=seq))
        for seq in SEQ_GRID
    ]
    publish(
        "fig6_sequence_length",
        render_series(
            points, "seq", "median % improvement",
            title="Figure 6 (left): varied sequence lengths",
        ),
    )
    by_seq = dict(points)
    # longer budgets never hurt, and most of the gain arrives early
    assert by_seq[16] >= by_seq[2] - 1e-9
    assert by_seq[8] >= by_seq[2] - 1e-9
    early_gain = by_seq[8] - by_seq[2]
    late_gain = by_seq[16] - by_seq[8]
    assert late_gain <= max(early_gain, 5.0)  # plateau from 8 -> 16
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig6_beam_size(benchmark):
    points = [
        (k, _mean_median_improvement(ABLATION_DATASETS, beam_size=k))
        for k in BEAM_GRID
    ]
    publish(
        "fig6_beam_size",
        render_series(
            points, "K", "median % improvement",
            title="Figure 6 (right): varied beam sizes",
        ),
    )
    by_k = dict(points)
    assert by_k[3] >= by_k[1] - 1e-9
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig6_diversity_ablation(benchmark):
    """Extra ablation: Algorithm 3's diversity clustering on/off."""
    with_div = _mean_median_improvement(ABLATION_DATASETS, diversity=True)
    without_div = _mean_median_improvement(ABLATION_DATASETS, diversity=False)
    publish(
        "fig6_diversity_ablation",
        render_series(
            [(1, with_div), (0, without_div)],
            "diversity(1=on)", "median % improvement",
            title="Ablation: diversity clustering (Algorithm 3)",
        ),
    )
    # both configurations must respect the non-degradation floor; diversity
    # is a search-quality knob, not a correctness one
    assert with_div >= 0.0 and without_div >= 0.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
