"""Corpus-index throughput: cold offline phase vs incremental refresh.

A standing-corpus workload — ~60 distinct preparation scripts on disk,
one of which just changed — run through the cold path
(``CorpusVocabulary.from_scripts`` reparses everything) and the
incremental path (:class:`repro.corpus.CorpusIndex` stat-scans the
directory, reparses exactly the changed file, and re-derives only the
touched statistics).  Bit-identity of the resulting vocabulary is
audited (``CorpusIndex.verify``) before any speed number counts.

Results are published to ``benchmarks/results/`` and the machine-
readable speedup to the repo-root ``BENCH_corpus.json``.  The acceptance
bar: the warm refresh after a single-file edit reparses exactly one
script and beats the cold rebuild by at least 10x.
"""

import json
import os
import random
import shutil
import statistics
import tempfile
import time

import pytest

from repro.corpus import CorpusIndex
from repro.harness import render_table
from repro.lang import CorpusVocabulary

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_corpus.json")

ROUNDS = 3
N_SCRIPTS = 60

_READS = ["diabetes.csv", "train.csv", "data.csv"]
_COLUMNS = ["Glucose", "Age", "SkinThickness", "Pregnancies", "BMI", "Insulin"]
_FILLS = ["df.mean()", "df.median()", "0"]


def _script(rng):
    """One synthetic preparation script: read, clean, filter, encode."""
    lines = [
        "import pandas as pd",
        f"df = pd.read_csv('{rng.choice(_READS)}')",
        f"df = df.fillna({rng.choice(_FILLS)})",
    ]
    for column in rng.sample(_COLUMNS, rng.randrange(1, 4)):
        lines.append(f"df = df[df['{column}'] < {rng.randrange(40, 200)}]")
    if rng.random() < 0.5:
        lines.append("df = df.dropna()")
    lines.append("df = pd.get_dummies(df)")
    return "\n".join(lines) + "\n"


def _materialize(directory, rng):
    scripts = []
    seen = set()
    while len(scripts) < N_SCRIPTS:
        script = _script(rng)
        if script in seen:
            continue
        seen.add(script)
        scripts.append(script)
    for position, script in enumerate(scripts):
        with open(os.path.join(directory, f"prep_{position:03d}.py"), "w") as handle:
            handle.write(script)
    return scripts


def test_perf_corpus_warm_refresh():
    rng = random.Random(17)
    directory = tempfile.mkdtemp(prefix="repro-bench-corpus-")
    try:
        scripts = _materialize(directory, rng)

        index = CorpusIndex()
        started = time.perf_counter()
        build_report = index.refresh(directory)
        index_build_s = time.perf_counter() - started
        assert build_report.added == N_SCRIPTS

        cold_s, warm_s = [], []
        reparse_counts = []
        for round_no in range(ROUNDS):
            # edit exactly one script on disk
            victim = rng.randrange(N_SCRIPTS)
            scripts[victim] = _script(rng)
            with open(
                os.path.join(directory, f"prep_{victim:03d}.py"), "w"
            ) as handle:
                handle.write(scripts[victim])

            started = time.perf_counter()
            report = index.refresh()
            index.to_vocabulary()
            warm_s.append(time.perf_counter() - started)
            reparse_counts.append(report.reparsed)
            assert report.changed == 1
            assert report.unchanged_stat == N_SCRIPTS - 1

            started = time.perf_counter()
            CorpusVocabulary.from_scripts(scripts)
            cold_s.append(time.perf_counter() - started)

        # bit-identity first: the incrementally maintained index must
        # equal a from-scratch rebuild before any speed number counts
        index.verify()

        cold_ms = statistics.median(cold_s) * 1000
        warm_ms = statistics.median(warm_s) * 1000
        speedup = cold_ms / warm_ms
        report = {
            "workload": {
                "scripts": N_SCRIPTS,
                "changed_per_round": 1,
                "rounds": ROUNDS,
            },
            "cold_build_ms": round(cold_ms, 3),
            "warm_refresh_ms": round(warm_ms, 3),
            "index_build_ms": round(index_build_s * 1000, 3),
            "reparsed_per_round": reparse_counts,
            "corpus_refresh_speedup": round(speedup, 2),
            "environment": bench_environment(),
        }
        with open(BENCH_JSON, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

        publish(
            "perf_corpus_index",
            render_table(
                ["path", "wall (ms)", "reparses"],
                [
                    ["cold from_scripts", f"{cold_ms:.1f}", str(N_SCRIPTS)],
                    ["warm refresh (1 file changed)", f"{warm_ms:.1f}",
                     str(reparse_counts[-1])],
                ],
                title=(
                    f"Offline phase over {N_SCRIPTS} scripts after a "
                    f"single-file edit (median of {ROUNDS} rounds): "
                    f"{speedup:.1f}x"
                ),
            )
            + f"\n[speedup recorded in {BENCH_JSON}]",
        )

        # the acceptance bar: exactly one reparse per edited file, and
        # at least an order of magnitude over the cold rebuild
        assert reparse_counts == [1] * ROUNDS, report
        assert speedup >= 10.0, report
    finally:
        shutil.rmtree(directory, ignore_errors=True)
