"""Figure 3 — user study (simulated rater panel).

34 simulated raters score each method's output for one Medical use case
on standardness and helpfulness (1-5), with and without user intent; LS
must rank first on both, significantly (t-test, p < 0.05) in the
without-intent case — the paper's reported outcome.

The raters are simulated (see DESIGN.md substitution #7); this benchmark
validates the rating pipeline, not human judgment.
"""

from repro.baselines import AutoTables, SyntaxCleaner, gpt35, gpt4
from repro.core import LucidScript, TableJaccardIntent, table_jaccard
from repro.harness import render_table, run_user_study, significance_against
from repro.harness.user_study import RaterPanel
from repro.sandbox import run_script

from _shared import bench_config, competition, publish


def _outputs_for_case(corpus, user_script, rest):
    system = LucidScript(
        rest, data_dir=corpus.data_dir,
        intent=TableJaccardIntent(tau=0.9), config=bench_config(),
    )
    outputs = {"LS": system.standardize(user_script).output_script}
    for baseline in (
        SyntaxCleaner(), gpt35(seed=0), gpt4(seed=0),
        AutoTables(data_dir=corpus.data_dir),
    ):
        outputs[baseline.name] = baseline.rewrite(user_script, rest)
    return outputs


def _preservation(corpus, user_script, outputs):
    base = run_script(user_script, data_dir=corpus.data_dir, sample_rows=300).output
    scores = {}
    for method, script in outputs.items():
        result = run_script(script, data_dir=corpus.data_dir, sample_rows=300)
        if not result.ok or result.output is None:
            scores[method] = 0.0
        else:
            scores[method] = table_jaccard(base, result.output)
    return scores


def _most_nonstandard_case(corpus):
    """The study shows a use case with room to standardize: pick the
    leave-one-out script with the highest RE against its peers."""
    from repro.core.entropy import RelativeEntropyScorer
    from repro.lang import CorpusVocabulary, parse_script

    best = None
    for user_script, rest in corpus.leave_one_out():
        scorer = RelativeEntropyScorer(CorpusVocabulary.from_scripts(rest))
        score = scorer.score_dag(parse_script(user_script))
        if best is None or score > best[0]:
            best = (score, user_script, rest)
    return best[1], best[2]


def test_fig3_user_study(benchmark):
    corpus = competition("medical")
    user_script, rest = _most_nonstandard_case(corpus)
    outputs = _outputs_for_case(corpus, user_script, rest)

    # without-user-intent (cold start) case
    cold = run_user_study(outputs, rest, seed=0)
    # with-user-intent case: helpfulness blends intent preservation
    preservation = _preservation(corpus, user_script, outputs)
    warm = run_user_study(
        outputs, rest, intent_preservation=preservation, seed=1
    )

    rows = []
    for method in sorted(outputs):
        rows.append(
            [
                method,
                f"{cold[method].mean_standard:.2f}",
                f"{cold[method].mean_helpful:.2f}",
                f"{warm[method].mean_standard:.2f}",
                f"{warm[method].mean_helpful:.2f}",
            ]
        )
    pvalues = significance_against(cold, ls_method="LS")
    publish(
        "fig3_user_study",
        render_table(
            ["method", "standard (cold)", "helpful (cold)",
             "standard (intent)", "helpful (intent)"],
            rows,
            title="Figure 3: simulated user study, mean ratings (1-5)",
        )
        + "\np-values (standardness, LS vs baseline): "
        + ", ".join(f"{m}={p:.2g}" for m, p in sorted(pvalues.items())),
    )

    # LS rated most standard and most helpful in both cases
    for outcomes in (cold, warm):
        ls = outcomes["LS"]
        for method, outcome in outcomes.items():
            if method == "LS":
                continue
            assert ls.mean_standard >= outcome.mean_standard - 1e-9
            assert ls.mean_helpful >= outcome.mean_helpful - 1e-9
    # statistical significance vs every baseline in the cold-start case
    assert all(p < 0.05 for p in pvalues.values())

    benchmark.pedantic(
        lambda: RaterPanel(seed=0).rate(0.8), rounds=10, iterations=1
    )
