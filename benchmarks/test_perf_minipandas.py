"""minipandas table-engine throughput: columnar kernels vs naive loops.

A sandbox-shaped statement mix — the hot ops every candidate script in a
beam wave actually executes (``fillna``, ``dropna``, ``duplicated``/
``drop_duplicates``, ``get_dummies``, boolean masks/``take``, groupby
aggregation) — timed two ways over the same mixed-dtype table:

* **kernel** — the live single-pass columnar kernels over shared
  copy-on-write payloads;
* **naive** — the row-at-a-time per-element ``iloc`` references in
  ``repro.minipandas._naive`` (the audit oracle, structurally the old
  implementation).

Every pair of results is checked bit-identical before any speed claim
counts.  Results are published to ``benchmarks/results/`` and the
machine-readable statements/sec to the repo-root ``BENCH_minipandas.json``.
The acceptance bar: the kernel path sustains at least 3x the naive
statements/sec on this workload.
"""

import json
import os
import statistics
import time

import numpy as np
import pytest

import repro.minipandas as mp
from repro.harness import render_table
from repro.minipandas import _naive as naive
from repro.minipandas import kernels

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_minipandas.json")

ROUNDS = 5
N_ROWS = 4000


@pytest.fixture(scope="module")
def bench_frame():
    rng = np.random.default_rng(11)
    return mp.DataFrame(
        {
            "A": rng.integers(0, 12, N_ROWS).tolist(),
            "B": rng.normal(120, 30, N_ROWS).round(1).tolist(),
            "C": [int(v) if v > 0 else None for v in rng.integers(-3, 80, N_ROWS)],
            "Sex": rng.choice(["m", "f", None], N_ROWS).tolist(),
            "Embarked": rng.choice(["S", "C", "Q", "__na__"], N_ROWS).tolist(),
            "Flag": rng.integers(0, 2, N_ROWS).astype(bool).tolist(),
        }
    )


def _statements(frame):
    """The sandbox-shaped statement mix: (name, kernel path, naive path).

    Both closures compute the same table from the same inputs; the naive
    side routes through :mod:`repro.minipandas._naive` (groupby builds its
    groups with the per-row ``iloc`` loop there too).
    """
    mask_keep = [pos for pos in range(len(frame)) if pos % 3 != 0]
    return [
        (
            "df.fillna(value)",
            lambda: frame.fillna({"C": 0, "Sex": "m"}),
            lambda: naive.fillna_frame(frame, {"C": 0, "Sex": "m"}),
        ),
        (
            "df.dropna()",
            lambda: frame.dropna(),
            lambda: naive.dropna_frame(frame, 0, "any", None, None),
        ),
        (
            "df.duplicated(subset)",
            lambda: frame.duplicated(subset=["A", "Sex"]),
            lambda: naive.duplicated_frame(frame, ["A", "Sex"]),
        ),
        (
            "df.drop_duplicates()",
            lambda: frame.drop_duplicates(subset=["A", "Embarked"]),
            lambda: naive.take_frame(
                frame,
                [
                    pos
                    for pos, flag in enumerate(
                        naive.duplicated_frame(frame, ["A", "Embarked"])
                    )
                    if not flag
                ],
            ),
        ),
        (
            "df[mask] / take",
            lambda: frame[frame["B"] < 150],
            lambda: naive.take_frame(
                frame,
                [
                    pos
                    for pos in range(len(frame))
                    if not mp.is_missing(frame["B"].iloc[pos])
                    and frame["B"].iloc[pos] < 150
                ],
            ),
        ),
        (
            "pd.get_dummies(df)",
            lambda: mp.get_dummies(frame, columns=["Sex", "Embarked"]),
            lambda: naive.get_dummies_frame(
                frame, ["Sex", "Embarked"], None, "_", False, int
            ),
        ),
        (
            "df.groupby(k).agg",
            lambda: frame.groupby("Embarked").agg("mean"),
            lambda: naive.groupby_agg_frame(
                frame,
                ["Embarked"],
                {c: "mean" for c in ("A", "B", "C", "Flag")},
            ),
        ),
        (
            "df.take(keep)",
            lambda: frame.take(mask_keep),
            lambda: naive.take_frame(frame, mask_keep),
        ),
    ]


def _rate(thunks):
    """Statements/sec for one path, median over ROUNDS sweeps."""
    rates = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        for thunk in thunks:
            thunk()
        elapsed = time.perf_counter() - started
        rates.append(len(thunks) / elapsed)
    return statistics.median(rates)


def test_perf_minipandas_kernels(bench_frame):
    statements = _statements(bench_frame)

    # bit-identity first: a fast wrong answer counts for nothing
    for name, kernel_path, naive_path in statements:
        kernel_result, naive_result = kernel_path(), naive_path()
        if isinstance(kernel_result, mp.DataFrame):
            assert kernels.frames_match(kernel_result, naive_result), name
        else:
            assert kernels.series_match(kernel_result, naive_result), name

    kernel_rate = _rate([kernel for _, kernel, _ in statements])
    naive_rate = _rate([ref for _, _, ref in statements])
    improvement = kernel_rate / naive_rate

    report = {
        "workload": {
            "rows": N_ROWS,
            "columns": len(bench_frame.columns),
            "statements": [name for name, _, _ in statements],
            "rounds": ROUNDS,
        },
        "statements_per_sec": {
            "kernel": round(kernel_rate, 1),
            "naive": round(naive_rate, 1),
        },
        "improvement_vs_naive": round(improvement, 2),
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_minipandas_kernels",
        render_table(
            ["path", "statements/sec", "vs naive"],
            [
                ["naive row-at-a-time", f"{naive_rate:.1f}", "1.0x"],
                ["columnar kernels", f"{kernel_rate:.1f}", f"{improvement:.1f}x"],
            ],
            title=(
                f"minipandas hot ops on a {N_ROWS}-row mixed-dtype table "
                f"({len(statements)}-statement sandbox mix)"
            ),
        )
        + f"\n[statements/sec recorded in {BENCH_JSON}]",
    )

    # the acceptance bar: the columnar kernels sustain at least 3x the
    # naive path's statement throughput on the sandbox-shaped workload
    assert improvement >= 3.0, report


def test_perf_kernels_audit_overhead_is_bounded(bench_frame):
    """The audit shadow-runs the naive path, so audited throughput should
    land near the naive rate — and, critically, raise nothing."""
    statements = _statements(bench_frame)
    with mp.kernel_audit():
        for _, kernel_path, _ in statements:
            kernel_path()  # KernelMismatchError here fails the benchmark
