"""Sandbox execution-engine throughput: cold vs incremental.

A beam-search-shaped workload — waves of candidate scripts sharing a long
statement prefix and differing in their suffix, exactly what
``GetTopKBeams`` produces — checked two ways:

* **cold** — ``check_executes`` re-runs every candidate from line 1;
* **incremental** — ``IncrementalExecutor`` resumes each candidate from
  the longest snapshotted prefix (the hardware-independent win).

Parallel-engine numbers live in ``benchmarks/test_perf_parallel.py`` →
``BENCH_parallel.json``, which records effective cores and skips speedup
assertions on oversubscribed hosts — this module's earlier ``parallel_x2``
figure was measured with 2 workers on a 1-core box and reported the
resulting 0.64x as if it were an engine property.

Results are published to ``benchmarks/results/`` and the machine-readable
speedups to the repo-root ``BENCH_sandbox.json``.  The acceptance bar: the
incremental path is at least 2x faster (median wave) than cold execution.
"""

import json
import os
import statistics
import time

import numpy as np
import pytest

import repro.minipandas as mp
from repro.harness import render_table
from repro.sandbox import IncrementalExecutor, check_executes

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_sandbox.json")

ROUNDS = 5
SAMPLE_ROWS = 200

PREFIX = (
    "import pandas as pd\n"
    "df = pd.read_csv('bench.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['B'] < 150]\n"
    "df = df.drop_duplicates()\n"
    "df = df.reset_index()"
)

#: One beam wave: candidate extensions of the shared prefix (the mix of
#: valid and failing suffixes mirrors what the search actually checks).
SUFFIXES = [
    "df = df.dropna()",
    "df = pd.get_dummies(df)",
    "df = df.drop('A', axis=1)",
    "df = df.drop('NoSuchColumn', axis=1)",
    "df = df[df['C'] > 10]",
    "df = df.sort_values('B')",
    "df = df.rename(columns={'A': 'a'})",
    "df = df[df['Missing'] > 0]",
    "df = df.fillna(0)",
    "df = df.drop('C', axis=1)",
]


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("sandbox-bench")
    rng = np.random.default_rng(11)
    n = 4000
    frame = mp.DataFrame(
        {
            "A": rng.integers(0, 12, n).tolist(),
            "B": rng.normal(120, 30, n).round(1).tolist(),
            "C": [int(v) if v > 0 else None for v in rng.integers(-3, 80, n)],
            "D": rng.normal(0, 1, n).round(3).tolist(),
        }
    )
    frame.to_csv(str(root / "bench.csv"))
    return str(root)


def _wave_sources():
    return [f"{PREFIX}\n{suffix}" for suffix in SUFFIXES]


def test_perf_sandbox_engines(bench_dir):
    sources = _wave_sources()

    # warm the CSV parse cache once so all three engines start even
    check_executes(sources[0], data_dir=bench_dir, sample_rows=SAMPLE_ROWS)

    cold_waves = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        cold_verdicts = [
            check_executes(s, data_dir=bench_dir, sample_rows=SAMPLE_ROWS)
            for s in sources
        ]
        cold_waves.append(time.perf_counter() - started)

    executor = IncrementalExecutor(data_dir=bench_dir, sample_rows=SAMPLE_ROWS)
    incremental_waves = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        incremental_verdicts = [executor.check_executes(s) for s in sources]
        incremental_waves.append(time.perf_counter() - started)

    # both engines must agree before any speed claim counts
    assert incremental_verdicts == cold_verdicts

    cold_ms = statistics.median(cold_waves) * 1000
    incremental_ms = statistics.median(incremental_waves) * 1000
    incremental_speedup = cold_ms / incremental_ms

    report = {
        "workload": {
            "wave_size": len(sources),
            "rounds": ROUNDS,
            "prefix_statements": PREFIX.count("\n") + 1,
            "sample_rows": SAMPLE_ROWS,
            "csv_rows": 4000,
        },
        "median_wave_ms": {
            "cold": round(cold_ms, 3),
            "incremental": round(incremental_ms, 3),
        },
        "speedup_vs_cold": {
            "incremental": round(incremental_speedup, 2),
        },
        "parallel_numbers": "see BENCH_parallel.json (test_perf_parallel.py)",
        "incremental_stats": executor.stats.as_dict(),
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_sandbox_engines",
        render_table(
            ["engine", "median wave (ms)", "speedup vs cold"],
            [
                ["cold check_executes", f"{cold_ms:.1f}", "1.0x"],
                ["incremental prefix-resume", f"{incremental_ms:.1f}",
                 f"{incremental_speedup:.1f}x"],
            ],
            title=(
                "Sandbox engines on a beam-shaped wave "
                f"({len(sources)} candidates, shared {PREFIX.count(chr(10)) + 1}"
                "-statement prefix)"
            ),
        )
        + f"\n[speedups recorded in {BENCH_JSON}]",
    )

    # the acceptance bar: resuming shared prefixes at least halves the
    # median wave latency relative to cold re-execution
    assert incremental_speedup >= 2.0, report["speedup_vs_cold"]
    assert executor.stats.prefix_hits > 0


def test_perf_incremental_verified_against_cold(bench_dir):
    """Self-audit: verify-mode cross-checks every wave result against a
    cold run; zero fallbacks means the snapshots were faithful."""
    executor = IncrementalExecutor(
        data_dir=bench_dir, sample_rows=SAMPLE_ROWS, verify=True
    )
    for source in _wave_sources():
        executor.check_executes(source)
    assert executor.stats.fallbacks == 0
