"""Dialect-subsystem smoke: abstraction overhead + cross-dialect parity.

The ApiDialect layer replaced hardcoded pandas plumbing in the sandbox,
lang, and corpus layers; its contract is that the pandas path is
*bit-identical by construction* and pays no measurable per-call cost.
Two gates run before any number is recorded:

- ``verify_dialect()``: every dialect with a recorded fixture (pandas —
  captured with the pre-refactor pipeline — and tablereport) must replay
  its standardization case byte-for-byte, down to float reprs;
- the tablereport fixture case must *reduce* relative entropy, proving
  the subsystem standardizes a genuinely non-pandas corpus end to end.

Timed: per-call sandbox namespace assembly (the dialect-resolved module
table, the hot allocation of every ``check_executes``) for both
dialects, and the wall time of each dialect's full fixture
standardization.  Results land in ``BENCH_dialect.json`` for the CI
perf-smoke artifact trail.
"""

import json
import os
import statistics
import time

import pytest

from repro.dialects import get_dialect
from repro.dialects.cases import run_case
from repro.dialects.verify import verify_dialect
from repro.harness import render_table
from repro.sandbox.runner import build_sandbox_namespace

from _shared import bench_environment, publish

pytestmark = pytest.mark.perf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_dialect.json")

NAMESPACE_ROUNDS = 200


def _namespace_ms(dialect_name: str) -> float:
    """Median per-call cost of a dialect-resolved sandbox namespace."""
    dialect = get_dialect(dialect_name)
    samples = []
    for _ in range(NAMESPACE_ROUNDS):
        started = time.perf_counter()
        build_sandbox_namespace(dialect=dialect)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1000


def test_perf_dialect_parity_and_overhead():
    # ------------------------------------------------- correctness gates
    records = verify_dialect()  # raises DialectMismatchError on any drift
    assert set(records) >= {"pandas", "tablereport"}

    # the second dialect genuinely standardizes: entropy must go down
    tablereport = records["tablereport"]
    assert float(eval(tablereport["re_after"])) < float(
        eval(tablereport["re_before"])
    )
    assert tablereport["intent_satisfied"] is True

    # ------------------------------------------------------------ timing
    case_ms = {}
    for name in ("pandas", "tablereport"):
        started = time.perf_counter()
        run_case(name)
        case_ms[name] = (time.perf_counter() - started) * 1000

    namespace_ms = {name: _namespace_ms(name) for name in ("pandas", "tablereport")}

    report = {
        "fixture_case_ms": {k: round(v, 3) for k, v in case_ms.items()},
        "namespace_build_ms": {k: round(v, 4) for k, v in namespace_ms.items()},
        "namespace_rounds": NAMESPACE_ROUNDS,
        "verified_dialects": sorted(records),
        "tablereport_re_before": tablereport["re_before"],
        "tablereport_re_after": tablereport["re_after"],
        "environment": bench_environment(),
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    publish(
        "perf_dialect",
        render_table(
            ["dialect", "fixture case (ms)", "namespace build (ms)"],
            [
                [name, f"{case_ms[name]:.1f}", f"{namespace_ms[name]:.3f}"]
                for name in ("pandas", "tablereport")
            ],
            title="Dialect audit: byte-identical replays + per-call overhead",
        )
        + f"\n[recorded in {BENCH_JSON}]",
    )

    # namespace assembly is a per-check allocation: keep it far below a
    # single sandboxed statement's cost (loose bound — catches only
    # pathological regressions, not scheduler noise)
    for name, cost in namespace_ms.items():
        assert cost < 5.0, report
