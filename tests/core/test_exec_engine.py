"""Tests for the execution-engine wiring of the beam search and
standardizer: incremental prefix resumption, batched parallel checks,
bounded memo caches, and the beam-width invariant."""

import pytest

from repro.core import BeamSearch, LSConfig, LucidScript, TableJaccardIntent
from repro.core.entropy import RelativeEntropyScorer
from repro.lang import CorpusVocabulary, parse_script


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


@pytest.fixture()
def scorer(vocab):
    return RelativeEntropyScorer(vocab)


def make_search(vocab, scorer, diabetes_dir, **config_kwargs):
    defaults = dict(seq=6, beam_size=2, sample_rows=100)
    defaults.update(config_kwargs)
    return BeamSearch(vocab, scorer, LSConfig(**defaults), data_dir=diabetes_dir)


def _outcome(system, script):
    result = system.standardize(script)
    return (result.output_script, result.transformations, result.re_after)


class TestBeamWidthInvariant:
    def test_width_never_exceeds_beam_size(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        for beam_size in (1, 2, 3):
            search = make_search(vocab, scorer, diabetes_dir, beam_size=beam_size)
            search.search(parse_script(alex_script).statements)
            assert 1 <= search.stats.max_beam_width <= beam_size

    def test_width_invariant_with_diversity_off(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        search = make_search(
            vocab, scorer, diabetes_dir, beam_size=2, diversity=False
        )
        search.search(parse_script(alex_script).statements)
        assert search.stats.max_beam_width <= 2


class TestBoundedCaches:
    def test_exec_cache_is_bounded(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        assert search._exec_cache.capacity == BeamSearch.EXEC_CACHE_LIMIT
        assert search._statement_cache.capacity == BeamSearch.STATEMENT_CACHE_LIMIT

    def test_eviction_kicks_in_at_capacity(
        self, vocab, scorer, diabetes_dir, alex_script, monkeypatch
    ):
        search = make_search(vocab, scorer, diabetes_dir)
        search._exec_cache.capacity = 4
        search.search(parse_script(alex_script).statements)
        assert len(search._exec_cache) <= 4
        assert search._exec_cache.evictions > 0

    def test_cache_stats_surfaced_in_breakdown(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        search = make_search(vocab, scorer, diabetes_dir)
        search.search(parse_script(alex_script).statements)
        breakdown = search.stats.breakdown()
        assert breakdown["ExecCacheSize"] == len(search._exec_cache)
        assert 0.0 <= breakdown["ExecCacheHitRate"] <= 1.0
        assert breakdown["StatementCacheSize"] == len(search._statement_cache)
        assert 0.0 <= breakdown["StatementCacheHitRate"] <= 1.0


class TestIncrementalSearch:
    def test_prefix_cache_used_by_search(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        search = make_search(vocab, scorer, diabetes_dir)
        search.search(parse_script(alex_script).statements)
        stats = search.stats
        assert stats.prefix_cache_hits + stats.prefix_cache_misses > 0
        assert stats.prefix_cache_hits > 0  # candidates share prefixes
        assert stats.prefix_mean_resume_depth > 0.0

    def test_incremental_matches_cold_search(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        statements = parse_script(alex_script).statements
        cold = make_search(vocab, scorer, diabetes_dir, incremental_exec=False)
        warm = make_search(vocab, scorer, diabetes_dir, incremental_exec=True)
        cold_result = [c.source() for c in cold.search(statements)]
        warm_result = [c.source() for c in warm.search(statements)]
        assert cold_result == warm_result

    def test_cpu_time_tracked(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        search.search(parse_script(alex_script).statements)
        assert search.stats.check_executes_cpu_s > 0.0


class TestDeterminism:
    """parallel_workers=1 must be bit-identical to the serial walk, and
    higher worker counts must agree with it for a fixed seed."""

    def test_standardize_serial_matches_incremental_off(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        config_off = LSConfig(
            seq=4, beam_size=2, sample_rows=100, incremental_exec=False
        )
        config_on = LSConfig(
            seq=4, beam_size=2, sample_rows=100, incremental_exec=True
        )
        off = LucidScript(diabetes_corpus, data_dir=diabetes_dir, config=config_off)
        on = LucidScript(diabetes_corpus, data_dir=diabetes_dir, config=config_on)
        assert _outcome(off, alex_script) == _outcome(on, alex_script)

    def test_standardize_parallel_matches_serial(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        serial = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=4, beam_size=2, sample_rows=100, parallel_workers=1),
        )
        parallel = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=4, beam_size=2, sample_rows=100, parallel_workers=2),
        )
        assert _outcome(serial, alex_script) == _outcome(parallel, alex_script)

    def test_parallel_search_records_batches(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        search = make_search(vocab, scorer, diabetes_dir, parallel_workers=2)
        search.search(parse_script(alex_script).statements)
        assert search.stats.n_exec_batches > 0
        assert search.stats.n_batched_checks > 0

    def test_repeat_runs_identical(self, diabetes_corpus, diabetes_dir, alex_script):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            config=LSConfig(seq=4, beam_size=2, sample_rows=100),
        )
        assert _outcome(system, alex_script) == _outcome(system, alex_script)


class TestConfigValidation:
    def test_parallel_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            LSConfig(parallel_workers=0)

    def test_snapshot_budget_must_be_non_negative(self):
        with pytest.raises(ValueError):
            LSConfig(snapshot_budget=-1)

    def test_defaults_are_serial_and_incremental(self):
        config = LSConfig()
        assert config.parallel_workers == 1
        assert config.incremental_exec is True
        assert config.snapshot_budget == 64
