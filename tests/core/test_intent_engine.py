"""Property tests for the content-addressed incremental intent engine.

The contract under test is exactness: every delta the prepared engine
returns must be bit-identical (``==`` on floats, not approx) to the naive
pairwise recomputation, across all three Jaccard modes and arbitrary
candidate perturbations, and the ``verify_intent`` audit must stay silent
over a full search.
"""

import random

import pytest

from repro.core import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    TableJaccardIntent,
)
from repro.core.intent import (
    IntentMismatchError,
    IntentStats,
    PreparedIntent,
    PreparedTableJaccard,
    table_fingerprint,
    table_jaccard,
)
from repro.minipandas import NA, DataFrame

MODES = ("cells", "values", "rows")


# ---------------------------------------------------------------- generators
def random_frame(rng, n_rows=None, n_cols=None, na_rate=0.2):
    """A mixed-type frame: ints, floats, strings, NA, and the literal
    string "__NA__" (which the sentinel normalization must survive)."""
    n_rows = rng.randrange(0, 9) if n_rows is None else n_rows
    n_cols = rng.randrange(1, 6) if n_cols is None else n_cols
    pools = [
        lambda: rng.randrange(0, 5),
        lambda: rng.choice([0.5, 1.25, -3.0]),
        lambda: rng.choice(["x", "y", "__NA__", ""]),
        lambda: rng.choice([True, False]),
    ]
    data = {}
    for c in range(n_cols):
        pool = rng.choice(pools)
        data[f"c{c}"] = [
            NA if rng.random() < na_rate else pool() for _ in range(n_rows)
        ]
    return DataFrame(data)


def perturb(rng, frame):
    """One random candidate: identical copy, renamed / dropped / added
    column, mutated cells, dropped or duplicated rows, or empty table."""
    kind = rng.randrange(0, 8)
    columns = list(frame.columns)
    if kind == 0 or not columns:
        return frame.copy()
    if kind == 1:
        return DataFrame()
    data = {name: frame[name].tolist() for name in columns}
    if kind == 2:  # rename one column
        old = rng.choice(columns)
        data[f"renamed_{old}"] = data.pop(old)
    elif kind == 3:  # drop one column
        data.pop(rng.choice(columns))
    elif kind == 4:  # add a fresh column
        data["extra"] = [rng.randrange(0, 3) for _ in range(len(frame))]
    elif kind == 5:  # mutate a few cells
        name = rng.choice(columns)
        values = list(data[name])
        for _ in range(rng.randrange(1, 3)):
            if values:
                values[rng.randrange(len(values))] = rng.choice(
                    [NA, "mut", 99, "__NA__"]
                )
        data[name] = values
    elif kind == 6 and len(frame) > 1:  # drop rows
        keep = rng.randrange(1, len(frame))
        data = {name: values[:keep] for name, values in data.items()}
    elif kind == 7 and len(frame) > 0:  # duplicate rows
        data = {name: values + values[:1] for name, values in data.items()}
    return DataFrame(data)


# -------------------------------------------------------------- bit-identity
class TestTableJaccardBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_candidates_match_naive(self, mode, seed):
        rng = random.Random(1000 * seed + len(mode))
        original = random_frame(rng)
        prepared = TableJaccardIntent(tau=0.5, mode=mode).prepare(original)
        for _ in range(30):
            candidate = perturb(rng, original)
            got = prepared.delta(candidate)
            want = table_jaccard(original, candidate, mode=mode)
            assert got == want

    @pytest.mark.parametrize("mode", MODES)
    def test_na_heavy_frames(self, mode):
        rng = random.Random(7)
        original = random_frame(rng, n_rows=12, n_cols=4, na_rate=0.8)
        prepared = TableJaccardIntent(mode=mode).prepare(original)
        for _ in range(10):
            candidate = perturb(rng, original)
            assert prepared.delta(candidate) == table_jaccard(
                original, candidate, mode=mode
            )

    @pytest.mark.parametrize("mode", MODES)
    def test_empty_tables(self, mode):
        empty = DataFrame()
        prepared = TableJaccardIntent(mode=mode).prepare(empty)
        assert prepared.delta(DataFrame()) == 1.0
        full = DataFrame({"a": [1, 2]})
        assert prepared.delta(full) == table_jaccard(empty, full, mode=mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_zero_row_columns(self, mode):
        original = DataFrame({"a": [], "b": []})
        prepared = TableJaccardIntent(mode=mode).prepare(original)
        for candidate in (DataFrame({"a": [], "b": []}), DataFrame({"a": [1]}),
                          DataFrame()):
            assert prepared.delta(candidate) == table_jaccard(
                original, candidate, mode=mode
            )

    def test_renamed_column_distinguished_in_cells_mode(self):
        original = DataFrame({"a": [1, 2]})
        renamed = DataFrame({"b": [1, 2]})
        prepared = TableJaccardIntent(mode="cells").prepare(original)
        assert prepared.delta(renamed) == 0.0
        # values mode ignores the rename
        assert TableJaccardIntent(mode="values").prepare(original).delta(
            renamed
        ) == 1.0

    def test_check_matches_naive_check(self):
        original = DataFrame({"a": [1, 2, 3]})
        candidate = DataFrame({"a": [1, 2, 9]})
        intent = TableJaccardIntent(tau=0.5, mode="cells")
        assert intent.prepare(original).check(candidate) == intent.check(
            original, candidate
        )


# ------------------------------------------------------------------ counters
class TestCounters:
    def test_short_circuit_on_identical_content(self):
        original = DataFrame({"a": [1, NA], "b": ["x", "y"]})
        counters = IntentStats()
        prepared = TableJaccardIntent(mode="cells").prepare(
            original, counters=counters
        )
        assert prepared.delta(original.copy()) == 1.0
        assert counters.short_circuits == 1
        assert counters.checks == 1

    def test_column_set_reuse_on_unchanged_columns(self):
        original = DataFrame({"a": [1, 2], "b": [3, 4], "c": [5, 6]})
        candidate = DataFrame({"a": [1, 2], "b": [3, 4], "c": [9, 9]})
        counters = IntentStats()
        prepared = TableJaccardIntent(mode="cells").prepare(
            original, counters=counters
        )
        prepared.delta(candidate)
        # columns a and b answered straight from the original's memo
        assert counters.column_set_reuse >= 2

    def test_memo_shared_across_candidate_wave(self):
        original = DataFrame({"a": [1, 2], "b": [3, 4]})
        counters = IntentStats()
        prepared = TableJaccardIntent(mode="values").prepare(
            original, counters=counters
        )
        novel = DataFrame({"a": [7, 8], "b": [3, 4]})
        prepared.delta(novel)
        first = counters.column_set_reuse
        # a repeat of the novel candidate answers every column from the memo
        prepared.delta(novel.copy())
        assert counters.column_set_reuse >= first + 2
        prepared.delta(DataFrame({"a": [7, 8], "b": [9, 9]}))
        # the mutated-a content was memoized by the first novel candidate
        assert counters.column_set_reuse >= first + 3
        # the whole-table short-circuit is reserved for the original's content
        assert counters.short_circuits == 0
        prepared.delta(original.copy())
        assert counters.short_circuits == 1


# --------------------------------------------------------------- verify mode
class TestVerifyMode:
    @pytest.mark.parametrize("mode", MODES)
    def test_audit_stays_silent_on_random_waves(self, mode):
        rng = random.Random(42)
        original = random_frame(rng, n_rows=6, n_cols=4)
        counters = IntentStats()
        prepared = TableJaccardIntent(mode=mode).prepare(
            original, counters=counters, verify=True
        )
        for _ in range(20):
            prepared.delta(perturb(rng, original))
        assert counters.checks == 20
        assert counters.naive_s > 0.0 and counters.prepared_s > 0.0

    def test_divergence_raises(self, monkeypatch):
        original = DataFrame({"a": [1, 2]})
        prepared = TableJaccardIntent(mode="cells").prepare(
            original, verify=True
        )
        monkeypatch.setattr(
            PreparedTableJaccard, "_prepared_delta", lambda self, c: 0.123
        )
        with pytest.raises(IntentMismatchError):
            prepared.delta(DataFrame({"a": [1, 2]}))

    def test_generic_fallback_delegates_to_naive(self):
        class OddIntent(TableJaccardIntent):
            def prepare(self, original, table_fp=None, counters=None,
                        verify=False):
                return PreparedIntent(self, original, table_fp, counters,
                                      verify)

        original = DataFrame({"a": [1, 2]})
        candidate = DataFrame({"a": [1, 9]})
        prepared = OddIntent(mode="cells").prepare(original, verify=True)
        assert prepared.delta(candidate) == table_jaccard(
            original, candidate, mode="cells"
        )


# --------------------------------------------------------- model performance
def classification_frame(shift=0):
    rows = 24
    return DataFrame({
        "f1": [(i * 7 + shift) % 5 for i in range(rows)],
        "f2": [(i * 3) % 4 + 0.5 for i in range(rows)],
        "label": [i % 2 for i in range(rows)],
    })


class TestModelPerformance:
    def _counting(self, monkeypatch):
        import repro.core.intent as intent_mod

        calls = []
        real = intent_mod.evaluate_downstream

        def counted(frame, target, **kwargs):
            calls.append(table_fingerprint(frame))
            return real(frame, target, **kwargs)

        monkeypatch.setattr(intent_mod, "evaluate_downstream", counted)
        return calls

    def test_delta_caches_original_accuracy(self, monkeypatch):
        calls = self._counting(monkeypatch)
        intent = ModelPerformanceIntent(target="label", tau=5.0)
        original = classification_frame()
        intent.delta(original, classification_frame(shift=1))
        intent.delta(original, classification_frame(shift=2))
        # 1 original training + 2 candidate trainings, not 4
        assert len(calls) == 3
        fp = table_fingerprint(original)
        assert calls.count(fp) == 1

    def test_cache_invalidated_by_different_original(self, monkeypatch):
        calls = self._counting(monkeypatch)
        intent = ModelPerformanceIntent(target="label", tau=5.0)
        intent.delta(classification_frame(), classification_frame(shift=1))
        intent.delta(classification_frame(shift=3), classification_frame(shift=1))
        # two distinct originals: each trained once
        assert len(calls) == 4

    def test_prepared_matches_bare_delta(self):
        intent = ModelPerformanceIntent(target="label", tau=5.0)
        original = classification_frame()
        prepared = intent.prepare(original)
        for shift in (0, 1, 2):
            candidate = classification_frame(shift=shift)
            assert prepared.delta(candidate) == intent.bare_delta(
                original, candidate
            )

    def test_prepared_short_circuits_identical_candidate(self, monkeypatch):
        calls = self._counting(monkeypatch)
        counters = IntentStats()
        intent = ModelPerformanceIntent(target="label", tau=5.0)
        original = classification_frame()
        prepared = intent.prepare(original, counters=counters)
        assert prepared.delta(original.copy()) == 0.0
        assert counters.short_circuits == 1
        assert len(calls) == 1  # trained the original only, never the copy

    def test_unusable_candidate_is_worst_case(self):
        intent = ModelPerformanceIntent(target="label", tau=5.0)
        prepared = intent.prepare(classification_frame())
        no_target = DataFrame({"f1": [1, 2, 3]})
        assert prepared.delta(no_target) == 100.0


# ------------------------------------------------------------- search parity
class TestSearchParity:
    def _run(self, diabetes_corpus, diabetes_dir, alex_script, **overrides):
        config = LSConfig(seq=4, beam_size=2, sample_rows=150, **overrides)
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=config,
        )
        return system.standardize(alex_script)

    def test_incremental_matches_naive_search(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        on = self._run(
            diabetes_corpus, diabetes_dir, alex_script, incremental_intent=True
        )
        off = self._run(
            diabetes_corpus, diabetes_dir, alex_script, incremental_intent=False
        )
        assert on.output_script == off.output_script
        assert on.intent_delta == off.intent_delta
        assert on.intent_satisfied == off.intent_satisfied
        assert on.re_after == off.re_after
        assert on.stats.n_intent_checks > 0
        assert off.stats.n_intent_checks == 0

    def test_verify_intent_audits_clean_full_search(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        result = self._run(
            diabetes_corpus,
            diabetes_dir,
            alex_script,
            incremental_intent=True,
            verify_intent=True,
        )
        assert result.stats.n_intent_checks > 0
        assert result.stats.intent_speedup > 0.0
        breakdown = result.stats.breakdown()
        assert "IntentChecks" in breakdown and "IntentSpeedup" in breakdown
