"""End-to-end tests for the parallel path on the sharded worker engine:
standardize() bit-identity across worker counts, the verify_parallel
audit mode, shard accounting on SearchStats, and the new LSConfig knobs.
"""

import pytest

from repro.core import LSConfig, LucidScript, TableJaccardIntent
from repro.sandbox import kill_worker_pool


@pytest.fixture(autouse=True)
def _fresh_engine():
    yield
    kill_worker_pool()


def _outcome(result):
    return (result.output_script, result.transformations, result.re_after)


def _system(diabetes_corpus, diabetes_dir, **config_kwargs):
    defaults = dict(seq=4, beam_size=2, sample_rows=100)
    defaults.update(config_kwargs)
    return LucidScript(
        diabetes_corpus,
        data_dir=diabetes_dir,
        intent=TableJaccardIntent(tau=0.5),
        config=LSConfig(**defaults),
    )


class TestBitIdentityAcrossWorkerCounts:
    def test_standardize_identical_for_1_2_4_workers(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        baseline = None
        for workers in (1, 2, 4):
            kill_worker_pool()
            system = _system(
                diabetes_corpus, diabetes_dir, parallel_workers=workers
            )
            outcome = _outcome(system.standardize(alex_script))
            if baseline is None:
                baseline = outcome
            else:
                assert outcome == baseline, f"workers={workers}"

    def test_affinity_off_does_not_change_results(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        on = _system(
            diabetes_corpus, diabetes_dir, parallel_workers=2, shard_affinity=True
        )
        kill_worker_pool()
        off = _system(
            diabetes_corpus, diabetes_dir, parallel_workers=2, shard_affinity=False
        )
        assert _outcome(on.standardize(alex_script)) == _outcome(
            off.standardize(alex_script)
        )


class TestVerifyParallelAudit:
    def test_audit_passes_on_a_real_run(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        audited = _system(
            diabetes_corpus,
            diabetes_dir,
            parallel_workers=2,
            verify_parallel=True,
        )
        plain = _system(diabetes_corpus, diabetes_dir, parallel_workers=2)
        assert _outcome(audited.standardize(alex_script)) == _outcome(
            plain.standardize(alex_script)
        )

    def test_audit_is_off_by_default(self):
        assert LSConfig().verify_parallel is False


class TestShardAccounting:
    def test_stats_record_shard_activity(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        system = _system(diabetes_corpus, diabetes_dir, parallel_workers=2)
        stats = system.standardize(alex_script).stats
        assert stats.n_shard_hits > 0
        assert stats.bytes_shipped > 0
        assert stats.n_shard_migrations >= 0
        breakdown = stats.breakdown()
        assert breakdown["ShardHits"] == float(stats.n_shard_hits)
        assert breakdown["ShardMigrations"] == float(stats.n_shard_migrations)
        assert breakdown["BytesShipped"] == float(stats.bytes_shipped)

    def test_serial_run_ships_nothing(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        system = _system(diabetes_corpus, diabetes_dir, parallel_workers=1)
        stats = system.standardize(alex_script).stats
        assert stats.bytes_shipped == 0
        assert stats.n_shard_hits == 0


class TestWorkerCacheConfig:
    def test_limits_are_configurable_and_validated(self):
        config = LSConfig(
            worker_output_cache_limit=2,
            worker_intent_cache_limit=3,
            worker_source_cache_limit=16,
        )
        assert config.worker_output_cache_limit == 2
        assert config.worker_intent_cache_limit == 3
        assert config.worker_source_cache_limit == 16
        for knob in (
            "worker_output_cache_limit",
            "worker_intent_cache_limit",
            "worker_source_cache_limit",
        ):
            with pytest.raises(ValueError):
                LSConfig(**{knob: 0})

    def test_limit_resizes_the_resident_cache(self, diabetes_dir, diabetes_corpus):
        from repro.core import standardizer as mod
        from repro.lang import lemmatize

        mod._WORKER_OUTPUT_CACHE.clear()
        source = lemmatize(diabetes_corpus[0])
        for rows in (10, 20, 30, 40):
            fp = mod._original_output_fingerprint(source, diabetes_dir, rows)
            mod._worker_original_output(
                (fp, source), diabetes_dir, rows, None, limit=2
            )
        assert len(mod._WORKER_OUTPUT_CACHE) <= 2
        assert mod._WORKER_OUTPUT_CACHE.capacity == 2
        # restore the module default for other tests
        mod._WORKER_OUTPUT_CACHE.resize(mod._WORKER_OUTPUT_CACHE_LIMIT)
