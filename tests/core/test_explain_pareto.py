"""Tests for transformation explanations and intent-threshold exploration
(the paper's Section 8 extensions)."""

import pytest

from repro.core import (
    LSConfig,
    LucidScript,
    TableJaccardIntent,
    TradeoffPoint,
    explain_result,
    explore_intent_thresholds,
    pareto_frontier,
)
from repro.lang import CorpusVocabulary


@pytest.fixture()
def system(diabetes_corpus, diabetes_dir):
    return LucidScript(
        diabetes_corpus,
        data_dir=diabetes_dir,
        intent=TableJaccardIntent(tau=0.5),
        config=LSConfig(seq=8, beam_size=2, sample_rows=150),
    )


class TestExplain:
    def test_one_explanation_per_transformation(self, system, alex_script):
        result = system.standardize(alex_script)
        explanations = explain_result(result, system.vocabulary)
        assert len(explanations) == len(result.transformations)

    def test_re_chain_is_consistent(self, system, alex_script):
        result = system.standardize(alex_script)
        explanations = explain_result(result, system.vocabulary)
        assert explanations[0].re_before == pytest.approx(result.re_before)
        assert explanations[-1].re_after == pytest.approx(result.re_after)
        for previous, current in zip(explanations, explanations[1:]):
            assert previous.re_after == pytest.approx(current.re_before)

    def test_prevalence_matches_vocabulary(self, system, alex_script):
        result = system.standardize(alex_script)
        for explanation in explain_result(result, system.vocabulary):
            expected = system.vocabulary.statement_frequency(explanation.statement)
            assert explanation.corpus_prevalence == expected

    def test_majority_add_rationale(self, system, alex_script):
        result = system.standardize(alex_script)
        explanations = explain_result(result, system.vocabulary)
        adds = [e for e in explanations if e.kind == "add"]
        assert adds, "the Alex script should receive add recommendations"
        majority = [e for e in adds if e.corpus_prevalence >= 0.5]
        assert any("majority practice" in e.rationale for e in majority)

    def test_render_contains_evidence(self, system, alex_script):
        result = system.standardize(alex_script)
        rendered = explain_result(result, system.vocabulary)[0].render()
        assert "corpus prevalence" in rendered
        assert "RE" in rendered

    def test_empty_for_unchanged_script(self, system, diabetes_corpus):
        result = system.standardize(diabetes_corpus[0])
        explanations = explain_result(result, system.vocabulary)
        assert len(explanations) == len(result.transformations)


class TestTradeoffPoint:
    def test_jaccard_preservation_is_similarity(self):
        point = TradeoffPoint(tau=0.9, improvement=10.0, intent_delta=0.85,
                              output_script="x = 1")
        assert point.preservation() == pytest.approx(0.85)

    def test_model_preservation_maps_percent(self):
        point = TradeoffPoint(tau=5.0, improvement=10.0, intent_delta=3.0,
                              output_script="x = 1")
        assert point.preservation() == pytest.approx(0.97)

    def test_none_delta_is_full_preservation(self):
        point = TradeoffPoint(tau=1.0, improvement=0.0, intent_delta=None,
                              output_script="x = 1")
        assert point.preservation() == 1.0


class TestExplore:
    def test_sweep_returns_point_per_threshold(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        points = explore_intent_thresholds(
            diabetes_corpus,
            alex_script,
            taus=[1.0, 0.7, 0.4],
            data_dir=diabetes_dir,
            config=LSConfig(seq=6, beam_size=2, sample_rows=150),
        )
        assert len(points) == 3
        assert [p.tau for p in points] == [1.0, 0.7, 0.4]

    def test_relaxing_never_reduces_improvement(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        points = explore_intent_thresholds(
            diabetes_corpus,
            alex_script,
            taus=[1.0, 0.4],
            data_dir=diabetes_dir,
            config=LSConfig(seq=6, beam_size=2, sample_rows=150),
        )
        by_tau = {p.tau: p.improvement for p in points}
        assert by_tau[0.4] >= by_tau[1.0] - 1e-9

    def test_model_kind_requires_target(self, diabetes_corpus, alex_script):
        with pytest.raises(ValueError):
            explore_intent_thresholds(
                diabetes_corpus, alex_script, taus=[1.0], intent_kind="model"
            )

    def test_unknown_kind_raises(self, diabetes_corpus, diabetes_dir, alex_script):
        with pytest.raises(ValueError):
            explore_intent_thresholds(
                diabetes_corpus, alex_script, taus=[1.0],
                intent_kind="bogus", data_dir=diabetes_dir,
            )


class TestParetoFrontier:
    def _point(self, preservation, improvement):
        return TradeoffPoint(
            tau=preservation, improvement=improvement,
            intent_delta=preservation, output_script="x = 1",
        )

    def test_dominated_points_removed(self):
        dominated = self._point(0.5, 10.0)
        dominating = self._point(0.9, 20.0)
        frontier = pareto_frontier([dominated, dominating])
        assert frontier == [dominating]

    def test_incomparable_points_kept(self):
        safe = self._point(0.95, 10.0)
        aggressive = self._point(0.6, 40.0)
        frontier = pareto_frontier([safe, aggressive])
        assert set(id(p) for p in frontier) == {id(safe), id(aggressive)}

    def test_ordered_by_preservation(self):
        a = self._point(0.95, 10.0)
        b = self._point(0.6, 40.0)
        frontier = pareto_frontier([b, a])
        assert frontier[0].preservation() >= frontier[1].preservation()

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_ties_are_kept(self):
        a = self._point(0.9, 10.0)
        b = self._point(0.9, 10.0)
        assert len(pareto_frontier([a, b])) == 2
