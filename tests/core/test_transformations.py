"""Tests for transformation configuration and application (Def. 3.4, Sec 5.2)."""

import pytest

from repro.core import Transformation, apply_transformation, enumerate_transformations
from repro.core.transformations import ADD, DELETE
from repro.lang import NGRAM, ONEGRAM, CorpusVocabulary, ScriptError, parse_script


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


@pytest.fixture()
def statements(alex_script):
    return parse_script(alex_script).statements


class TestTransformationDataclass:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Transformation(kind="edit", gram=NGRAM, signature="x", position=0)

    def test_add_requires_source(self):
        with pytest.raises(ValueError):
            Transformation(kind=ADD, gram=NGRAM, signature="x", position=0)

    def test_negative_position(self):
        with pytest.raises(ValueError):
            Transformation(kind=DELETE, gram=NGRAM, signature="x", position=-1)

    def test_describe(self):
        t = Transformation(kind=DELETE, gram=NGRAM, signature="df = df.dropna()", position=2)
        assert "delete line 2" in t.describe()
        t2 = Transformation(
            kind=ADD, gram=NGRAM, signature="s", position=1, statement_source="df = df.dropna()"
        )
        assert "add at line 1" in t2.describe()


class TestApply:
    def test_delete_removes_statement(self, statements):
        t = Transformation(kind=DELETE, gram=NGRAM, signature="x", position=2)
        out = apply_transformation(statements, t)
        assert len(out) == len(statements) - 1
        assert all(s.index == i for i, s in enumerate(out))

    def test_delete_protected_raises(self, statements):
        t = Transformation(kind=DELETE, gram=NGRAM, signature="x", position=0)
        with pytest.raises(ScriptError):
            apply_transformation(statements, t)

    def test_delete_read_csv_raises(self, statements):
        t = Transformation(kind=DELETE, gram=NGRAM, signature="x", position=1)
        with pytest.raises(ScriptError):
            apply_transformation(statements, t)

    def test_delete_out_of_range(self, statements):
        t = Transformation(kind=DELETE, gram=NGRAM, signature="x", position=99)
        with pytest.raises(IndexError):
            apply_transformation(statements, t)

    def test_add_inserts_at_position(self, statements):
        t = Transformation(
            kind=ADD, gram=NGRAM, signature="df = df.dropna()",
            position=2, statement_source="df = df.dropna()",
        )
        out = apply_transformation(statements, t)
        assert out[2].source == "df = df.dropna()"
        assert len(out) == len(statements) + 1

    def test_add_at_end(self, statements):
        t = Transformation(
            kind=ADD, gram=NGRAM, signature="x = 1", position=len(statements),
            statement_source="x = 1",
        )
        out = apply_transformation(statements, t)
        assert out[-1].source == "x = 1"

    def test_add_out_of_range(self, statements):
        t = Transformation(
            kind=ADD, gram=NGRAM, signature="x = 1", position=99, statement_source="x = 1"
        )
        with pytest.raises(IndexError):
            apply_transformation(statements, t)

    def test_original_untouched(self, statements):
        before = [s.source for s in statements]
        t = Transformation(kind=DELETE, gram=NGRAM, signature="x", position=2)
        apply_transformation(statements, t)
        assert [s.source for s in statements] == before

    def test_renumbering_after_add(self, statements):
        t = Transformation(
            kind=ADD, gram=NGRAM, signature="x = 1", position=1, statement_source="x = 1"
        )
        out = apply_transformation(statements, t)
        assert [s.index for s in out] == list(range(len(out)))


class TestEnumerate:
    def test_includes_deletes_of_unprotected(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab)
        deletes = [t for t in ts if t.kind == DELETE]
        positions = {t.position for t in deletes}
        assert 2 in positions and 3 in positions
        assert 0 not in positions and 1 not in positions

    def test_includes_corpus_successor_adds(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab)
        adds = [t for t in ts if t.kind == ADD and t.gram == NGRAM]
        sources = {t.statement_source for t in adds}
        assert "df = df.fillna(df.mean())" in sources

    def test_successor_adds_chain_across_steps(self, statements, vocab):
        """The SkinThickness filter only follows fillna(mean) in the corpus,
        so it becomes addable after fillna(mean) is inserted."""
        first = next(
            t
            for t in enumerate_transformations(statements, vocab)
            if t.kind == ADD and t.statement_source == "df = df.fillna(df.mean())"
        )
        extended = apply_transformation(statements, first)
        sources = {
            t.statement_source
            for t in enumerate_transformations(extended, vocab)
            if t.kind == ADD
        }
        assert "df = df[df['SkinThickness'] < 80]" in sources

    def test_no_duplicate_adds_of_present_statements(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab)
        present = {s.ngram.signature for s in statements}
        for t in ts:
            if t.kind == ADD and t.gram == NGRAM:
                assert t.signature not in present

    def test_monotonicity_frontier_filters_adds(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab, frontier=3)
        for t in ts:
            if t.kind == ADD:
                assert t.position >= 3

    def test_deletes_ignore_frontier(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab, frontier=3)
        delete_positions = {t.position for t in ts if t.kind == DELETE}
        assert 2 in delete_positions  # before the frontier, still deletable

    def test_forbidden_adds_respected(self, statements, vocab):
        blocked = "df = df.fillna(df.mean())"
        ts = enumerate_transformations(
            statements, vocab, forbidden_adds={blocked}
        )
        assert all(t.statement_source != blocked for t in ts if t.kind == ADD)

    def test_forbidden_deletes_respected(self, statements, vocab):
        blocked = statements[2].ngram.signature
        ts = enumerate_transformations(
            statements, vocab, forbidden_deletes={blocked}
        )
        assert all(t.signature != blocked for t in ts if t.kind == DELETE)

    def test_onegram_adds_capped(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab, max_onegram_adds=2)
        onegram_adds = [t for t in ts if t.kind == ADD and t.gram == ONEGRAM]
        assert len(onegram_adds) <= 2

    def test_onegram_adds_render_to_statements(self, statements, vocab):
        ts = enumerate_transformations(statements, vocab)
        for t in ts:
            if t.kind == ADD:
                # must parse as a single statement
                import ast

                parsed = ast.parse(t.statement_source)
                assert len(parsed.body) == 1

    def test_all_candidates_applicable(self, statements, vocab):
        """Every enumerated transformation must apply without error."""
        for t in enumerate_transformations(statements, vocab):
            out = apply_transformation(statements, t)
            assert len(out) in (len(statements) - 1, len(statements) + 1)
