"""Tests for target-leakage injection and detection (Section 6.6)."""

import numpy as np
import pytest

from repro.core import LSConfig, LucidScript, TableJaccardIntent, detect_target_leakage
from repro.workloads import inject_target_leakage, leakage_snippets_for


class TestInjection:
    def test_snippet_family(self):
        snippets = leakage_snippets_for("Outcome")
        assert len(snippets) == 3
        assert any("Outcome_copy" in s for s in snippets)

    def test_feature_column_adds_target_encoding(self):
        snippets = leakage_snippets_for("Outcome", feature_column="Age")
        assert any("groupby('Age')['Outcome']" in s for s in snippets)

    def test_injects_before_split_tail(self, rng):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "y = df['Outcome']\n"
            "X = df.drop('Outcome', axis=1)"
        )
        injected, snippets = inject_target_leakage(script, "Outcome", rng)
        lines = injected.splitlines()
        snippet_line = snippets[0].splitlines()[0]
        assert lines.index(snippet_line) < lines.index("y = df['Outcome']")

    def test_injects_at_end_without_tail(self, rng):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "df = df[df['Outcome'] >= 0]"
        )
        injected, snippets = inject_target_leakage(script, "Outcome", rng)
        assert injected.splitlines()[-1] in snippets[0].splitlines()

    def test_requires_target_reference(self, rng):
        with pytest.raises(ValueError):
            inject_target_leakage("import pandas as pd\nx = 1", "Outcome", rng)

    def test_variable_substitution(self, rng):
        script = (
            "import pandas as pd\n"
            "train = pd.read_csv('train.csv')\n"
            "y = train['Outcome']"
        )
        injected, snippets = inject_target_leakage(script, "Outcome", rng)
        assert "df[" not in injected
        assert "train[" in snippets[0]

    def test_deterministic_given_rng(self):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "y = df['Outcome']"
        )
        a = inject_target_leakage(script, "Outcome", np.random.default_rng(5))
        b = inject_target_leakage(script, "Outcome", np.random.default_rng(5))
        assert a == b


class TestDetection:
    @pytest.fixture()
    def system(self, diabetes_corpus, diabetes_dir):
        return LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.7),
            config=LSConfig(seq=8, beam_size=2, sample_rows=150),
        )

    def test_detects_copy_leakage(self, system, diabetes_corpus, rng):
        script, snippets = inject_target_leakage(
            diabetes_corpus[0] + "\ny = df['Outcome']", "Outcome", rng
        )
        detection = detect_target_leakage(system, script, snippets)
        assert detection.detected
        assert detection.recall == 1.0
        assert not detection.missed_ground_truth

    def test_requires_snippets(self, system, diabetes_corpus):
        with pytest.raises(ValueError):
            detect_target_leakage(system, diabetes_corpus[0], [])

    def test_unexecutable_script_not_detected(self, system):
        detection = detect_target_leakage(
            system,
            "import pandas as pd\ndf = pd.read_csv('missing_file.csv')\ndf['Outcome_copy'] = df['Outcome']",
            ["df['Outcome_copy'] = df['Outcome']"],
        )
        assert not detection.detected
        assert detection.result is None
        assert detection.recall == 0.0

    def test_detection_result_carries_standardization(self, system, diabetes_corpus, rng):
        script, snippets = inject_target_leakage(
            diabetes_corpus[0] + "\ny = df['Outcome']", "Outcome", rng
        )
        detection = detect_target_leakage(system, script, snippets)
        assert detection.result is not None
        assert detection.result.improvement >= 0.0
