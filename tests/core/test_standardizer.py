"""Integration tests for the LucidScript facade (Definition 4.5 end to end)."""

import pytest

from repro.core import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    StandardizationError,
    TableJaccardIntent,
)
from repro.lang import lemmatize


@pytest.fixture()
def system(diabetes_corpus, diabetes_dir):
    return LucidScript(
        diabetes_corpus,
        data_dir=diabetes_dir,
        intent=TableJaccardIntent(tau=0.5),
        config=LSConfig(seq=8, beam_size=2, sample_rows=150),
    )


class TestStandardize:
    def test_improves_alex_script(self, system, alex_script):
        result = system.standardize(alex_script)
        assert result.re_after <= result.re_before
        assert result.improvement >= 0.0

    def test_adds_common_corpus_steps(self, system, alex_script):
        result = system.standardize(alex_script)
        added = result.added_statements()
        assert "df = df[df['SkinThickness'] < 80]" in added or \
               "df = df.fillna(df.mean())" in added

    def test_output_is_executable(self, system, alex_script, diabetes_dir):
        from repro.sandbox import check_executes

        result = system.standardize(alex_script)
        assert check_executes(result.output_script, data_dir=diabetes_dir)

    def test_intent_constraint_reported_satisfied(self, system, alex_script):
        result = system.standardize(alex_script)
        assert result.intent_satisfied
        assert result.intent_delta >= 0.5

    def test_sequence_length_constraint(self, diabetes_corpus, diabetes_dir, alex_script):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            config=LSConfig(seq=2, beam_size=2, sample_rows=150),
        )
        result = system.standardize(alex_script)
        assert len(result.transformations) <= 2

    def test_corpus_member_needs_no_change(self, diabetes_corpus, diabetes_dir):
        system = LucidScript(
            diabetes_corpus[1:],
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.9),
            config=LSConfig(seq=4, beam_size=2, sample_rows=150),
        )
        result = system.standardize(diabetes_corpus[0])
        # already the majority script: little or nothing to improve
        assert result.improvement >= 0.0

    def test_input_must_execute(self, system):
        with pytest.raises(StandardizationError):
            system.standardize(
                "import pandas as pd\ndf = pd.read_csv('no_such_file_anywhere.csv')"
            )

    def test_input_must_have_statements(self, diabetes_corpus, diabetes_dir):
        system = LucidScript(diabetes_corpus, data_dir=diabetes_dir)
        with pytest.raises(StandardizationError):
            system.standardize("")

    def test_input_lemmatized_in_result(self, system):
        result = system.standardize(
            "import pandas as pd\n"
            'train = pd.read_csv("diabetes.csv")\n'
            "train = train.fillna(train.median())"
        )
        assert "df = pd.read_csv('diabetes.csv')" in result.input_script
        assert "train" not in result.input_script

    def test_strict_tau_limits_changes(self, diabetes_corpus, diabetes_dir, alex_script):
        strict = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=1.0),
            config=LSConfig(seq=8, beam_size=2, sample_rows=150),
        )
        relaxed = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.3),
            config=LSConfig(seq=8, beam_size=2, sample_rows=150),
        )
        strict_result = strict.standardize(alex_script)
        relaxed_result = relaxed.standardize(alex_script)
        assert relaxed_result.improvement >= strict_result.improvement - 1e-9

    def test_no_intent_measure_still_works(self, diabetes_corpus, diabetes_dir, alex_script):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=None,
            config=LSConfig(seq=6, beam_size=2, sample_rows=150),
        )
        result = system.standardize(alex_script)
        assert result.intent_delta is None
        assert result.intent_satisfied

    def test_model_performance_intent(self, diabetes_corpus, diabetes_dir, alex_script):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=ModelPerformanceIntent(target="Outcome", tau=5.0),
            config=LSConfig(seq=4, beam_size=1, sample_rows=150),
        )
        result = system.standardize(alex_script)
        assert result.intent_satisfied
        assert result.improvement >= 0.0

    def test_score_method(self, system, alex_script, diabetes_corpus):
        assert system.score(alex_script) > system.score(diabetes_corpus[0])


class TestStandardizationResult:
    def test_removed_added_statements(self, system, alex_script):
        result = system.standardize(alex_script)
        input_lines = result.input_script.splitlines()
        for line in result.removed_statements():
            assert line in input_lines
        for line in result.added_statements():
            assert line in result.output_script.splitlines()

    def test_changed_flag(self, system, alex_script):
        result = system.standardize(alex_script)
        assert result.changed == (result.output_script != result.input_script)

    def test_summary_mentions_re(self, system, alex_script):
        summary = system.standardize(alex_script).summary()
        assert "RE:" in summary and "improvement" in summary

    def test_stats_breakdown_keys(self, system, alex_script):
        result = system.standardize(alex_script)
        assert "VerifyConstraints" in result.stats.breakdown()
        assert result.stats.verify_constraints_s > 0


class TestWorkerOutputCache:
    """Parallel verification ships the original output by fingerprint, not
    as a pickled DataFrame per task; workers resolve (and cache) it."""

    def _ref(self, source, data_dir, sample_rows):
        from repro.core.standardizer import _original_output_fingerprint

        return (_original_output_fingerprint(source, data_dir, sample_rows), source)

    def test_fingerprint_distinguishes_inputs(self):
        from repro.core.standardizer import _original_output_fingerprint

        base = _original_output_fingerprint("x = 1", "/data", 100)
        assert _original_output_fingerprint("x = 2", "/data", 100) != base
        assert _original_output_fingerprint("x = 1", "/other", 100) != base
        assert _original_output_fingerprint("x = 1", "/data", None) != base

    def test_worker_resolves_and_caches_original_output(
        self, diabetes_corpus, diabetes_dir
    ):
        from repro.core import standardizer as mod

        source = lemmatize(diabetes_corpus[0])
        ref = self._ref(source, diabetes_dir, 100)
        mod._WORKER_OUTPUT_CACHE.clear()
        first = mod._worker_original_output(ref, diabetes_dir, 100, None)
        assert first is not None
        assert ref[0] in mod._WORKER_OUTPUT_CACHE
        assert mod._worker_original_output(ref, diabetes_dir, 100, None) is first

    def test_cache_is_bounded(self, diabetes_corpus, diabetes_dir):
        from repro.core import standardizer as mod

        mod._WORKER_OUTPUT_CACHE.clear()
        source = lemmatize(diabetes_corpus[0])
        for rows in (10, 20, 30, 40, 50, 60):
            mod._worker_original_output(
                self._ref(source, diabetes_dir, rows), diabetes_dir, rows, None
            )
        assert len(mod._WORKER_OUTPUT_CACHE) <= mod._WORKER_OUTPUT_CACHE_LIMIT

    def test_task_verdict_matches_inline_check(self, diabetes_corpus, diabetes_dir):
        from repro.core.standardizer import _verify_candidate_task
        from repro.sandbox import run_script

        original = lemmatize(diabetes_corpus[0])
        candidate = lemmatize(diabetes_corpus[2])
        intent = TableJaccardIntent(tau=0.5)
        verdict = _verify_candidate_task(
            (
                candidate,
                diabetes_dir,
                100,
                intent,
                self._ref(original, diabetes_dir, 100),
                None,
                True,
                False,
            )
        )
        original_output = run_script(
            original, data_dir=diabetes_dir, sample_rows=100
        ).output
        candidate_output = run_script(
            candidate, data_dir=diabetes_dir, sample_rows=100
        ).output
        _, expected = intent.check(original_output, candidate_output)
        assert verdict == expected

    def test_unrunnable_original_fails_closed(self, diabetes_dir):
        from repro.core import standardizer as mod

        mod._WORKER_OUTPUT_CACHE.clear()
        bad = "import pandas as pd\ndf = pd.read_csv('missing.csv')"
        ref = self._ref(bad, diabetes_dir, 100)
        assert mod._worker_original_output(ref, diabetes_dir, 100, None) is None
        assert ref[0] not in mod._WORKER_OUTPUT_CACHE
