"""Bit-identity of the O(Δ) incremental scoring engine.

``LSConfig.incremental_scoring`` must be a pure speed knob: every delta
score equals the full recount *bit for bit* (not approximately), the
sufficient statistics evolve exactly, and a whole beam search returns the
same candidates with the same scores whether the flag is on or off.
"""

import random

import pytest

from repro.core import BeamSearch, LSConfig, RelativeEntropyScorer
from repro.core.beam import ScoringMismatchError
from repro.core.entropy import REStats
from repro.lang import CorpusVocabulary, EdgeState, parse_script
from repro.lang.parser import Statement, compute_edge_counts

STEP_POOL = [
    "df = df.fillna(df.mean())",
    "df = df.fillna(df.median())",
    "df = df.dropna()",
    "df = df[df['x'] < 80]",
    "df = pd.get_dummies(df)",
    "df['y'] = df['x'] * 2",
    "df = df.drop('z', axis=1)",
    "df = df.sort_values('x')",
    "s = df['x'].sum()",
    "df2 = df.copy()",
    "df = df2.rename(columns={'a': 'b'})",
]


def build_script(body):
    return "\n".join(["import pandas as pd", "df = pd.read_csv('t.csv')"] + body)


@pytest.fixture()
def scorer():
    rng = random.Random(99)
    corpus = [
        build_script([rng.choice(STEP_POOL) for _ in range(rng.randint(2, 6))])
        for _ in range(8)
    ]
    return RelativeEntropyScorer(CorpusVocabulary.from_scripts(corpus))


# ------------------------------------------------------------- stats layer
def test_stats_roundtrip_scores_like_score_edge_counts(scorer):
    statements = parse_script(build_script(STEP_POOL[:5])).statements
    counts = compute_edge_counts(statements)
    stats = scorer.stats_from_counts(counts)
    assert scorer.score_stats(stats) == scorer.score_edge_counts(counts)


def test_score_delta_bit_identical_over_random_walk(scorer):
    """Delta scores equal from-scratch scores exactly, including the
    ε-floor for edges the corpus never saw, over hundreds of splices."""
    for seed in range(6):
        rng = random.Random(seed)
        state = EdgeState.from_statements(
            parse_script(build_script(rng.sample(STEP_POOL, 4))).statements
        )
        stats = scorer.stats_from_counts(state.counts)
        for _ in range(150):
            n = len(state)
            if n > 1 and (n >= 14 or rng.random() < 0.5):
                delta = state.delta_delete(rng.randrange(n))
            else:
                delta = state.delta_insert(
                    rng.randrange(n + 1),
                    Statement.from_source(0, rng.choice(STEP_POOL)),
                )
            new_state = state.apply(delta)
            expected_counts = compute_edge_counts(new_state.statements)
            try:
                expected = scorer.score_edge_counts(expected_counts)
            except ValueError:
                with pytest.raises(ValueError):
                    scorer.score_delta(stats, state.counts, delta)
            else:
                got = scorer.score_delta(stats, state.counts, delta)
                assert got == expected  # bit-for-bit, not approx
            stats = scorer.apply_delta(stats, state.counts, delta)
            fresh = scorer.stats_from_counts(expected_counts)
            assert (stats.total, stats.count_hist, stats.q_hist) == (
                fresh.total,
                fresh.count_hist,
                fresh.q_hist,
            )
            state = new_state


def test_score_delta_on_unseen_edges_uses_epsilon_floor(scorer):
    """Inserting a statement whose edges the corpus lacks must hit the
    same ε term the full path uses — exactly."""
    statements = parse_script(
        build_script(["df = df.interpolate().clip(lower=0)"])
    ).statements
    state = EdgeState.from_statements(statements)
    stats = scorer.stats_from_counts(state.counts)
    novel = Statement.from_source(0, "df = df.interpolate().clip(lower=0)")
    delta = state.delta_insert(len(state), novel)
    expected = scorer.score_edge_counts(
        compute_edge_counts(state.apply(delta).statements)
    )
    assert scorer.score_delta(stats, state.counts, delta) == expected


def test_delete_to_no_edges_raises_value_error_like_full_path(scorer):
    statements = parse_script("x = 1\ny = x + 1").statements
    state = EdgeState.from_statements(statements)
    stats = scorer.stats_from_counts(state.counts)
    delta = state.delta_delete(1)  # drop the only edge-bearing statement
    remaining = compute_edge_counts(state.apply(delta).statements)
    with pytest.raises(ValueError):
        scorer.score_edge_counts(remaining)
    with pytest.raises(ValueError):
        scorer.score_delta(stats, state.counts, delta)


def test_negative_delta_beyond_base_counts_raises(scorer):
    stats = REStats(total=1, count_hist={1: 1}, q_hist={-1.0: 1})
    from repro.lang.parser import EdgeDelta

    bogus = EdgeDelta("delete", 0, None, {("a", "b"): -2})
    with pytest.raises(ValueError):
        scorer.score_delta(stats, {("a", "b"): 1}, bogus)


# ------------------------------------------------------------- beam search
def _run_search(corpus, user_script, **config_kwargs):
    vocab = CorpusVocabulary.from_scripts(corpus)
    scorer = RelativeEntropyScorer(vocab)
    config = LSConfig(seq=4, beam_size=3, **config_kwargs)
    search = BeamSearch(vocab, scorer, config, exec_checker=lambda s: True)
    statements = list(parse_script(user_script).statements)
    result = search.search(statements)
    search.sync_cache_stats()
    return [(c.source(), c.score) for c in result], search.stats


@pytest.fixture()
def workload():
    rng = random.Random(3)
    corpus = [
        build_script([rng.choice(STEP_POOL) for _ in range(rng.randint(2, 6))])
        for _ in range(10)
    ]
    user = build_script([rng.choice(STEP_POOL) for _ in range(12)])
    return corpus, user


def test_search_results_identical_with_flag_on_and_off(workload):
    corpus, user = workload
    on, stats_on = _run_search(corpus, user, incremental_scoring=True)
    off, stats_off = _run_search(corpus, user, incremental_scoring=False)
    assert on == off  # same candidates, same order, bit-identical scores
    assert stats_on.n_delta_scores > 0
    assert stats_off.n_delta_scores == 0
    # the root is the only mandatory full recount on the incremental path
    assert stats_on.n_full_recounts >= 1


def test_verify_scoring_mode_runs_clean_and_reports_speedup(workload):
    """The cross-check mode recomputes everything twice and must never
    trip its own mismatch alarm on a healthy engine."""
    corpus, user = workload
    verified, stats = _run_search(
        corpus, user, incremental_scoring=True, verify_scoring=True
    )
    plain, _ = _run_search(corpus, user, incremental_scoring=True)
    assert verified == plain
    assert stats.get_steps_speedup > 0.0
    assert "GetStepsSpeedup" in stats.breakdown()


def test_verify_scoring_detects_a_corrupted_delta(workload):
    corpus, user = workload
    vocab = CorpusVocabulary.from_scripts(corpus)
    scorer = RelativeEntropyScorer(vocab)
    config = LSConfig(seq=2, beam_size=1, verify_scoring=True)
    search = BeamSearch(vocab, scorer, config, exec_checker=lambda s: True)
    original = scorer.score_delta
    scorer.score_delta = lambda *a, **k: original(*a, **k) + 1e-9  # corrupt
    with pytest.raises(ScoringMismatchError):
        search.search(list(parse_script(user).statements))
