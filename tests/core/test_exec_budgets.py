"""Execution budgets inside the search: a pathological candidate is
skipped within its budget, the search completes, and the outcome matches
a search that simply excluded the candidate (the issue's acceptance
criterion).  Also covers the LSConfig knobs and stats plumbing."""

import time

import pytest

from repro.core import BeamSearch, LSConfig, LucidScript
from repro.core.beam import SearchStats
from repro.core.entropy import RelativeEntropyScorer
from repro.lang import CorpusVocabulary, parse_script
from repro.sandbox import IncrementalExecutor
from repro.sandbox.faults import FaultInjectingExecutor

#: The fillna-with-mean statement every corpus script shares — present in
#: real candidates, absent from the input script (which uses median), so
#: sabotaging it hits genuine search-generated candidates.
TARGET_STATEMENT = "df = df.fillna(df.mean())"

BUDGET_S = 0.3


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


@pytest.fixture()
def scorer(vocab):
    return RelativeEntropyScorer(vocab)


def config(**kwargs):
    defaults = dict(seq=6, beam_size=2, sample_rows=100)
    defaults.update(kwargs)
    return LSConfig(**defaults)


class TestLSConfigKnobs:
    def test_budgets_default_off(self):
        cfg = LSConfig()
        assert cfg.exec_timeout_s is None
        assert cfg.statement_timeout_s is None
        assert cfg.pool_respawn_limit == 1

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_nonpositive_exec_timeout_rejected(self, value):
        with pytest.raises(ValueError):
            LSConfig(exec_timeout_s=value)

    @pytest.mark.parametrize("value", [0, -2])
    def test_nonpositive_statement_timeout_rejected(self, value):
        with pytest.raises(ValueError):
            LSConfig(statement_timeout_s=value)

    def test_negative_respawn_limit_rejected(self):
        with pytest.raises(ValueError):
            LSConfig(pool_respawn_limit=-1)

    def test_executor_inherits_budgets(self, vocab, scorer, diabetes_dir):
        search = BeamSearch(
            vocab,
            scorer,
            config(exec_timeout_s=5.0, statement_timeout_s=1.0),
            data_dir=diabetes_dir,
        )
        assert search._executor.exec_timeout_s == 5.0
        assert search._executor.statement_timeout_s == 1.0


class TestStatsPlumbing:
    def test_breakdown_has_fault_counters(self):
        breakdown = SearchStats().breakdown()
        assert breakdown["ExecTimeouts"] == 0
        assert breakdown["WorkerRespawns"] == 0
        assert breakdown["DegradedWaves"] == 0


class TestHungCandidateIsSkipped:
    def test_search_completes_and_matches_exclusion(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        statements = parse_script(alex_script).statements

        # sabotage: every candidate containing the target statement hangs
        # (fault appended last, so the hang is reached on every check)
        saboteur = FaultInjectingExecutor(
            data_dir=diabetes_dir,
            sample_rows=100,
            match=TARGET_STATEMENT,
            kind="hang",
            position=10**9,
            exec_timeout_s=BUDGET_S,
        )
        faulted_search = BeamSearch(
            vocab,
            scorer,
            config(exec_timeout_s=BUDGET_S),
            data_dir=diabetes_dir,
            executor=saboteur,
        )
        start = time.monotonic()
        faulted = [c.source() for c in faulted_search.search(statements)]
        elapsed = time.monotonic() - start

        assert saboteur.injected_sources, "the fault never hit a candidate"
        # each hang is interrupted within its budget, so the whole search
        # stays within a small multiple of (#injections x budget)
        assert elapsed < (len(saboteur.injected_sources) + 4) * BUDGET_S * 4

        # every hang was counted and surfaced in the breakdown
        assert faulted_search.stats.n_exec_timeouts > 0
        breakdown = faulted_search.stats.breakdown()
        assert breakdown["ExecTimeouts"] == faulted_search.stats.n_exec_timeouts

        # timing out is exactly "the candidate fails CheckIfExecutes":
        # an oracle that rejects those candidates yields the same result
        probe = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)

        def reject_target(source):
            if TARGET_STATEMENT in source:
                return False
            return probe.check_executes(source)

        excluding_search = BeamSearch(
            vocab,
            scorer,
            config(),
            data_dir=diabetes_dir,
            exec_checker=reject_target,
        )
        excluded = [c.source() for c in excluding_search.search(statements)]
        assert faulted == excluded

    def test_timed_out_candidate_actually_mattered(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        statements = parse_script(alex_script).statements
        baseline_search = BeamSearch(
            vocab, scorer, config(), data_dir=diabetes_dir
        )
        baseline = [c.source() for c in baseline_search.search(statements)]
        saboteur = FaultInjectingExecutor(
            data_dir=diabetes_dir,
            sample_rows=100,
            match=TARGET_STATEMENT,
            kind="hang",
            position=10**9,
            exec_timeout_s=BUDGET_S,
        )
        faulted_search = BeamSearch(
            vocab,
            scorer,
            config(exec_timeout_s=BUDGET_S),
            data_dir=diabetes_dir,
            executor=saboteur,
        )
        faulted = [c.source() for c in faulted_search.search(statements)]
        # the sabotaged statement appears in the baseline's winners, so
        # skipping it visibly changes the outcome (the skip is not a no-op)
        assert any(TARGET_STATEMENT in source for source in baseline)
        assert all(TARGET_STATEMENT not in source for source in faulted)
        assert faulted != baseline


class TestBudgetsDisabledIsBitIdentical:
    def test_generous_budget_matches_no_budget(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        statements = parse_script(alex_script).statements
        plain = BeamSearch(vocab, scorer, config(), data_dir=diabetes_dir)
        budgeted = BeamSearch(
            vocab,
            scorer,
            config(exec_timeout_s=30.0, statement_timeout_s=30.0),
            data_dir=diabetes_dir,
        )
        plain_out = [(c.source(), c.score) for c in plain.search(statements)]
        budget_out = [(c.source(), c.score) for c in budgeted.search(statements)]
        assert plain_out == budget_out
        assert budgeted.stats.n_exec_timeouts == 0
        assert budgeted.stats.n_worker_respawns == 0
        assert budgeted.stats.n_degraded_waves == 0


class TestStandardizerBudgets:
    def test_end_to_end_with_generous_budget_matches_default(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        plain = LucidScript(
            diabetes_corpus, data_dir=diabetes_dir, config=config()
        )
        budgeted = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            config=config(exec_timeout_s=30.0),
        )
        a = plain.standardize(alex_script)
        b = budgeted.standardize(alex_script)
        assert a.output_script == b.output_script
        assert a.re_after == b.re_after
        assert b.stats.n_exec_timeouts == 0
