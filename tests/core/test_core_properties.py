"""Property-based tests (hypothesis) for core invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apply_transformation, relative_entropy
from repro.core.transformations import ADD, DELETE, Transformation
from repro.lang import NGRAM, lemmatize, parse_script
from repro.lang.parser import Statement

edge_keys = st.tuples(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    st.sampled_from(["a", "b", "c", "d", "e"]),
)
counters = st.dictionaries(edge_keys, st.integers(1, 20), min_size=1, max_size=12).map(
    Counter
)


@given(counters)
def test_re_of_distribution_with_itself_is_zero(counts):
    assert relative_entropy(counts, counts) == pytest.approx(0.0, abs=1e-12)


@given(counters, st.integers(2, 9))
def test_re_scale_invariance_in_p(counts, k):
    scaled = Counter({edge: count * k for edge, count in counts.items()})
    q = Counter({edge: 1 for edge in counts})
    assert relative_entropy(counts, q) == pytest.approx(
        relative_entropy(scaled, q)
    )


@given(counters, counters)
def test_re_nonnegative_on_shared_support(p_counts, q_counts):
    merged_q = q_counts + Counter({edge: 1 for edge in p_counts})
    assert relative_entropy(p_counts, merged_q) >= -1e-12


@given(counters, counters)
def test_re_finite(p_counts, q_counts):
    value = relative_entropy(p_counts, q_counts)
    assert value == value  # not NaN
    assert value < float("inf")


# ---------------------------------------------------------------- scripts
step_pool = st.sampled_from(
    [
        "df = df.fillna(df.mean())",
        "df = df.fillna(df.median())",
        "df = df.dropna()",
        "df = df[df['x'] < 80]",
        "df = pd.get_dummies(df)",
        "df['y'] = df['x'] * 2",
        "df = df.drop('z', axis=1)",
        "df = df.sort_values('x')",
    ]
)
script_bodies = st.lists(step_pool, min_size=0, max_size=6)


def build_script(body):
    return "\n".join(
        ["import pandas as pd", "df = pd.read_csv('t.csv')"] + body
    )


@given(script_bodies)
def test_lemmatize_idempotent_on_generated_scripts(body):
    script = build_script(body)
    once = lemmatize(script)
    assert lemmatize(once) == once


@given(script_bodies)
def test_parse_statement_count(body):
    dag = parse_script(build_script(body))
    assert len(dag) == len(body) + 2


@given(script_bodies)
def test_dag_source_roundtrip(body):
    dag = parse_script(build_script(body))
    again = parse_script(dag.source(), lemmatized=True)
    assert again.source() == dag.source()


@given(script_bodies, step_pool, st.integers(0, 8))
def test_add_then_delete_roundtrip(body, new_step, position):
    statements = list(parse_script(build_script(body)).statements)
    position = min(position, len(statements))
    position = max(position, 2)  # never before the protected header
    add = Transformation(
        kind=ADD, gram=NGRAM, signature=new_step, position=position,
        statement_source=new_step,
    )
    extended = apply_transformation(statements, add)
    delete = Transformation(
        kind=DELETE, gram=NGRAM, signature=new_step, position=position
    )
    restored = apply_transformation(extended, delete)
    assert [s.source for s in restored] == [s.source for s in statements]
    assert [s.index for s in restored] == list(range(len(restored)))


@given(script_bodies)
def test_edges_are_between_existing_statements(body):
    dag = parse_script(build_script(body))
    signatures = {s.ngram.signature for s in dag.statements}
    for edge in dag.inter_edges():
        assert edge.source in signatures
        assert edge.target in signatures


@given(script_bodies)
@settings(max_examples=40)
def test_statement_from_source_matches_parse(body):
    script = build_script(body)
    dag = parse_script(script)
    for stmt in dag.statements:
        rebuilt = Statement.from_source(stmt.index, stmt.source)
        assert rebuilt.ngram.signature == stmt.ngram.signature
        assert {a.signature for a in rebuilt.onegrams} == {
            a.signature for a in stmt.onegrams
        }


@given(script_bodies)
def test_compute_edge_counts_matches_dag(body):
    """Positional edge counting equals ScriptDAG's index-based counting."""
    from repro.lang import parse_script
    from repro.lang.parser import compute_edge_counts

    dag = parse_script(build_script(body))
    assert compute_edge_counts(dag.statements) == dag.edge_counter()


@given(script_bodies)
@settings(max_examples=40)
def test_marginal_scoring_equals_full_recompute(body):
    """The Section 5.2 marginal P(x) update must agree with applying the
    transformation and rescoring from scratch, for every legal step."""
    from repro.core.beam import BeamSearch
    from repro.core.config import LSConfig
    from repro.core.entropy import RelativeEntropyScorer
    from repro.core.transformations import enumerate_transformations
    from repro.lang import CorpusVocabulary, parse_script

    corpus = [
        build_script(["df = df.fillna(df.mean())", "df = pd.get_dummies(df)"]),
        build_script(["df = df.fillna(df.mean())", "df = df[df['x'] < 80]"]),
        build_script([]),
    ]
    vocab = CorpusVocabulary.from_scripts(corpus)
    scorer = RelativeEntropyScorer(vocab)
    search = BeamSearch(vocab, scorer, LSConfig(seq=2, beam_size=1))
    statements = list(parse_script(build_script(body)).statements)

    for t in enumerate_transformations(statements, vocab)[:12]:
        marginal = search._projected_score(statements, t)
        full = scorer.score_statements(apply_transformation(statements, t))
        assert marginal == pytest.approx(full, abs=1e-12)
