"""Tests for the user-intent measures (Section 2.1)."""

import numpy as np
import pytest

from repro.core import (
    ModelPerformanceIntent,
    TableJaccardIntent,
    model_performance_delta,
    table_jaccard,
)
from repro.minipandas import NA, DataFrame


class TestTableJaccard:
    def test_identical_tables_are_one(self):
        a = DataFrame({"x": [1, 2], "s": ["p", "q"]})
        assert table_jaccard(a, a.copy()) == 1.0

    def test_disjoint_tables_are_zero(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        assert table_jaccard(a, b) == 0.0

    def test_paper_example_2_1(self):
        """Lowercasing collapses 5 distinct values to 2 shared ones -> 0.4."""
        original = DataFrame(
            {"risk": ["benign", "Benign", "High Risk", "High risk", "high risk"]}
        )
        lowered = DataFrame({"risk": ["benign", "high risk"]})
        assert table_jaccard(original, lowered, mode="values") == pytest.approx(0.4)

    def test_cells_mode_notices_column_renames(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [1]})
        assert table_jaccard(a, b, mode="cells") == 0.0
        assert table_jaccard(a, b, mode="values") == 1.0

    def test_rows_mode(self):
        a = DataFrame({"x": [1, 2], "y": [3, 4]})
        b = DataFrame({"x": [1, 9], "y": [3, 9]})
        assert table_jaccard(a, b, mode="rows") == pytest.approx(1 / 3)

    def test_rows_mode_with_missing_values(self):
        a = DataFrame({"x": [1, NA], "y": [NA, "q"]})
        b = DataFrame({"x": [1, NA], "y": [NA, "q"]})
        assert table_jaccard(a, b, mode="rows") == 1.0
        c = DataFrame({"x": [1, 2], "y": [NA, "q"]})
        assert table_jaccard(a, c, mode="rows") == pytest.approx(1 / 3)

    def test_rows_mode_wide_frame(self):
        # regression guard for the per-column materialization fast path
        a = DataFrame({f"c{i}": list(range(20)) for i in range(12)})
        b = a.take(list(range(10)))
        assert table_jaccard(a, b, mode="rows") == pytest.approx(0.5)

    def test_missing_values_compare_equal(self):
        a = DataFrame({"x": [NA]})
        b = DataFrame({"x": [NA]})
        assert table_jaccard(a, b) == 1.0

    def test_empty_tables_are_one(self):
        assert table_jaccard(DataFrame(), DataFrame()) == 1.0

    def test_row_subset_scales_with_overlap(self):
        a = DataFrame({"x": list(range(10))})
        b = DataFrame({"x": list(range(8))})
        assert table_jaccard(a, b) == pytest.approx(0.8)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            table_jaccard(DataFrame({"x": [1]}), DataFrame({"x": [1]}), mode="bogus")

    def test_symmetry(self):
        a = DataFrame({"x": [1, 2, 3]})
        b = DataFrame({"x": [2, 3, 4]})
        assert table_jaccard(a, b) == table_jaccard(b, a)


class TestTableJaccardIntent:
    def test_satisfied_at_threshold(self):
        intent = TableJaccardIntent(tau=0.5)
        assert intent.satisfied(0.5)
        assert intent.satisfied(0.9)
        assert not intent.satisfied(0.49)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            TableJaccardIntent(tau=1.5)

    def test_check_returns_delta_and_verdict(self):
        intent = TableJaccardIntent(tau=0.9)
        a = DataFrame({"x": [1, 2]})
        delta, ok = intent.check(a, a.copy())
        assert delta == 1.0 and ok

    def test_strict_tau_one_requires_identity(self):
        intent = TableJaccardIntent(tau=1.0)
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"x": [1, 3]})
        _, ok = intent.check(a, b)
        assert not ok


class TestModelPerformanceDelta:
    def test_paper_example_2_2(self):
        assert model_performance_delta(0.65, 0.67) == pytest.approx(3.1, abs=0.05)

    def test_identical_is_zero(self):
        assert model_performance_delta(0.8, 0.8) == 0.0

    def test_absolute_value(self):
        assert model_performance_delta(0.8, 0.4) == pytest.approx(
            model_performance_delta(0.8, 1.2)
        )

    def test_zero_original(self):
        assert model_performance_delta(0.0, 0.0) == 0.0
        assert model_performance_delta(0.0, 0.5) == 100.0


class TestModelPerformanceIntent:
    @pytest.fixture()
    def frame(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 300)
        y = (x + rng.normal(0, 0.3, 300) > 0).astype(int)
        return DataFrame({"x": x.tolist(), "Outcome": y.tolist()})

    def test_same_data_is_within_any_tau(self, frame):
        intent = ModelPerformanceIntent(target="Outcome", tau=0.0)
        delta, ok = intent.check(frame, frame.copy())
        assert delta == 0.0 and ok

    def test_label_shuffle_violates_tight_tau(self, frame):
        rng = np.random.default_rng(1)
        shuffled = frame.copy()
        labels = shuffled["Outcome"].tolist()
        rng.shuffle(labels)
        shuffled["Outcome"] = labels
        delta, ok = ModelPerformanceIntent(target="Outcome", tau=1.0).check(
            frame, shuffled
        )
        assert delta > 1.0
        assert not ok

    def test_candidate_missing_target_fails(self, frame):
        broken = frame.drop("Outcome", axis=1)
        delta, ok = ModelPerformanceIntent(target="Outcome", tau=5.0).check(
            frame, broken
        )
        assert delta == 100.0
        assert not ok

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            ModelPerformanceIntent(target="y", tau=-1.0)

    def test_accuracy_helper(self, frame):
        acc = ModelPerformanceIntent(target="Outcome").accuracy(frame)
        assert 0.5 < acc <= 1.0
