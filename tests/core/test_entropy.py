"""Tests for relative-entropy scoring, including the paper's worked examples."""

from collections import Counter

import pytest

from repro.core import percent_improvement, relative_entropy
from repro.core.entropy import RelativeEntropyScorer
from repro.lang import CorpusVocabulary, parse_script


class TestPaperWorkedExamples:
    """Examples 4.2-4.6 of the paper, verbatim.

    V_E' = {(a0,a1): 3, (a1,a2): 3, (a2,a7): 2, (a1,a7): 1}; the input
    script's edges are [(a0,a1), (a1,a7)].
    """

    Q = Counter({("a0", "a1"): 3, ("a1", "a2"): 3, ("a2", "a7"): 2, ("a1", "a7"): 1})

    def test_example_4_4_re_is_1_38(self):
        p = Counter({("a0", "a1"): 1, ("a1", "a7"): 1})
        assert relative_entropy(p, self.Q) == pytest.approx(1.38, abs=0.01)

    def test_example_4_6_after_best_transformation_re_is_0_2(self):
        # add a2 between a1 and a7: edges become (a0,a1), (a1,a2), (a2,a7)
        p = Counter({("a0", "a1"): 1, ("a1", "a2"): 1, ("a2", "a7"): 1})
        assert relative_entropy(p, self.Q) == pytest.approx(0.2, abs=0.01)

    def test_transformation_reduced_re(self):
        before = relative_entropy(
            Counter({("a0", "a1"): 1, ("a1", "a7"): 1}), self.Q
        )
        after = relative_entropy(
            Counter({("a0", "a1"): 1, ("a1", "a2"): 1, ("a2", "a7"): 1}), self.Q
        )
        assert after < before


class TestRelativeEntropy:
    def test_identical_distribution_is_zero(self):
        q = Counter({("a", "b"): 2, ("b", "c"): 2})
        assert relative_entropy(q, q) == pytest.approx(0.0)

    def test_matching_proportions_is_zero(self):
        p = Counter({("a", "b"): 1, ("b", "c"): 1})
        q = Counter({("a", "b"): 10, ("b", "c"): 10})
        assert relative_entropy(p, q) == pytest.approx(0.0)

    def test_always_nonnegative_on_shared_support(self):
        p = Counter({("a", "b"): 3, ("b", "c"): 1})
        q = Counter({("a", "b"): 1, ("b", "c"): 3})
        assert relative_entropy(p, q) > 0

    def test_oov_edge_is_finite_but_costly(self):
        q = Counter({("a", "b"): 10})
        in_vocab = relative_entropy(Counter({("a", "b"): 1}), q)
        oov = relative_entropy(Counter({("z", "z"): 1}), q)
        assert oov > in_vocab
        assert oov < float("inf")

    def test_empty_p_raises(self):
        with pytest.raises(ValueError):
            relative_entropy(Counter(), Counter({("a", "b"): 1}))

    def test_empty_q_raises(self):
        with pytest.raises(ValueError):
            relative_entropy(Counter({("a", "b"): 1}), Counter())

    def test_bad_epsilon_raises(self):
        with pytest.raises(ValueError):
            relative_entropy(
                Counter({("a", "b"): 1}), Counter({("a", "b"): 1}), epsilon=0.0
            )

    def test_smaller_epsilon_penalizes_oov_more(self):
        q = Counter({("a", "b"): 10})
        p = Counter({("z", "z"): 1})
        assert relative_entropy(p, q, epsilon=1e-6) > relative_entropy(p, q, epsilon=1e-2)


class TestPercentImprovement:
    def test_positive_improvement(self):
        assert percent_improvement(2.0, 1.0) == 50.0

    def test_negative_improvement(self):
        assert percent_improvement(1.0, 2.0) == -100.0

    def test_zero_before_is_zero(self):
        assert percent_improvement(0.0, 1.0) == 0.0

    def test_no_change_is_zero(self):
        assert percent_improvement(1.5, 1.5) == 0.0


class TestScorer:
    def test_standard_script_scores_lower(self, diabetes_corpus):
        vocab = CorpusVocabulary.from_scripts(diabetes_corpus)
        scorer = RelativeEntropyScorer(vocab)
        standard = scorer.score_source(diabetes_corpus[0], lemmatized=False)
        odd = scorer.score_source(
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.fillna(df.median())\n"
            "df = df.sort_values('Age')",
            lemmatized=False,
        )
        assert standard < odd

    def test_score_statements_matches_score_dag(self, diabetes_corpus):
        vocab = CorpusVocabulary.from_scripts(diabetes_corpus)
        scorer = RelativeEntropyScorer(vocab)
        dag = parse_script(diabetes_corpus[0])
        assert scorer.score_statements(dag.statements) == scorer.score_dag(dag)

    def test_corpus_member_scores_near_zero(self, diabetes_corpus):
        vocab = CorpusVocabulary.from_scripts(diabetes_corpus)
        scorer = RelativeEntropyScorer(vocab)
        # the majority script's edge distribution is close to Q
        assert scorer.score_source(diabetes_corpus[0], lemmatized=False) < 1.0
