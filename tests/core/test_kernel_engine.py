"""Full-search parity for the columnar kernels (``verify_kernels``).

The kernels claim bit-identity with the naive row-at-a-time path by
construction; this module proves it end-to-end: a complete standardize()
run with the shadow audit on must finish with zero mismatches and return
exactly what the unaudited run returns.
"""

import pytest

from repro.core import LSConfig, LucidScript, TableJaccardIntent
from repro.minipandas import kernels


class TestKernelSearchParity:
    def _run(self, diabetes_corpus, diabetes_dir, alex_script, **overrides):
        config = LSConfig(seq=4, beam_size=2, sample_rows=150, **overrides)
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=config,
        )
        return system.standardize(alex_script)

    def test_verify_kernels_audits_clean_full_search(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        audited = self._run(
            diabetes_corpus, diabetes_dir, alex_script, verify_kernels=True
        )
        plain = self._run(diabetes_corpus, diabetes_dir, alex_script)
        # zero mismatches: the audited run completed without
        # KernelMismatchError, and both runs agree exactly
        assert audited.output_script == plain.output_script
        assert audited.re_after == plain.re_after
        assert audited.intent_delta == plain.intent_delta
        assert audited.intent_satisfied == plain.intent_satisfied

    def test_audit_flag_is_scoped_to_the_run(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        assert not kernels.audit_enabled()
        self._run(diabetes_corpus, diabetes_dir, alex_script, verify_kernels=True)
        assert not kernels.audit_enabled()
