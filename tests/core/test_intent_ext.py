"""Tests for the Section 8 extension intent measures."""

import numpy as np
import pytest

from repro.core import (
    BagOfOperationsIntent,
    FairnessIntent,
    demographic_parity_difference,
)
from repro.minipandas import NA, DataFrame


class TestBagOfOperations:
    def test_identical_scripts_similarity_one(self, alex_script):
        intent = BagOfOperationsIntent(tau=0.7)
        assert intent.delta_scripts(alex_script, alex_script) == pytest.approx(1.0)

    def test_unrelated_scripts_low_similarity(self):
        intent = BagOfOperationsIntent()
        a = "import pandas as pd\ndf = pd.read_csv('a.csv')\ndf = df.dropna()"
        b = "import pandas as pd\ndf = pd.read_csv('a.csv')\ndf = df.sort_values('x')\ndf = df[df['y'] > 1]"
        similarity = intent.delta_scripts(a, b)
        assert similarity < intent.delta_scripts(a, a)

    def test_small_edit_keeps_high_similarity(self, alex_script):
        intent = BagOfOperationsIntent()
        edited = alex_script + "\ndf = df.dropna()"
        assert intent.delta_scripts(alex_script, edited) > 0.8

    def test_broken_candidate_scores_zero(self, alex_script):
        assert BagOfOperationsIntent().delta_scripts(alex_script, "x ===") == 0.0

    def test_satisfied_threshold(self):
        intent = BagOfOperationsIntent(tau=0.7)
        assert intent.satisfied(0.7)
        assert not intent.satisfied(0.69)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            BagOfOperationsIntent(tau=2.0)

    def test_table_delta_rejected(self):
        with pytest.raises(TypeError):
            BagOfOperationsIntent().delta(DataFrame(), DataFrame())

    def test_empty_scripts_similarity_one(self):
        assert BagOfOperationsIntent().delta_scripts("", "") == 1.0


def make_biased_frame(n=400, bias=2.0, seed=0):
    """Binary outcome strongly driven by group membership when bias > 0."""
    rng = np.random.default_rng(seed)
    group = rng.choice(["a", "b"], size=n)
    x = rng.normal(0, 1, n)
    logits = x + bias * (group == "a") - bias / 2
    y = (logits + rng.normal(0, 0.2, n) > 0).astype(int)
    return DataFrame({"x": x.tolist(), "group": group.tolist(), "y": y.tolist()})


class TestDemographicParity:
    def test_biased_data_has_high_dp(self):
        dp = demographic_parity_difference(make_biased_frame(bias=3.0), "y", "group")
        assert dp > 0.3

    def test_unbiased_data_has_low_dp(self):
        dp = demographic_parity_difference(make_biased_frame(bias=0.0), "y", "group")
        assert dp < 0.25

    def test_missing_sensitive_column_raises(self):
        from repro.ml import DownstreamEvaluationError

        with pytest.raises(DownstreamEvaluationError):
            demographic_parity_difference(make_biased_frame(), "y", "nope")

    def test_all_missing_sensitive_raises(self):
        from repro.ml import DownstreamEvaluationError

        frame = make_biased_frame(50)
        frame["group"] = [None] * 50
        with pytest.raises(DownstreamEvaluationError):
            demographic_parity_difference(frame, "y", "group")

    def test_single_class_target_is_zero(self):
        frame = make_biased_frame(60)
        frame["y"] = 1
        assert demographic_parity_difference(frame, "y", "group") == 0.0

    def test_deterministic(self):
        frame = make_biased_frame()
        a = demographic_parity_difference(frame, "y", "group")
        b = demographic_parity_difference(frame, "y", "group")
        assert a == b


class TestFairnessIntent:
    def test_same_data_satisfies(self):
        frame = make_biased_frame()
        intent = FairnessIntent(target="y", sensitive="group", tau=0.05)
        delta, ok = intent.check(frame, frame.copy())
        assert delta == pytest.approx(0.0)
        assert ok

    def test_bias_amplification_violates(self):
        base = make_biased_frame(bias=0.0, seed=1)
        amplified = make_biased_frame(bias=3.0, seed=1)
        intent = FairnessIntent(target="y", sensitive="group", tau=0.05)
        delta, ok = intent.check(base, amplified)
        assert delta > 0.05
        assert not ok

    def test_fairer_candidate_always_satisfies(self):
        biased = make_biased_frame(bias=3.0, seed=2)
        fair = make_biased_frame(bias=0.0, seed=2)
        intent = FairnessIntent(target="y", sensitive="group", tau=0.0)
        delta, ok = intent.check(biased, fair)
        assert delta <= 0.0
        assert ok

    def test_candidate_without_columns_fails(self):
        frame = make_biased_frame()
        broken = frame.drop("group", axis=1)
        intent = FairnessIntent(target="y", sensitive="group", tau=0.5)
        delta, ok = intent.check(frame, broken)
        assert delta == 1.0
        assert not ok

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            FairnessIntent(target="y", sensitive="g", tau=-0.1)
